"""Property tests with non-integer coordinates.

Most of the suite uses tie-heavy small integers; these tests exercise the
same invariants with fractional coordinates (quarter-steps, so midpoints
and representatives remain exactly representable — adjacent-ulp floats
have no representable point strictly between them, which is outside any
grid structure's contract).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.diagram.quadrant_dsg import quadrant_dsg
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.skyline.algorithms import skyline_brute, skyline_sort_2d
from repro.skyline.queries import dynamic_skyline, quadrant_skyline

fractional = st.integers(-20, 20).map(lambda v: v / 4.0)
float_points = st.lists(
    st.tuples(fractional, fractional), min_size=1, max_size=10
)


class TestSkylineWithFloats:
    @given(float_points)
    def test_sort_scan_matches_brute(self, pts):
        assert skyline_sort_2d(pts) == skyline_brute(pts)

    @given(float_points)
    def test_negative_coordinates_supported(self, pts):
        shifted = [(x - 100.0, y - 100.0) for x, y in pts]
        assert skyline_brute(shifted) == skyline_brute(pts)


class TestDiagramsWithFloats:
    @given(float_points)
    @settings(max_examples=40)
    def test_three_algorithms_agree(self, pts):
        reference = quadrant_baseline(pts)
        assert quadrant_dsg(pts) == reference
        assert quadrant_scanning(pts) == reference

    @given(float_points)
    @settings(max_examples=30)
    def test_cells_match_ground_truth(self, pts):
        diagram = quadrant_scanning(pts)
        for cell, result in diagram.cells():
            representative = diagram.grid.representative(cell)
            assert result == quadrant_skyline(pts, representative)

    @given(st.lists(st.tuples(fractional, fractional), min_size=1, max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_dynamic_diagram_matches_ground_truth(self, pts):
        diagram = dynamic_scanning(pts)
        for subcell, result in diagram.cells():
            representative = diagram.subcells.representative(subcell)
            assert result == dynamic_skyline(pts, representative)

    @given(
        float_points,
        st.tuples(fractional, fractional),
    )
    @settings(max_examples=30)
    def test_queries_with_float_query_points(self, pts, q):
        diagram = quadrant_scanning(pts)
        assert diagram.query(q) == quadrant_skyline(pts, q)
