"""Tests for the d-dimensional diagram constructions (Sec. IV.E)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagram.global_diagram import global_diagram
from repro.diagram.highdim import (
    dynamic_baseline_nd,
    quadrant_baseline_nd,
    quadrant_dsg_nd,
    quadrant_scanning_nd,
)
from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.skyline.queries import dynamic_skyline, global_skyline, quadrant_skyline

from tests.conftest import points_2d, points_nd


class TestAgainst2D:
    @given(points_2d(max_size=10))
    @settings(max_examples=30)
    def test_nd_baseline_reduces_to_2d(self, pts):
        assert quadrant_baseline_nd(pts) == quadrant_baseline(pts)

    @given(points_2d(max_size=10))
    @settings(max_examples=30)
    def test_nd_scanning_reduces_to_2d(self, pts):
        assert quadrant_scanning_nd(pts) == quadrant_baseline(pts)

    @given(points_2d(max_size=10))
    @settings(max_examples=30)
    def test_nd_dsg_reduces_to_2d(self, pts):
        assert quadrant_dsg_nd(pts) == quadrant_baseline(pts)


class TestThreeDimensions:
    def test_chain(self):
        diagram = quadrant_baseline_nd([(1, 1, 1), (2, 2, 2)])
        assert diagram.result_at((0, 0, 0)) == (0,)
        assert diagram.result_at((1, 1, 1)) == (1,)
        assert diagram.result_at((2, 2, 2)) == ()

    @given(points_nd(3, max_size=7))
    @settings(max_examples=30, deadline=None)
    def test_three_algorithms_agree_3d(self, pts):
        reference = quadrant_baseline_nd(pts)
        assert quadrant_dsg_nd(pts) == reference
        assert quadrant_scanning_nd(pts) == reference

    @given(points_nd(3, max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_cells_match_from_scratch_3d(self, pts):
        diagram = quadrant_baseline_nd(pts)
        for cell, result in diagram.cells():
            representative = diagram.grid.representative(cell)
            assert result == quadrant_skyline(pts, representative)

    @given(points_nd(4, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_three_algorithms_agree_4d(self, pts):
        reference = quadrant_baseline_nd(pts)
        assert quadrant_dsg_nd(pts) == reference
        assert quadrant_scanning_nd(pts) == reference

    @given(points_nd(3, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_global_diagram_3d(self, pts):
        diagram = global_diagram(pts, quadrant_scanning_nd)
        for cell, result in diagram.cells():
            representative = diagram.grid.representative(cell)
            assert result == global_skyline(pts, representative)


class TestDynamicND:
    def test_two_point_3d(self):
        diagram = dynamic_baseline_nd([(0, 0, 0), (8, 8, 8)])
        assert diagram.query((1, 1, 1)) == (0,)
        assert diagram.query((7, 7, 7)) == (1,)

    @given(points_nd(3, max_size=3, coordinate=st.integers(0, 4)))
    @settings(max_examples=10, deadline=None)
    def test_matches_from_scratch(self, pts):
        diagram = dynamic_baseline_nd(pts)
        for subcell, result in diagram._results.items():
            # Recompute the representative the same way the builder did.
            rep = []
            for d, i in enumerate(subcell):
                axis = diagram.axes[d]
                if i == 0:
                    rep.append(axis[0] - 1.0)
                elif i == len(axis):
                    rep.append(axis[-1] + 1.0)
                else:
                    rep.append((axis[i - 1] + axis[i]) / 2.0)
            assert result == dynamic_skyline(pts, tuple(rep))

    def test_repr(self):
        assert "dim=3" in repr(dynamic_baseline_nd([(0, 0, 0)]))
