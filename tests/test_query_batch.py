"""Batch point location: ``query_batch`` vs per-point ``query``.

The vectorized path (one ``np.searchsorted`` per axis) must agree with the
bisect-based single query everywhere — most delicately for queries lying
exactly on grid lines, where both paths apply the same per-axis edge
ownership (closed on the lower side for unreflected axes, upper for
reflected ones) and the same boundary resolution for global/dynamic kinds.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.global_diagram import global_diagram
from repro.diagram.highdim import quadrant_scanning_nd
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import QueryError
from repro.index.engine import SkylineDatabase

from tests.conftest import points_2d


def _random_queries(num: int, seed: int, lo=-1.0, hi=10.0):
    rng = random.Random(seed)
    return [
        (rng.uniform(lo, hi), rng.uniform(lo, hi)) for _ in range(num)
    ]


def _grid_line_queries(axes):
    """Queries sitting exactly on grid lines and on their crossings."""
    xs, ys = axes
    queries = [(float(x), 0.5) for x in xs]
    queries += [(0.5, float(y)) for y in ys]
    queries += [(float(x), float(y)) for x in xs for y in ys]
    return queries


class TestDiagramBatch:
    @settings(deadline=None, max_examples=40)
    @given(points_2d(max_size=10))
    def test_quadrant_random_and_boundary(self, points):
        diagram = quadrant_scanning(points)
        queries = _random_queries(30, seed=len(points))
        queries += _grid_line_queries(diagram.grid.axes)
        assert diagram.query_batch(queries) == [
            diagram.query(q) for q in queries
        ]

    @settings(deadline=None, max_examples=25)
    @given(points_2d(max_size=8))
    def test_global_random_and_boundary(self, points):
        diagram = global_diagram(points)
        queries = _random_queries(20, seed=len(points))
        queries += _grid_line_queries(diagram.grid.axes)
        assert diagram.query_batch(queries) == [
            diagram.query(q) for q in queries
        ]

    @settings(deadline=None, max_examples=15)
    @given(points_2d(min_size=1, max_size=5))
    def test_dynamic_random_and_boundary(self, points):
        diagram = dynamic_scanning(points)
        queries = _random_queries(20, seed=len(points))
        # Subcell axes include bisectors; exercise those lines too.
        queries += _grid_line_queries(diagram.subcells.axes)
        assert diagram.query_batch(queries) == [
            diagram.query(q) for q in queries
        ]

    def test_highdim_batch(self):
        pts = [(1, 2, 3), (3, 1, 2), (2, 3, 1), (1, 1, 3)]
        diagram = quadrant_scanning_nd(pts)
        rng = random.Random(5)
        queries = [
            tuple(rng.uniform(0, 4) for _ in range(3)) for _ in range(40)
        ]
        queries += [(1.0, 2.0, 3.0), (3.0, 3.0, 3.0), (0.0, 0.0, 0.0)]
        assert diagram.query_batch(queries) == [
            diagram.query(q) for q in queries
        ]

    def test_empty_batch(self):
        diagram = quadrant_scanning([(1, 2), (2, 1)])
        assert diagram.query_batch([]) == []
        assert (
            diagram.query_batch(np.empty((0, 2), dtype=np.float64)) == []
        )

    def test_ndarray_input(self):
        diagram = quadrant_scanning([(1, 2), (2, 1)])
        queries = np.array([[0.0, 0.0], [1.5, 1.5], [3.0, 3.0]])
        assert diagram.query_batch(queries) == [
            diagram.query(tuple(q)) for q in queries.tolist()
        ]

    def test_dimension_mismatch_raises(self):
        diagram = quadrant_scanning([(1, 2), (2, 1)])
        with pytest.raises(QueryError, match="locate_batch"):
            diagram.query_batch([(1.0, 2.0, 3.0)])
        with pytest.raises(QueryError, match="locate_batch"):
            diagram.query_batch([1.0, 2.0])
        with pytest.raises(QueryError, match="locate_batch"):
            diagram.query_batch([(1.0, 2.0), (3.0,)])  # ragged rows
        with pytest.raises(QueryError, match="locate_batch"):
            diagram.query_batch([("a", "b")])


class TestEngineBatch:
    @pytest.fixture
    def db(self):
        return SkylineDatabase([(2, 8), (5, 4), (9, 1), (5, 4)])

    @pytest.mark.parametrize("kind", ["quadrant", "global", "dynamic"])
    def test_matches_per_point(self, db, kind):
        queries = _random_queries(25, seed=3, lo=0.0, hi=10.0)
        assert db.query_batch(queries, kind=kind) == [
            db.query(q, kind=kind) for q in queries
        ]

    def test_quadrant_mask_dispatch(self, db):
        queries = _random_queries(25, seed=4, lo=0.0, hi=10.0)
        for mask in range(4):
            assert db.query_batch(queries, kind="quadrant", mask=mask) == [
                db.query(q, kind="quadrant", mask=mask) for q in queries
            ]

    def test_query_many_delegates(self, db):
        queries = [(1.0, 1.0), (6.0, 6.0)]
        assert db.query_many(queries, kind="quadrant") == db.query_batch(
            queries, kind="quadrant"
        )

    def test_unknown_kind(self, db):
        with pytest.raises(QueryError, match="unknown query kind"):
            db.query_batch([(1.0, 1.0)], kind="bogus")
