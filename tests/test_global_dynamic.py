"""Tests for global diagrams and the three dynamic-diagram algorithms."""

import pytest
from hypothesis import given, settings

from repro.diagram.dynamic_baseline import dynamic_baseline
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.dynamic_subset import dynamic_subset
from repro.diagram.global_diagram import global_diagram, quadrant_diagram_for_mask
from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.skyline.queries import dynamic_skyline, global_skyline, quadrant_skyline

from tests.conftest import points_2d

DYNAMIC = [dynamic_baseline, dynamic_subset, dynamic_scanning]


@pytest.fixture(params=DYNAMIC, ids=["baseline", "subset", "scanning"])
def dynamic_algorithm(request):
    return request.param


class TestQuadrantOrientations:
    @given(points_2d(max_size=8))
    @settings(max_examples=30)
    def test_reflected_diagrams_match_ground_truth(self, pts):
        for mask in range(4):
            diagram = quadrant_diagram_for_mask(pts, mask, quadrant_scanning)
            assert diagram.mask == mask
            for cell, result in diagram.cells():
                representative = diagram.grid.representative(cell)
                assert result == quadrant_skyline(pts, representative, mask)

    def test_mask_zero_is_plain_first_quadrant(self, staircase):
        direct = quadrant_scanning(staircase)
        via_mask = quadrant_diagram_for_mask(staircase, 0, quadrant_scanning)
        assert direct == via_mask

    def test_reflected_grid_shares_axes(self, staircase):
        diagram = quadrant_diagram_for_mask(staircase, 3, quadrant_scanning)
        assert diagram.grid.axes == quadrant_scanning(staircase).grid.axes


class TestGlobalDiagram:
    def test_kind(self, staircase):
        assert global_diagram(staircase).kind == "global"

    def test_accepts_custom_algorithm(self, staircase):
        assert global_diagram(staircase, quadrant_baseline) == global_diagram(
            staircase, quadrant_scanning
        )

    @given(points_2d(max_size=8))
    @settings(max_examples=30)
    def test_cells_match_from_scratch_evaluation(self, pts):
        diagram = global_diagram(pts)
        for cell, result in diagram.cells():
            representative = diagram.grid.representative(cell)
            assert result == global_skyline(pts, representative)

    @given(points_2d(max_size=8))
    @settings(max_examples=30)
    def test_every_point_is_global_skyline_of_its_own_cells(self, pts):
        """Near any point there is a region where it is in the result."""
        diagram = global_diagram(pts)
        for cell, result in diagram.cells():
            assert result, "global skyline is never empty on a nonempty set"

    def test_quadrant_results_are_disjoint_per_cell(self, staircase):
        diagram = global_diagram(staircase)
        quadrants = [
            quadrant_diagram_for_mask(staircase, mask, quadrant_scanning)
            for mask in range(4)
        ]
        for cell, result in diagram.cells():
            parts = [q.result_at(cell) for q in quadrants]
            flat = [pid for part in parts for pid in part]
            assert sorted(flat) == list(result)
            assert len(set(flat)) == len(flat)


class TestDynamicDiagrams:
    def test_two_point_symmetry(self, dynamic_algorithm):
        diagram = dynamic_algorithm([(0, 0), (10, 10)])
        assert diagram.query((1, 1)) == (0,)
        assert diagram.query((9, 9)) == (1,)
        assert diagram.query((4, 6)) == (0, 1)

    def test_single_point_everywhere(self, dynamic_algorithm):
        diagram = dynamic_algorithm([(5, 5)])
        for subcell, result in diagram.cells():
            assert result == (0,)

    @given(points_2d(max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_matches_from_scratch_evaluation(self, pts):
        for build in DYNAMIC:
            diagram = build(pts)
            for subcell, result in diagram.cells():
                representative = diagram.subcells.representative(subcell)
                assert result == dynamic_skyline(pts, representative)

    @given(points_2d(max_size=7))
    @settings(max_examples=25, deadline=None)
    def test_three_algorithms_agree(self, pts):
        reference = dynamic_baseline(pts)
        assert dynamic_subset(pts) == reference
        assert dynamic_scanning(pts) == reference

    @given(points_2d(max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_dynamic_subset_of_global_per_subcell(self, pts):
        dynamic = dynamic_scanning(pts)
        coarse = global_diagram(pts)
        for subcell, result in dynamic.cells():
            cell = dynamic.subcells.containing_cell(subcell)
            assert set(result) <= set(coarse.result_at(cell))

    def test_subset_accepts_custom_quadrant_algorithm(self):
        pts = [(0, 0), (4, 2), (2, 4)]
        assert dynamic_subset(pts, quadrant_baseline) == dynamic_baseline(pts)

    def test_equality_semantics(self):
        pts = [(0, 0), (6, 4)]
        assert dynamic_baseline(pts) == dynamic_scanning(pts)
        assert dynamic_baseline(pts) != dynamic_baseline([(1, 1)])
        assert dynamic_baseline(pts) != object()

    def test_result_count_validation(self):
        from repro.diagram.base import DynamicDiagram
        from repro.geometry.subcell import SubcellGrid

        subcells = SubcellGrid([(0, 0), (4, 4)])
        with pytest.raises(ValueError, match="subcell results"):
            DynamicDiagram(subcells, {(0, 0): ()})

    def test_query_points(self):
        diagram = dynamic_scanning([(0, 0), (10, 10)])
        assert diagram.query_points((1, 1)) == [(0.0, 0.0)]

    def test_repr(self):
        assert "scanning" in repr(dynamic_scanning([(0, 0)]))

    def test_polyominos_merge_subcells(self):
        diagram = dynamic_scanning([(0, 0), (10, 10)])
        polys = diagram.polyominos()
        covered = {cell for poly in polys for cell in poly.cells}
        assert covered == set(diagram.subcells.subcells())
