"""Tests for the benchmark harness and experiment registry."""

import pytest

from repro.bench.experiments import EXPERIMENTS, run_all, run_experiment
from repro.bench.harness import Table, time_call


class TestTimeCall:
    def test_returns_positive_seconds(self):
        assert time_call(lambda: sum(range(100))) > 0

    def test_best_of_repeats(self):
        calls = []
        time_call(lambda: calls.append(1), repeats=3)
        assert len(calls) == 3


class TestTable:
    def test_row_validation(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row(["x", 1])
        table.add_row(["longer", 2.5])
        lines = table.render().splitlines()
        assert lines[0] == "demo"
        assert lines[1].startswith("name")
        assert set(lines[2]) <= {"-", " "}

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row([0.1234567])
        table.add_row([0.0000005])
        rendered = table.render()
        assert "0.123" in rendered
        assert "5.00e-07" in rendered

    def test_markdown(self):
        table = Table("t", ["a", "b"])
        table.add_row([1, 2])
        md = table.to_markdown()
        assert md.splitlines()[0] == "| a | b |"
        assert md.splitlines()[1] == "|---|---|"
        assert md.splitlines()[2] == "| 1 | 2 |"

    def test_empty_table_renders(self):
        assert Table("t", ["a"]).render().splitlines()[0] == "t"


class TestExperimentRegistry:
    def test_all_experiments_registered(self):
        assert sorted(EXPERIMENTS, key=lambda e: int(e[1:])) == [
            f"E{i}" for i in range(1, 11)
        ]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E42")

    def test_e3_runs_quickly_and_counts_structures(self):
        tables = run_experiment("E3", quick=True)
        assert len(tables) == 1
        header = tables[0].columns
        assert header == ["distribution", "n", "cells", "distinct", "polyominos"]
        for row in tables[0].rows:
            dist, n, cells, distinct, polys = row
            assert cells >= distinct
            assert distinct == polys  # each result forms one connected region

    def test_run_all_filters(self):
        tables = run_all(quick=True, only=["E3"])
        assert len(tables) == 1


class TestMainModule:
    def test_cli_lists_tables(self, capsys):
        from repro.bench.__main__ import main

        assert main(["E3"]) == 0
        out = capsys.readouterr().out
        assert "E3:" in out

    def test_cli_markdown(self, capsys):
        from repro.bench.__main__ import main

        assert main(["E3", "--markdown"]) == 0
        assert "| distribution |" in capsys.readouterr().out

    def test_cli_rejects_unknown(self, capsys):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["E77"])
