"""Tests for diagram validation and the differential fuzz harness."""

import pytest
from hypothesis import given, settings

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.verify import differential_verify, validate_diagram
from repro.errors import SerializationError

from tests.conftest import points_2d


def _corrupt(diagram, cell, new_result):
    results = dict(diagram.cells())
    results[cell] = new_result
    return SkylineDiagram(
        diagram.grid, results, kind=diagram.kind, mask=diagram.mask
    )


class TestAccepts:
    @given(points_2d(max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_genuine_quadrant_diagrams_pass_full(self, pts):
        validate_diagram(quadrant_scanning(pts), level="full")

    @given(points_2d(max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_genuine_dynamic_diagrams_pass_full(self, pts):
        validate_diagram(dynamic_scanning(pts), level="full")

    def test_sampled_level(self, staircase):
        validate_diagram(quadrant_scanning(staircase), level="sampled")

    def test_unknown_level(self, staircase):
        with pytest.raises(ValueError):
            validate_diagram(quadrant_scanning(staircase), level="paranoid")


class TestRejects:
    def test_unsorted_result(self, staircase):
        bad = _corrupt(quadrant_scanning(staircase), (0, 0), (2, 1, 0))
        with pytest.raises(SerializationError, match="sorted"):
            validate_diagram(bad)

    def test_out_of_range_id(self, staircase):
        bad = _corrupt(quadrant_scanning(staircase), (0, 0), (0, 99))
        with pytest.raises(SerializationError, match="unknown points"):
            validate_diagram(bad)

    def test_non_candidate_member(self, staircase):
        # Point 0 has x-rank 1: it cannot appear in column 1 cells.
        bad = _corrupt(quadrant_scanning(staircase), (1, 0), (0, 1, 2))
        with pytest.raises(SerializationError, match="not a candidate"):
            validate_diagram(bad)

    def test_wrong_origin(self, staircase):
        bad = _corrupt(quadrant_scanning(staircase), (0, 0), (0,))
        with pytest.raises(SerializationError, match="origin"):
            validate_diagram(bad)

    def test_nonempty_border(self, staircase):
        diagram = quadrant_scanning(staircase)
        top = tuple(extent - 1 for extent in diagram.grid.shape)
        bad = _corrupt(diagram, top, (0,))
        with pytest.raises(SerializationError):
            validate_diagram(bad)

    def test_full_level_catches_interior_swap(self, staircase):
        # Swap two interior results that pass every structural law.
        diagram = quadrant_scanning(staircase)
        bad = _corrupt(diagram, (1, 1), diagram.result_at((2, 1)))
        if bad.result_at((1, 1)) == diagram.result_at((1, 1)):
            pytest.skip("cells coincide on this dataset")
        with pytest.raises(SerializationError, match="recomputed"):
            validate_diagram(bad, level="full")

    def test_empty_dynamic_subcell(self):
        diagram = dynamic_scanning([(0, 0), (4, 4)])
        results = dict(diagram.cells())
        results[(0, 0)] = ()
        bad = DynamicDiagram(diagram.subcells, results)
        with pytest.raises(SerializationError, match="never empty"):
            validate_diagram(bad)

    def test_wrong_dynamic_result_full(self):
        diagram = dynamic_scanning([(0, 0), (10, 10)])
        results = dict(diagram.cells())
        results[(0, 0)] = (1,)
        bad = DynamicDiagram(diagram.subcells, results)
        with pytest.raises(SerializationError, match="recomputed"):
            validate_diagram(bad, level="full")


class TestDifferentialHarness:
    def test_seeded_run_is_clean(self):
        report = differential_verify(seed=0, budget=400, max_points=6)
        assert report.ok
        assert report.mismatch is None
        assert report.cases >= 400
        assert "ok" in report.summary()

    def test_runs_are_deterministic(self):
        a = differential_verify(seed=7, budget=150, max_points=5)
        b = differential_verify(seed=7, budget=150, max_points=5)
        assert (a.cases, a.rounds, a.by_check) == (b.cases, b.rounds, b.by_check)

    def test_every_check_family_exercised(self):
        report = differential_verify(seed=1, budget=400, max_points=6)
        assert set(report.by_check) == {
            "pair", "lookup", "batch", "degraded", "runtime",
            "maintenance", "backend", "spec",
        }
        assert all(count > 0 for count in report.by_check.values())

    def test_families_filter_restricts_the_run(self):
        report = differential_verify(
            seed=1, budget=60, max_points=6, families=("spec",)
        )
        assert report.ok
        assert set(report.by_check) == {"spec"}
        assert report.cases == 60
        with pytest.raises(ValueError, match="no checks match"):
            differential_verify(seed=1, budget=10, families=("nope",))

    def test_injected_bug_is_caught_and_minimized(self, monkeypatch):
        # Reintroduce the old lower-side-only dynamic lookup; the harness
        # must catch the boundary mismatch and shrink the dataset.
        monkeypatch.setattr(
            DynamicDiagram,
            "query",
            lambda self, q: self._store.result_at(self.subcells.locate(q)),
        )
        report = differential_verify(seed=0, budget=2000, max_points=8)
        assert not report.ok
        mismatch = report.mismatch
        assert mismatch.expected != mismatch.actual
        assert len(mismatch.points) <= 4  # minimizer shrank the dataset
        text = mismatch.reproducer()
        assert "points =" in text
        assert "query =" in text
        assert str(report.seed) in text


class TestLoadPipeline:
    def test_validates_after_json_round_trip(self, staircase):
        from repro.index.serialize import diagram_from_json, diagram_to_json

        restored = diagram_from_json(
            diagram_to_json(quadrant_scanning(staircase))
        )
        validate_diagram(restored, level="full")

    def test_catches_tampered_json(self, staircase):
        import json

        from repro.index.serialize import diagram_from_json, diagram_to_json

        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["cells"][0] = [2]  # origin no longer the skyline
        bad = diagram_from_json(json.dumps(payload))
        with pytest.raises(SerializationError):
            validate_diagram(bad)
