"""Tests for why-not explanations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.why_not import why_not
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import QueryError

from tests.conftest import points_2d

queries = st.tuples(st.integers(-1, 10), st.integers(-1, 10))


class TestBasics:
    def test_already_present_is_distance_zero(self, staircase):
        diagram = quadrant_scanning(staircase)
        explanation = why_not(diagram, (0.0, 0.0), 0)
        assert explanation.distance == 0.0
        assert explanation.witness == (0.0, 0.0)
        assert 0 in explanation.result

    def test_minimal_move_on_staircase(self, staircase):
        diagram = quadrant_scanning(staircase)
        explanation = why_not(diagram, (7.0, 3.0), 0)
        assert math.isclose(explanation.distance, 5.0)
        assert 0 in explanation.result

    def test_witness_result_contains_point(self, staircase):
        diagram = quadrant_scanning(staircase)
        for pid in range(3):
            explanation = why_not(diagram, (10.0, 10.0), pid)
            assert pid in explanation.result
            assert diagram.query(explanation.witness) == explanation.result

    def test_every_point_appears_somewhere_in_quadrant_diagrams(self):
        # The cell just below-left of any point p answers {p, duplicates},
        # so the "no region" error is unreachable for built diagrams; the
        # guard exists for hand-constructed ones.
        diagram = quadrant_scanning([(1, 1), (1, 2)])
        explanation = why_not(diagram, (0.0, 0.0), 1)
        assert 1 in explanation.result

    def test_point_in_no_region_raises_on_crafted_diagram(self):
        from repro.diagram.base import SkylineDiagram
        from repro.geometry.grid import Grid

        grid = Grid([(1, 1)])
        crafted = SkylineDiagram(
            grid, {cell: () for cell in grid.cells()}, kind="quadrant"
        )
        with pytest.raises(QueryError, match="no region"):
            why_not(crafted, (0.0, 0.0), 0)

    def test_validates_point_id(self, staircase):
        diagram = quadrant_scanning(staircase)
        with pytest.raises(QueryError):
            why_not(diagram, (0, 0), 99)

    def test_works_on_dynamic_diagrams(self):
        diagram = dynamic_scanning([(0, 0), (10, 10)])
        explanation = why_not(diagram, (1.0, 1.0), 1)
        assert 1 in explanation.result
        assert explanation.distance > 0


class TestOptimality:
    @given(points_2d(min_size=1, max_size=7), queries, st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_distance_is_minimal_over_cells(self, pts, q, seed):
        pid = seed % len(pts)
        diagram = quadrant_scanning(pts)
        try:
            explanation = why_not(diagram, q, pid)
        except QueryError:
            # The point appears in no region: verify that is actually true.
            for _, result in diagram.cells():
                assert pid not in result
            return
        # Brute-force the minimum distance over all admitting cells.
        best = math.inf
        for cell, result in diagram.cells():
            if pid not in result:
                continue
            lo, hi = diagram.grid.cell_bounds(cell)
            clamped = [min(max(float(q[d]), lo[d]), hi[d]) for d in range(2)]
            best = min(best, math.dist((float(q[0]), float(q[1])), clamped))
        assert math.isclose(explanation.distance, best, abs_tol=1e-12)

    @given(points_2d(min_size=1, max_size=7), queries)
    @settings(max_examples=30, deadline=None)
    def test_witness_always_admits_the_point(self, pts, q):
        diagram = quadrant_scanning(pts)
        for pid in range(len(pts)):
            try:
                explanation = why_not(diagram, q, pid)
            except QueryError:
                continue
            assert pid in diagram.query(explanation.witness)
