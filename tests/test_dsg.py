"""Unit and property tests for the directed skyline graph."""

import pytest
from hypothesis import given

from repro.dsg.graph import (
    DirectedSkylineGraph,
    direct_dominance_links,
    full_dominance_links,
)
from repro.geometry.dominance import dominates
from repro.skyline.algorithms import skyline_brute

from tests.conftest import points_2d, points_nd


class TestDirectLinks:
    def test_chain(self):
        assert direct_dominance_links([(1, 1), (2, 2), (3, 3)]) == [
            [1],
            [2],
            [],
        ]

    def test_diamond(self):
        # Apex dominates both middles directly; the sink only through them.
        pts = [(1, 1), (2, 3), (3, 2), (4, 4)]
        assert direct_dominance_links(pts) == [[1, 2], [3], [3], []]

    def test_duplicates_have_no_links(self):
        assert direct_dominance_links([(1, 1), (1, 1)]) == [[], []]

    @given(points_2d(max_size=10))
    def test_direct_subset_of_full(self, pts):
        direct = direct_dominance_links(pts)
        full = full_dominance_links(pts)
        for p in range(len(pts)):
            assert set(direct[p]) <= set(full[p])

    @given(points_2d(max_size=10))
    def test_links_are_dominance_pairs(self, pts):
        for p, kids in enumerate(direct_dominance_links(pts)):
            for q in kids:
                assert dominates(pts[p], pts[q])

    @given(points_2d(max_size=10))
    def test_no_intermediate_point_between_direct_pairs(self, pts):
        for p, kids in enumerate(direct_dominance_links(pts)):
            for q in kids:
                assert not any(
                    r != p
                    and r != q
                    and dominates(pts[p], pts[r])
                    and dominates(pts[r], pts[q])
                    for r in range(len(pts))
                )

    @given(points_nd(3, max_size=8))
    def test_full_links_transitive_closure_3d(self, pts):
        full = full_dominance_links(pts)
        for p in range(len(pts)):
            assert set(full[p]) == {
                q for q in range(len(pts)) if q != p and dominates(pts[p], pts[q])
            }


class TestGraphRemoval:
    def test_initial_skyline(self):
        dsg = DirectedSkylineGraph([(1, 4), (2, 2), (4, 1), (3, 3)])
        assert sorted(dsg.skyline()) == [0, 1, 2]

    def test_remove_exposes_children(self):
        dsg = DirectedSkylineGraph([(1, 1), (2, 3), (3, 2), (4, 4)])
        assert sorted(dsg.remove(0)) == [1, 2]
        assert sorted(dsg.skyline()) == [1, 2]

    def test_remove_is_idempotent(self):
        dsg = DirectedSkylineGraph([(1, 1), (2, 2)])
        dsg.remove(0)
        assert dsg.remove(0) == []

    def test_child_with_other_parent_not_exposed(self):
        # Both middles dominate the sink; removing one is not enough.
        dsg = DirectedSkylineGraph([(1, 1), (2, 3), (3, 2), (4, 4)])
        dsg.remove(0)
        assert dsg.remove(1) == []
        assert dsg.remove(2) == [3]

    def test_batch_removal_of_chain_on_shared_line(self):
        # Two points on one vertical line dominate each other's region.
        dsg = DirectedSkylineGraph([(1, 1), (1, 3), (2, 5)])
        exposed = dsg.remove_batch([0, 1])
        assert exposed == [2]

    def test_rollback_restores_everything(self):
        pts = [(1, 1), (2, 3), (3, 2), (4, 4)]
        dsg = DirectedSkylineGraph(pts)
        checkpoint = dsg.checkpoint()
        dsg.remove(0)
        dsg.remove(1)
        dsg.rollback(checkpoint)
        assert sorted(dsg.skyline()) == [0]
        assert dsg.parent_count == DirectedSkylineGraph(pts).parent_count

    def test_nested_checkpoints(self):
        dsg = DirectedSkylineGraph([(1, 1), (2, 2), (3, 3)])
        outer = dsg.checkpoint()
        dsg.remove(0)
        inner = dsg.checkpoint()
        dsg.remove(1)
        dsg.rollback(inner)
        assert sorted(dsg.skyline()) == [1]
        dsg.rollback(outer)
        assert sorted(dsg.skyline()) == [0]

    def test_links_mode_validation(self):
        with pytest.raises(ValueError):
            DirectedSkylineGraph([(1, 1)], links="bogus")

    def test_full_links_mode_counts_more_edges(self):
        pts = [(1, 1), (2, 2), (3, 3)]
        assert DirectedSkylineGraph(pts, links="full").num_links == 3
        assert DirectedSkylineGraph(pts, links="direct").num_links == 2

    @given(points_2d(min_size=1, max_size=10))
    def test_initial_skyline_matches_brute(self, pts):
        assert tuple(sorted(DirectedSkylineGraph(pts).skyline())) == (
            skyline_brute(pts)
        )

    @given(points_2d(min_size=2, max_size=10))
    def test_peeling_by_removal_produces_layers(self, pts):
        from repro.skyline.layers import skyline_layers

        dsg = DirectedSkylineGraph(pts)
        layers = []
        while True:
            current = sorted(dsg.skyline())
            if not current:
                break
            layers.append(tuple(current))
            for pid in current:
                dsg.remove(pid)
        assert layers == skyline_layers(pts)

    @given(points_2d(min_size=1, max_size=10))
    def test_layers_attribute_matches_module(self, pts):
        from repro.skyline.layers import skyline_layers

        assert DirectedSkylineGraph(pts).layers == skyline_layers(pts)
