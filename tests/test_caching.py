"""Tests for the polyomino-keyed result cache."""

import pytest
from hypothesis import given, settings

from repro.applications.caching import PolyominoCache
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import QueryError

from tests.conftest import points_2d


def _counting_loader(calls):
    def loader(ids):
        calls.append(ids)
        return list(ids)

    return loader


class TestCacheBehaviour:
    def test_loader_called_once_per_region(self, staircase):
        calls = []
        cache = PolyominoCache(
            quadrant_scanning(staircase), _counting_loader(calls)
        )
        assert cache.get((0, 0)) == [0, 1, 2]
        assert cache.get((0.5, 0.5)) == [0, 1, 2]
        assert cache.get((1.9, 0.2)) == [0, 1, 2]
        assert len(calls) == 1
        assert cache.hits == 2
        assert cache.misses == 1

    def test_distinct_regions_load_separately(self, staircase):
        calls = []
        cache = PolyominoCache(
            quadrant_scanning(staircase), _counting_loader(calls)
        )
        cache.get((0, 0))
        cache.get((100, 100))
        assert len(calls) == 2
        assert calls[1] == ()

    def test_lru_eviction(self, staircase):
        calls = []
        cache = PolyominoCache(
            quadrant_scanning(staircase), _counting_loader(calls), capacity=1
        )
        cache.get((0, 0))
        cache.get((100, 100))  # evicts the first region
        assert cache.evictions == 1
        assert len(cache) == 1
        cache.get((0, 0))  # reloaded
        assert len(calls) == 3

    def test_move_to_end_keeps_hot_entries(self, staircase):
        calls = []
        cache = PolyominoCache(
            quadrant_scanning(staircase), _counting_loader(calls), capacity=2
        )
        cache.get((0, 0))
        cache.get((100, 100))
        cache.get((0, 0))  # refresh region A
        cache.get((6, 0))  # third region: evicts the ()-region, not A
        cache.get((0, 0))
        assert cache.misses == 3

    def test_invalidate(self, staircase):
        calls = []
        cache = PolyominoCache(
            quadrant_scanning(staircase), _counting_loader(calls)
        )
        cache.get((0, 0))
        cache.invalidate()
        assert len(cache) == 0
        cache.get((0, 0))
        assert len(calls) == 2

    def test_hit_rate(self, staircase):
        cache = PolyominoCache(
            quadrant_scanning(staircase), _counting_loader([])
        )
        assert cache.hit_rate == 0.0
        cache.get((0, 0))
        cache.get((0, 0))
        assert cache.hit_rate == 0.5

    def test_capacity_validation(self, staircase):
        with pytest.raises(QueryError):
            PolyominoCache(
                quadrant_scanning(staircase), _counting_loader([]), capacity=0
            )

    def test_repr(self, staircase):
        cache = PolyominoCache(
            quadrant_scanning(staircase), _counting_loader([])
        )
        assert "hit_rate=0.00" in repr(cache)


class TestCorrectness:
    @given(points_2d(max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_cached_payload_matches_direct_query(self, pts):
        diagram = quadrant_scanning(pts)
        cache = PolyominoCache(diagram, lambda ids: ids)
        for cell in diagram.grid.cells():
            q = diagram.grid.representative(cell)
            assert cache.get(q) == diagram.query(q)

    @given(points_2d(max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_loader_never_called_twice_with_unbounded_capacity(self, pts):
        diagram = quadrant_scanning(pts)
        calls = []
        cache = PolyominoCache(
            diagram, _counting_loader(calls), capacity=10_000
        )
        for cell in diagram.grid.cells():
            cache.get(diagram.grid.representative(cell))
        assert len(calls) == len(diagram.polyominos())


class TestBudgetedCache:
    """Memory-pressure admission and eviction under a budget (ISSUE PR 3)."""

    def test_admission_rejects_oversized_diagrams(self, staircase):
        from repro.errors import BudgetExceededError
        from repro.resilience import BuildBudget

        diagram = quadrant_scanning(staircase)
        with pytest.raises(BudgetExceededError, match="admission"):
            PolyominoCache(
                diagram, list, budget=BuildBudget(max_cells=3)
            )

    def test_admission_allows_within_budget(self, staircase):
        from repro.resilience import BuildBudget

        diagram = quadrant_scanning(staircase)
        cache = PolyominoCache(
            diagram, list, budget=BuildBudget(max_cells=diagram.store.num_cells)
        )
        assert cache.get((0, 0)) == [0, 1, 2]

    def test_max_distinct_caps_capacity(self, staircase):
        from repro.resilience import BuildBudget

        cache = PolyominoCache(
            quadrant_scanning(staircase),
            list,
            capacity=128,
            budget=BuildBudget(max_distinct=2),
        )
        assert cache.capacity == 2

    def test_eviction_under_memory_pressure(self, staircase):
        """With the budget capping two regions, a third query evicts."""
        from repro.resilience import BuildBudget

        diagram = quadrant_scanning(staircase)
        cache = PolyominoCache(
            diagram, list, capacity=128, budget=BuildBudget(max_distinct=2)
        )
        # One query per distinct skyline region of the staircase:
        # (0,1,2), (1,2), (2,), (0,), and the empty top-right region.
        queries = [
            (0.0, 0.0),
            (2.5, 0.5),
            (5.5, 0.5),
            (0.5, 4.5),
            (10.0, 10.0),
        ]
        regions = {cache.region_of(q) for q in queries}
        assert len(regions) >= 3  # the workload really exceeds the cap
        for q in queries:
            payload = cache.get(q)
            assert payload == list(diagram.query(q))  # pressure never lies
            assert len(cache) <= 2
        assert cache.evictions >= 1
