"""Tests for diagram statistics."""

from hypothesis import given, settings

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.statistics import diagram_statistics

from tests.conftest import points_2d


class TestBasics:
    def test_two_point_example(self):
        stats = diagram_statistics(quadrant_scanning([(2, 8), (5, 4)]))
        assert stats.num_points == 2
        assert stats.num_cells == 9
        assert stats.num_regions == 4
        assert stats.min_result_size == 0
        assert stats.max_result_size == 2

    def test_compression_ratio(self):
        stats = diagram_statistics(quadrant_scanning([(1, 1)]))
        assert stats.compression_ratio == 4 / 2

    def test_as_dict_round_trips_fields(self):
        stats = diagram_statistics(quadrant_scanning([(1, 1)]))
        d = stats.as_dict()
        assert d["num_cells"] == 4
        assert d["compression_ratio"] == stats.compression_ratio

    def test_works_on_dynamic_diagrams(self):
        stats = diagram_statistics(dynamic_scanning([(0, 0), (4, 4)]))
        assert stats.num_points == 2
        assert stats.min_result_size >= 1  # dynamic results are never empty


class TestInvariants:
    @given(points_2d(max_size=10))
    @settings(max_examples=30)
    def test_regions_never_exceed_cells(self, pts):
        stats = diagram_statistics(quadrant_scanning(pts))
        assert 1 <= stats.num_regions <= stats.num_cells
        assert stats.compression_ratio >= 1.0

    @given(points_2d(max_size=10))
    @settings(max_examples=30)
    def test_result_sizes_bounded_by_n(self, pts):
        stats = diagram_statistics(quadrant_scanning(pts))
        assert 0 <= stats.min_result_size
        assert stats.min_result_size <= stats.mean_result_size
        assert stats.mean_result_size <= stats.max_result_size <= len(pts)

    @given(points_2d(max_size=10))
    @settings(max_examples=30)
    def test_region_sizes_partition_cells(self, pts):
        import math

        stats = diagram_statistics(quadrant_scanning(pts))
        assert math.isclose(
            stats.mean_region_size * stats.num_regions, stats.num_cells
        )

    @given(points_2d(max_size=10))
    @settings(max_examples=30)
    def test_stored_ids_bounded_by_storage_analysis(self, pts):
        # Paper bound: O(min(s, n)^2 * n) stored ids.
        stats = diagram_statistics(quadrant_scanning(pts))
        assert stats.stored_ids <= stats.num_regions * len(pts)
