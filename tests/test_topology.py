"""Tests for the region adjacency graph and crossing distances."""

import networkx as nx
import pytest
from hypothesis import given, settings

from repro.applications.continuous import continuous_skyline
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.topology import (
    crossing_distance,
    neighbouring_results,
    region_adjacency,
    region_of,
)
from repro.errors import QueryError

from tests.conftest import points_2d


class TestAdjacencyGraph:
    def test_single_point_two_regions(self):
        graph = region_adjacency(quadrant_scanning([(1, 1)]))
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 1
        # The two regions share two cell edges.
        (u, v, data), = graph.edges(data=True)
        assert data["boundary"] == 2

    def test_nodes_carry_results(self, staircase):
        graph = region_adjacency(quadrant_scanning(staircase))
        results = {data["result"] for _, data in graph.nodes(data=True)}
        assert (0, 1, 2) in results
        assert () in results

    def test_rejects_non_2d(self):
        from repro.diagram.highdim import quadrant_baseline_nd

        with pytest.raises(QueryError):
            region_adjacency(quadrant_baseline_nd([(1, 1, 1)]))

    @given(points_2d(max_size=9))
    @settings(max_examples=30)
    def test_graph_is_connected(self, pts):
        graph = region_adjacency(quadrant_scanning(pts))
        assert nx.is_connected(graph)

    @given(points_2d(max_size=9))
    @settings(max_examples=30)
    def test_adjacent_regions_have_distinct_results(self, pts):
        graph = region_adjacency(quadrant_scanning(pts))
        for u, v in graph.edges():
            assert graph.nodes[u]["result"] != graph.nodes[v]["result"]

    @given(points_2d(max_size=9))
    @settings(max_examples=30)
    def test_node_count_matches_polyominos(self, pts):
        diagram = quadrant_scanning(pts)
        graph = region_adjacency(diagram)
        assert graph.number_of_nodes() == len(diagram.polyominos())


class TestCrossingDistance:
    def test_same_region_is_zero(self, staircase):
        diagram = quadrant_scanning(staircase)
        assert crossing_distance(diagram, (0, 0), (0.5, 0.5)) == 0

    def test_staircase_corner_to_corner(self, staircase):
        diagram = quadrant_scanning(staircase)
        assert crossing_distance(diagram, (0, 0), (100, 100)) == 3

    def test_accepts_prebuilt_graph(self, staircase):
        diagram = quadrant_scanning(staircase)
        graph = region_adjacency(diagram)
        assert crossing_distance(diagram, (0, 0), (100, 100), graph=graph) == 3

    @given(points_2d(max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_lower_bounds_straight_line_crossings(self, pts):
        # The shortest region path never exceeds the number of grid-line
        # crossings of a straight route (a diagonal corner crossing on the
        # segment counts as two boundary steps, which is why the comparison
        # is against per-axis crossings rather than timeline entries).
        diagram = quadrant_scanning(pts)
        graph = region_adjacency(diagram)
        start, end = (-1.0, -1.0), (1000.0, 1000.0)
        crossings = sum(
            sum(1 for v in axis if start[d] < v < end[d])
            for d, axis in enumerate(diagram.grid.axes)
        )
        shortest = crossing_distance(diagram, start, end, graph=graph)
        assert shortest <= crossings
        # And the straight-line timeline never changes more often than it
        # crosses boundaries.
        straight = len(continuous_skyline(diagram, start, end)) - 1
        assert straight <= crossings


class TestNeighbouringResults:
    def test_origin_region_neighbours(self, staircase):
        diagram = quadrant_scanning(staircase)
        neighbours = neighbouring_results(diagram, (0, 0))
        # From the full-skyline region, one step drops one point.
        assert (1, 2) in neighbours
        assert (0, 1) in neighbours

    def test_region_of_locates(self, staircase):
        diagram = quadrant_scanning(staircase)
        assert region_of(diagram, (0, 0)) == region_of(diagram, (0.5, 0.5))
        assert region_of(diagram, (0, 0)) != region_of(diagram, (100, 100))

    @given(points_2d(max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_neighbours_are_reachable_by_small_moves(self, pts):
        diagram = quadrant_scanning(pts)
        graph = region_adjacency(diagram)
        for node in graph.nodes:
            assert graph.degree(node) >= (
                1 if graph.number_of_nodes() > 1 else 0
            )
