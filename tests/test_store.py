"""The array-backed ResultStore and its equivalence with the dict path.

The store is a pure representation change: every construction algorithm
must produce a diagram ``__eq__``-identical to the one built from a plain
``dict[cell, result]``.  The hypothesis properties here pin that down for
the quadrant, global and dynamic scanning engines against dict-producing
references, on tie-heavy integer data, float data, and duplicates.
"""

from __future__ import annotations

from heapq import merge as heap_merge

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.diagram.dynamic_baseline import dynamic_baseline
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.global_diagram import (
    global_diagram,
    quadrant_diagram_for_mask,
)
from repro.diagram.quadrant_scanning import (
    quadrant_scanning,
    quadrant_scanning_reference,
)
from repro.diagram.store import ResultStore

from tests.conftest import points_2d


def float_points_2d(min_size: int = 1, max_size: int = 12):
    coordinate = st.floats(
        min_value=0.0, max_value=8.0, allow_nan=False, width=32
    )
    return points_2d(
        min_size=min_size, max_size=max_size, coordinate=coordinate
    )


def with_duplicates(points: list) -> list:
    """Double a prefix of the list so duplicate points are guaranteed."""
    return points + points[: (len(points) + 1) // 2]


# ----------------------------------------------------------------------
# ResultStore unit behaviour
# ----------------------------------------------------------------------
class TestResultStore:
    def test_default_is_all_empty(self):
        store = ResultStore((2, 3))
        assert store.num_cells == 6
        assert store.distinct_count == 1
        assert store.result_at((1, 2)) == ()

    def test_ids_without_table_rejected(self):
        with pytest.raises(ValueError, match="result table"):
            ResultStore((2, 2), np.zeros((2, 2), dtype=np.int32))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            ResultStore((2, 2), np.zeros((2, 3), dtype=np.int32), [()])

    def test_from_dict_roundtrip(self):
        results = {
            (0, 0): (0, 1),
            (0, 1): (0,),
            (1, 0): (0, 1),
            (1, 1): (),
        }
        store = ResultStore.from_dict((2, 2), results)
        assert store.to_dict() == results
        assert store.distinct_count == 3
        assert list(store.items()) == sorted(results.items())

    def test_id_at_out_of_range(self):
        store = ResultStore((2, 2))
        with pytest.raises(KeyError):
            store.id_at((2, 0))
        with pytest.raises(KeyError):
            store.id_at((0, 0, 0))

    def test_intern_reuses_ids(self):
        store = ResultStore((1, 1))
        assert store.intern(()) == 0
        rid = store.intern((3, 4))
        assert store.intern((3, 4)) == rid
        assert store.table[rid] == (3, 4)

    def test_lookup_batch_matches_result_at(self):
        results = {(i, j): (i + j,) for i in range(3) for j in range(2)}
        store = ResultStore.from_dict((3, 2), results)
        cells = np.array([[0, 0], [2, 1], [1, 0]])
        assert store.lookup_batch(cells) == [
            store.result_at(tuple(c)) for c in cells.tolist()
        ]
        assert store.lookup_batch(np.empty((0, 2), dtype=np.int64)) == []

    def test_flip_mirrors_cells(self):
        results = {(i, j): (i, j) for i in range(3) for j in range(2)}
        store = ResultStore.from_dict((3, 2), results)
        flipped = store.flip([0])
        for i in range(3):
            for j in range(2):
                assert flipped.result_at((i, j)) == store.result_at(
                    (2 - i, j)
                )
        both = store.flip([0, 1])
        assert both.result_at((0, 0)) == store.result_at((2, 1))
        assert store.flip([]) == store

    def test_equality_ignores_id_assignment_order(self):
        # Same per-cell results, ids discovered in different orders.
        a = ResultStore(
            (2, 1), np.array([[0], [1]], dtype=np.int32), [(5,), (7,)]
        )
        b = ResultStore(
            (2, 1), np.array([[1], [0]], dtype=np.int32), [(7,), (5,)]
        )
        assert a == b

    def test_inequality_on_content(self):
        a = ResultStore((2, 1), np.array([[0], [1]], dtype=np.int32), [(5,), (7,)])
        c = ResultStore((2, 1), np.array([[0], [1]], dtype=np.int32), [(5,), (8,)])
        d = ResultStore((1, 2), np.array([[0, 1]], dtype=np.int32), [(5,), (7,)])
        assert a != c
        assert a != d

    def test_repr_is_o1(self):
        store = ResultStore((4, 4))
        assert "distinct=1" in repr(store)


# ----------------------------------------------------------------------
# Diagram-level equivalence with dict-based construction
# ----------------------------------------------------------------------
def _dict_diagram(diagram: SkylineDiagram) -> SkylineDiagram:
    """Rebuild a diagram through the historical dict constructor path."""
    return SkylineDiagram(
        diagram.grid,
        dict(diagram.cells()),
        kind=diagram.kind,
        mask=diagram.mask,
        algorithm=diagram.algorithm,
    )


@settings(deadline=None, max_examples=60)
@given(points_2d(max_size=14))
def test_quadrant_store_equals_reference_int(points):
    assert quadrant_scanning(points) == quadrant_scanning_reference(points)


@settings(deadline=None, max_examples=40)
@given(float_points_2d(max_size=12))
def test_quadrant_store_equals_reference_float(points):
    assert quadrant_scanning(points) == quadrant_scanning_reference(points)


@settings(deadline=None, max_examples=40)
@given(points_2d(max_size=8))
def test_quadrant_store_equals_reference_duplicates(points):
    points = with_duplicates(points)
    assert quadrant_scanning(points) == quadrant_scanning_reference(points)


@settings(deadline=None, max_examples=40)
@given(points_2d(max_size=10))
def test_quadrant_store_survives_dict_roundtrip(points):
    diagram = quadrant_scanning(points)
    assert diagram == _dict_diagram(diagram)


@settings(deadline=None, max_examples=30)
@given(points_2d(max_size=8))
def test_global_store_equals_dict_union(points):
    """The array-path global union matches the seed per-cell dict union."""
    built = global_diagram(points)
    quadrants = [
        quadrant_diagram_for_mask(points, mask, quadrant_scanning_reference)
        for mask in range(4)
    ]
    results = {}
    for cell, first in quadrants[0].cells():
        parts = [first]
        parts.extend(d.result_at(cell) for d in quadrants[1:])
        results[cell] = tuple(heap_merge(*parts))
    reference = SkylineDiagram(
        quadrants[0].grid, results, kind="global", algorithm="scanning"
    )
    assert built == reference


@settings(deadline=None, max_examples=20)
@given(points_2d(min_size=1, max_size=6))
def test_dynamic_store_equals_dict_baseline(points):
    """Store-backed Algorithm 7 matches the dict-producing baseline."""
    assert dynamic_scanning(points) == dynamic_baseline(points)


@settings(deadline=None, max_examples=20)
@given(points_2d(min_size=1, max_size=6))
def test_dynamic_store_survives_dict_roundtrip(points):
    diagram = dynamic_scanning(points)
    rebuilt = DynamicDiagram(
        diagram.subcells, dict(diagram.cells()), algorithm=diagram.algorithm
    )
    assert diagram == rebuilt


class TestConsForestTable:
    """The lazy cons-forest table behind vectorized builds."""

    def _forest(self):
        from repro.diagram.store import ConsForestTable

        # Three corner groups; node 1 = group 0 at the root, node 2
        # merges group 1 into node 1, node 3 = group 2 standalone.
        rep = np.asarray([0, 1, 2], dtype=np.int64)
        par = np.asarray([-1, 0, -1], dtype=np.int64)
        groups = [(4,), (1, 7), (2,)]
        return ConsForestTable(rep, par, groups)

    def test_lazy_results_match_materialize(self):
        table = self._forest()
        assert len(table) == 4
        expected = [(), (4,), (1, 4, 7), (2,)]
        assert table.materialize() == expected
        assert [table.result(rid) for rid in range(4)] == expected
        assert [table[rid] for rid in range(4)] == expected

    def test_chain_cache_is_order_independent(self):
        # Deep chains resolve through the nearest cached ancestor; the
        # answer must not depend on which id is asked first.
        eager = self._forest().materialize()
        deep_first = self._forest()
        assert deep_first.result(2) == eager[2]
        assert deep_first.result(1) == eager[1]
        shallow_first = self._forest()
        assert shallow_first.result(1) == eager[1]
        assert shallow_first.result(2) == eager[2]

    def test_store_upgrades_lazy_table_on_access(self):
        from repro.diagram.pipeline import BuildOptions
        from repro.diagram.store import ConsForestTable

        points = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0), (5.0, 4.0)]
        store = quadrant_scanning(
            points, build_options=BuildOptions(executor="vectorized")
        ).store
        assert isinstance(store._table, ConsForestTable)
        distinct = store.distinct_count  # O(1) on the lazy forest
        lazy = [store.result_tuple(rid) for rid in range(distinct)]
        assert store.table == lazy  # property access materializes
        assert isinstance(store._table, list)
        assert store == quadrant_scanning(points).store


class TestLazyFingerprint:
    """fingerprint/audit must not force a lazy table (ISSUE PR 7)."""

    def _lazy_store(self):
        from repro.diagram.pipeline import BuildOptions

        points = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0), (5.0, 4.0)]
        return quadrant_scanning(
            points, build_options=BuildOptions(executor="vectorized")
        ).store

    def test_fingerprint_leaves_table_lazy(self):
        from repro.diagram.store import ConsForestTable

        store = self._lazy_store()
        digest = store.fingerprint()
        assert type(store._table) is ConsForestTable
        _ = store.table  # force materialization
        assert isinstance(store._table, list)
        assert store.fingerprint() == digest

    def test_audit_leaves_table_lazy(self):
        from repro.diagram.pipeline import BuildOptions
        from repro.diagram.store import ConsForestTable

        points = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0), (5.0, 4.0)]
        diagram = quadrant_scanning(
            points, build_options=BuildOptions(executor="vectorized")
        )
        diagram.audit()
        assert type(diagram.store._table) is ConsForestTable

    def test_table_view_does_not_upgrade(self):
        from repro.diagram.store import ConsForestTable

        store = self._lazy_store()
        view = store.table_view()
        assert type(store._table) is ConsForestTable
        assert list(view) == store.table  # upgrade happens only here
