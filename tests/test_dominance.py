"""Unit and property tests for the dominance predicates."""

from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.dominance import (
    dominates,
    dominates_dynamic,
    dominates_quadrant,
    incomparable,
    quadrant_of,
    quadrants_of,
    reflect_point,
    reflect_points,
)

coords = st.tuples(st.integers(-5, 5), st.integers(-5, 5))
coords3 = st.tuples(*([st.integers(-4, 4)] * 3))


class TestDominates:
    def test_strict_everywhere(self):
        assert dominates((1, 1), (2, 2))

    def test_weak_plus_strict(self):
        assert dominates((1, 2), (1, 3))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 2), (1, 2))

    def test_incomparable(self):
        assert incomparable((1, 3), (3, 1))
        assert not incomparable((1, 1), (2, 2))

    @given(coords)
    def test_irreflexive(self, p):
        assert not dominates(p, p)

    @given(coords, coords)
    def test_antisymmetric(self, p, q):
        assert not (dominates(p, q) and dominates(q, p))

    @given(coords, coords, coords)
    def test_transitive(self, p, q, r):
        if dominates(p, q) and dominates(q, r):
            assert dominates(p, r)


class TestDynamicDominance:
    def test_cross_quadrant_domination(self):
        # p is left of q's query, r right of it; p still dominates r.
        assert dominates_dynamic((9, 9), (12, 12), (10, 10))

    def test_quadrant_alias(self):
        assert dominates_quadrant((9, 9), (12, 12), (10, 10))

    def test_origin_reduces_to_traditional(self):
        origin = (0, 0)
        assert dominates_dynamic((1, 1), (2, 2), origin) == dominates(
            (1, 1), (2, 2)
        )

    @given(coords, coords, coords)
    def test_matches_mapped_min_order(self, p, q, query):
        mapped_p = tuple(abs(a - c) for a, c in zip(p, query))
        mapped_q = tuple(abs(a - c) for a, c in zip(q, query))
        assert dominates_dynamic(p, q, query) == dominates(mapped_p, mapped_q)


class TestQuadrants:
    def test_first_quadrant_is_zero(self):
        assert quadrant_of((11, 12), (10, 10)) == 0

    def test_negative_sides_set_bits(self):
        assert quadrant_of((5, 12), (10, 10)) == 0b01
        assert quadrant_of((12, 5), (10, 10)) == 0b10
        assert quadrant_of((5, 5), (10, 10)) == 0b11

    def test_boundary_point_goes_to_nonnegative_side(self):
        assert quadrant_of((10, 10), (10, 10)) == 0

    def test_quadrants_of_interior_point(self):
        assert quadrants_of((12, 12), (10, 10)) == [0]

    def test_quadrants_of_boundary_point(self):
        assert sorted(quadrants_of((10, 5), (10, 10))) == [0b10, 0b11]

    def test_quadrants_of_query_itself(self):
        assert sorted(quadrants_of((10, 10), (10, 10))) == [0, 1, 2, 3]

    @given(coords, coords)
    def test_quadrant_of_in_quadrants_of(self, p, q):
        assert quadrant_of(p, q) in quadrants_of(p, q)


class TestReflection:
    def test_reflect_point(self):
        assert reflect_point((3, 4), 0b10) == (3.0, -4.0)
        assert reflect_point((3, 4), 0b11) == (-3.0, -4.0)

    def test_reflect_points(self):
        assert reflect_points([(1, 2), (3, 4)], 0b01) == [
            (-1.0, 2.0),
            (-3.0, 4.0),
        ]

    @given(coords, st.integers(0, 3))
    def test_involution(self, p, mask):
        assert reflect_point(reflect_point(p, mask), mask) == tuple(
            float(x) for x in p
        )

    @given(coords, coords, st.integers(0, 3))
    def test_reflection_preserves_dominance_pattern(self, p, q, mask):
        # Reflecting both operands turns quadrant-mask dominance relative to
        # the origin into first-quadrant dominance.
        rp, rq = reflect_point(p, mask), reflect_point(q, mask)
        assert dominates_dynamic(p, q, (0, 0)) == dominates_dynamic(
            rp, rq, (0, 0)
        )

    @given(coords3, st.integers(0, 7))
    def test_involution_3d(self, p, mask):
        assert reflect_point(reflect_point(p, mask), mask) == tuple(
            float(x) for x in p
        )
