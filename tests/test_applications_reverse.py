"""Tests for reverse skyline queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.reverse_skyline import (
    reverse_skyline,
    reverse_skyline_brute,
)
from repro.diagram.global_diagram import global_diagram
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.skyline.queries import global_skyline

from tests.conftest import points_2d

queries = st.tuples(st.integers(-1, 9), st.integers(-1, 9))


class TestBrute:
    def test_isolated_query_sees_nearest_structure(self):
        # The middle point has the query in its dynamic skyline.
        assert reverse_skyline_brute([(0, 0), (4, 4), (10, 10)], (5, 5)) == (
            1,
            2,
        )

    def test_blocked_point_excluded(self):
        # p1 sits between p0 and the query, blocking p0.
        assert reverse_skyline_brute([(0, 0), (2, 2)], (3, 3)) == (1,)

    def test_single_point_always_reverse_skyline(self):
        assert reverse_skyline_brute([(7, 7)], (0, 0)) == (0,)


class TestDiagramAccelerated:
    @given(points_2d(max_size=9), queries)
    @settings(max_examples=40, deadline=None)
    def test_matches_brute(self, pts, q):
        assert reverse_skyline(pts, q) == reverse_skyline_brute(pts, q)

    @given(points_2d(max_size=9), queries)
    @settings(max_examples=30, deadline=None)
    def test_subset_of_global_skyline_in_general_position(self, pts, q):
        # The subset property needs the query off every point's coordinate
        # lines; a shared coordinate admits "hybrid" dominators (see the
        # module docstring), which is why reverse_skyline falls back to
        # brute force in that case.
        if any(p[d] == q[d] for p in pts for d in range(2)):
            return
        assert set(reverse_skyline_brute(pts, q)) <= set(
            global_skyline(pts, q)
        )

    def test_degenerate_query_on_point_coordinate(self):
        # q shares x with both points: the hybrid dominator (q_x, p_y)
        # exists, yet p1 is still in the reverse skyline.
        pts = [(0, 0), (0, 1)]
        assert reverse_skyline_brute(pts, (0, 0)) == (0, 1)
        assert reverse_skyline(pts, (0, 0)) == (0, 1)

    def test_accepts_prebuilt_diagram(self):
        pts = [(0, 0), (4, 4), (10, 10)]
        diagram = global_diagram(pts)
        assert reverse_skyline(pts, (5, 5), diagram=diagram) == (1, 2)

    def test_rejects_non_global_diagram(self):
        pts = [(0, 0), (4, 4)]
        with pytest.raises(ValueError, match="global"):
            reverse_skyline(pts, (1, 1), diagram=quadrant_scanning(pts))
