"""Tests for the ASCII and SVG renderers."""

import pytest
from hypothesis import given, settings

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.geometry.point import Dataset
from repro.viz.ascii_art import ascii_diagram
from repro.viz.svg import render_svg

from tests.conftest import points_2d


class TestAscii:
    def test_single_point(self):
        art = ascii_diagram(quadrant_scanning([(1, 1)]), legend=False)
        assert art == "BB\nAB"

    def test_legend_lists_results(self):
        ds = Dataset([(1, 1)], names=["only"])
        art = ascii_diagram(quadrant_scanning(ds))
        assert "A: {only}" in art
        assert "B: {}" in art

    def test_row_count_matches_grid(self, staircase):
        art = ascii_diagram(quadrant_scanning(staircase), legend=False)
        assert len(art.splitlines()) == 4  # sy = 4 cell rows

    def test_rejects_non_2d(self):
        from repro.diagram.highdim import quadrant_baseline_nd

        with pytest.raises(ValueError):
            ascii_diagram(quadrant_baseline_nd([(1, 1, 1)]))

    def test_works_on_dynamic_diagrams(self):
        art = ascii_diagram(dynamic_scanning([(0, 0), (4, 4)]), legend=False)
        assert len(art.splitlines()) == 4

    @given(points_2d(max_size=6))
    @settings(max_examples=15)
    def test_characters_cover_all_cells(self, pts):
        diagram = quadrant_scanning(pts)
        art = ascii_diagram(diagram, legend=False)
        lines = art.splitlines()
        sx, sy = diagram.grid.shape
        assert len(lines) == sy
        assert all(len(line) == sx for line in lines)


class TestSvg:
    def test_structure(self, staircase):
        svg = render_svg(quadrant_scanning(staircase))
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")

    def test_one_polygon_per_boundary_loop(self, staircase):
        diagram = quadrant_scanning(staircase)
        loops = sum(len(p.boundary()) for p in diagram.polyominos())
        svg = render_svg(diagram)
        assert svg.count("<polygon") == loops

    def test_points_rendered(self, staircase):
        svg = render_svg(quadrant_scanning(staircase))
        assert svg.count("<circle") == 3
        assert "p0" in svg

    def test_points_hidden(self, staircase):
        svg = render_svg(quadrant_scanning(staircase), show_points=False)
        assert "<circle" not in svg

    def test_custom_size(self, staircase):
        svg = render_svg(quadrant_scanning(staircase), width=100, height=50)
        assert 'width="100"' in svg
        assert 'height="50"' in svg

    def test_rejects_non_2d(self):
        from repro.diagram.highdim import quadrant_baseline_nd

        with pytest.raises(ValueError):
            render_svg(quadrant_baseline_nd([(1, 1, 1)]))

    def test_empty_result_region_is_grey(self, staircase):
        svg = render_svg(quadrant_scanning(staircase))
        assert "#f2f2f2" in svg

    def test_deterministic(self, staircase):
        diagram = quadrant_scanning(staircase)
        assert render_svg(diagram) == render_svg(diagram)

    @given(points_2d(max_size=6))
    @settings(max_examples=10)
    def test_renders_arbitrary_diagrams(self, pts):
        svg = render_svg(quadrant_scanning(pts))
        assert "<polygon" in svg


class TestSvgExtras:
    def test_sweep_rendering(self, staircase):
        from repro.diagram import quadrant_sweeping
        from repro.viz.svg_extras import render_sweep_svg

        sweep = quadrant_sweeping(staircase)
        svg = render_sweep_svg(sweep)
        assert svg.startswith("<svg")
        assert svg.count("<polyline") == len(sweep.polyominos)
        assert svg.count("<circle") == 3

    def test_voronoi_rendering(self):
        from repro.voronoi.diagram import VoronoiDiagram
        from repro.viz.svg_extras import render_voronoi_svg

        svg = render_voronoi_svg(VoronoiDiagram([(2, 2), (8, 8), (2, 8)]))
        assert svg.count("<polygon") == 3
        assert svg.rstrip().endswith("</svg>")

    def test_renders_are_deterministic(self, staircase):
        from repro.diagram import quadrant_sweeping
        from repro.viz.svg_extras import render_sweep_svg

        sweep = quadrant_sweeping(staircase)
        assert render_sweep_svg(sweep) == render_sweep_svg(sweep)
