"""Unit and property tests for skyline layers."""

import pytest
from hypothesis import given

from repro.geometry.dominance import dominates
from repro.skyline.algorithms import skyline_brute
from repro.skyline.layers import skyline_layers, skyline_layers_2d

from tests.conftest import points_2d, points_nd


class TestPeeling:
    def test_chain_gives_singleton_layers(self):
        assert skyline_layers([(1, 1), (2, 2), (3, 3)]) == [(0,), (1,), (2,)]

    def test_antichain_gives_one_layer(self, staircase):
        assert skyline_layers(staircase) == [(0, 1, 2)]

    def test_first_layer_is_the_skyline(self):
        pts = [(1, 4), (2, 2), (4, 1), (3, 3), (5, 5)]
        assert skyline_layers(pts)[0] == skyline_brute(pts)

    def test_duplicates_stay_on_one_layer(self):
        assert skyline_layers([(1, 1), (1, 1), (2, 2)]) == [(0, 1), (2,)]

    def test_three_dimensional(self):
        pts = [(1, 1, 1), (2, 2, 2), (1, 3, 2)]
        assert skyline_layers(pts) == [(0,), (1, 2)]


class TestFastScan:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            skyline_layers_2d([(1, 2, 3)])

    def test_duplicate_on_later_layer(self):
        # Duplicates whose layer is decided by an equal-height dominator.
        pts = [(1, 1), (2, 5), (5, 5), (5, 5)]
        assert skyline_layers_2d(pts) == skyline_layers(pts)

    @given(points_2d(max_size=18))
    def test_matches_peeling(self, pts):
        assert skyline_layers_2d(pts) == skyline_layers(pts)


class TestLayerInvariants:
    @given(points_2d(min_size=1, max_size=15))
    def test_layers_partition_the_dataset(self, pts):
        layers = skyline_layers(pts)
        seen = [i for layer in layers for i in layer]
        assert sorted(seen) == list(range(len(pts)))

    @given(points_2d(min_size=1, max_size=15))
    def test_no_dominance_within_a_layer(self, pts):
        for layer in skyline_layers(pts):
            for a in layer:
                for b in layer:
                    assert not dominates(pts[a], pts[b]) or pts[a] == pts[b]

    @given(points_2d(min_size=1, max_size=15))
    def test_every_deep_point_dominated_by_previous_layer(self, pts):
        layers = skyline_layers(pts)
        for k in range(1, len(layers)):
            for q in layers[k]:
                assert any(dominates(pts[p], pts[q]) for p in layers[k - 1])

    @given(points_nd(3, max_size=10))
    def test_partition_in_3d(self, pts):
        layers = skyline_layers(pts)
        seen = [i for layer in layers for i in layer]
        assert sorted(seen) == list(range(len(pts)))
