"""Unit tests for the point/dataset model."""

import pytest

from repro.errors import DatasetError
from repro.geometry.point import Dataset, as_point, ensure_dataset


class TestAsPoint:
    def test_coerces_ints_to_floats(self):
        assert as_point([1, 2]) == (1.0, 2.0)

    def test_accepts_any_iterable(self):
        assert as_point(iter([3, 4])) == (3.0, 4.0)

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            as_point([])

    def test_rejects_non_numeric(self):
        with pytest.raises(DatasetError):
            as_point(["a", "b"])


class TestDatasetConstruction:
    def test_basic(self):
        ds = Dataset([(1, 2), (3, 4)])
        assert len(ds) == 2
        assert ds.dim == 2
        assert ds[1] == (3.0, 4.0)

    def test_rejects_empty_dataset(self):
        with pytest.raises(DatasetError):
            Dataset([])

    def test_rejects_ragged_points(self):
        with pytest.raises(DatasetError, match="dimensions"):
            Dataset([(1, 2), (3, 4, 5)])

    def test_rejects_nan(self):
        with pytest.raises(DatasetError, match="non-finite"):
            Dataset([(float("nan"), 1)])

    def test_rejects_infinity(self):
        with pytest.raises(DatasetError, match="non-finite"):
            Dataset([(float("inf"), 1)])

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(DatasetError, match="names"):
            Dataset([(1, 2)], names=["a", "b"])

    def test_duplicates_allowed(self):
        ds = Dataset([(1, 1), (1, 1)])
        assert ds[0] == ds[1]


class TestDatasetBehaviour:
    def test_iteration_order_is_id_order(self):
        pts = [(3, 1), (1, 3), (2, 2)]
        assert list(Dataset(pts)) == [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0)]

    def test_names(self):
        ds = Dataset([(1, 2)], names=["alpha"])
        assert ds.name_of(0) == "alpha"

    def test_default_names(self):
        ds = Dataset([(1, 2), (3, 4)])
        assert ds.name_of(1) == "p1"

    def test_bounds(self):
        ds = Dataset([(1, 9), (5, 2), (3, 4)])
        assert ds.bounds() == ((1.0, 2.0), (5.0, 9.0))

    def test_equality_and_hash(self):
        a = Dataset([(1, 2)])
        b = Dataset([(1.0, 2.0)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Dataset([(2, 1)])

    def test_equality_with_other_types(self):
        assert Dataset([(1, 2)]) != [(1, 2)]

    def test_repr(self):
        assert repr(Dataset([(1, 2)])) == "Dataset(n=1, dim=2)"


class TestProjection:
    def test_project_keeps_order(self):
        ds = Dataset([(1, 2, 3), (4, 5, 6)])
        assert ds.project([2, 0]).points == ((3.0, 1.0), (6.0, 4.0))

    def test_project_preserves_names(self):
        ds = Dataset([(1, 2, 3)], names=["x"])
        assert ds.project([0]).name_of(0) == "x"

    def test_project_rejects_empty(self):
        with pytest.raises(DatasetError):
            Dataset([(1, 2)]).project([])

    def test_project_rejects_out_of_range(self):
        with pytest.raises(DatasetError):
            Dataset([(1, 2)]).project([2])


class TestEnsureDataset:
    def test_passthrough(self):
        ds = Dataset([(1, 2)])
        assert ensure_dataset(ds) is ds

    def test_wraps_lists(self):
        assert ensure_dataset([(1, 2)]) == Dataset([(1, 2)])
