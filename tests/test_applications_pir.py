"""Tests for PIR-based private skyline queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.pir import (
    PirClient,
    PirServer,
    PrivateSkylineClient,
    _decode_record,
    _encode_record,
    diagram_database,
)
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import ProtocolError

from tests.conftest import points_2d


class TestRecords:
    def test_round_trip(self):
        blob = _encode_record((3, 7, 11), 32)
        assert len(blob) == 32
        assert _decode_record(blob) == (3, 7, 11)

    def test_empty_result(self):
        assert _decode_record(_encode_record((), 8)) == ()

    def test_overflow_rejected(self):
        with pytest.raises(ProtocolError, match="overflow"):
            _encode_record((1, 2, 3), 8)

    @given(st.lists(st.integers(0, 2**31), max_size=6).map(sorted))
    def test_round_trip_property(self, ids):
        width = 4 * (len(ids) + 1)
        assert _decode_record(_encode_record(tuple(ids), width)) == tuple(ids)


class TestXorPir:
    def test_retrieves_every_record(self):
        db = [bytes([i]) * 8 for i in range(10)]
        client = PirClient(len(db))
        servers = (PirServer(db), PirServer(db))
        for index in range(10):
            sa, sb = client.selectors(index)
            record = PirClient.decode(
                servers[0].respond(sa), servers[1].respond(sb)
            )
            assert record == db[index]

    def test_selectors_differ_in_exactly_one_bit(self):
        client = PirClient(20)
        sa, sb = client.selectors(13)
        diff = bytes(a ^ b for a, b in zip(sa, sb))
        bits = [
            (byte_index * 8 + bit)
            for byte_index, byte in enumerate(diff)
            for bit in range(8)
            if byte >> bit & 1
        ]
        assert bits == [13]

    def test_selector_index_validation(self):
        with pytest.raises(ProtocolError):
            PirClient(4).selectors(4)
        with pytest.raises(ProtocolError):
            PirClient(0)

    def test_server_validation(self):
        with pytest.raises(ProtocolError):
            PirServer([])
        with pytest.raises(ProtocolError):
            PirServer([b"ab", b"abc"])
        with pytest.raises(ProtocolError, match="selector"):
            PirServer([b"ab"] * 20).respond(b"\x00")

    def test_decode_width_validation(self):
        with pytest.raises(ProtocolError):
            PirClient.decode(b"ab", b"abc")


class TestPrivateSkyline:
    def test_end_to_end(self, staircase):
        diagram = quadrant_scanning(staircase)
        db = diagram_database(diagram)
        client = PrivateSkylineClient(diagram.grid.axes, diagram.grid.shape)
        servers = (PirServer(db), PirServer(db))
        for q in [(0, 0), (4, 3), (100, 100)]:
            assert client.query(q, *servers) == diagram.query(q)

    @given(points_2d(max_size=7))
    @settings(max_examples=20, deadline=None)
    def test_private_answers_match_diagram(self, pts):
        diagram = quadrant_scanning(pts)
        db = diagram_database(diagram)
        client = PrivateSkylineClient(diagram.grid.axes, diagram.grid.shape)
        servers = (PirServer(db), PirServer(db))
        for cell in diagram.grid.cells():
            q = diagram.grid.representative(cell)
            assert client.query(q, *servers) == diagram.result_at(cell)

    def test_cell_index_is_row_major(self, staircase):
        diagram = quadrant_scanning(staircase)
        client = PrivateSkylineClient(diagram.grid.axes, diagram.grid.shape)
        # Cell (0, 0) is record 0; cell (0, 1) is record 1.
        assert client.cell_index((0, 0)) == 0
        assert client.cell_index((0, 1.5)) == 1
