"""Unit tests for polyomino boundary tracing."""

from repro.geometry.polyomino import Polyomino, trace_boundary


def _loop_set(loops):
    return {tuple(loop) for loop in loops}


def _signed_area(loop):
    area = 0
    for k in range(len(loop)):
        x0, y0 = loop[k]
        x1, y1 = loop[(k + 1) % len(loop)]
        area += x0 * y1 - x1 * y0
    return area / 2


class TestTraceBoundary:
    def test_single_cell(self):
        assert trace_boundary([(0, 0)]) == [[(0, 0), (1, 0), (1, 1), (0, 1)]]

    def test_rectangle_simplifies_collinear_vertices(self):
        loops = trace_boundary([(0, 0), (1, 0), (2, 0)])
        assert loops == [[(0, 0), (3, 0), (3, 1), (0, 1)]]

    def test_l_shape(self):
        loops = trace_boundary([(0, 0), (1, 0), (0, 1)])
        assert len(loops) == 1
        assert set(loops[0]) == {(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)}

    def test_outer_loop_is_counterclockwise(self):
        loops = trace_boundary([(0, 0), (1, 0)])
        assert _signed_area(loops[0]) > 0

    def test_region_with_hole(self):
        ring = {
            (i, j)
            for i in range(3)
            for j in range(3)
            if (i, j) != (1, 1)
        }
        loops = trace_boundary(ring)
        assert len(loops) == 2
        outer = max(loops, key=lambda lp: abs(_signed_area(lp)))
        inner = min(loops, key=lambda lp: abs(_signed_area(lp)))
        assert _signed_area(outer) == 9
        assert abs(_signed_area(inner)) == 1
        # The hole is traversed clockwise (negative signed area).
        assert _signed_area(inner) < 0

    def test_diagonal_pinch_produces_two_touching_loops(self):
        # Two cells meeting only at a corner: the left-turn rule keeps each
        # cell on its own loop.
        loops = trace_boundary([(0, 0), (1, 1)])
        assert len(loops) == 2
        assert _loop_set(loops) == {
            ((0, 0), (1, 0), (1, 1), (0, 1)),
            ((1, 1), (2, 1), (2, 2), (1, 2)),
        }

    def test_two_separate_components(self):
        loops = trace_boundary([(0, 0), (5, 5)])
        assert len(loops) == 2

    def test_total_boundary_area_matches_cell_count(self):
        cells = [(0, 0), (1, 0), (1, 1), (2, 1), (2, 2)]
        loops = trace_boundary(cells)
        assert sum(_signed_area(lp) for lp in loops) == len(cells)


class TestPolyomino:
    def _poly(self):
        return Polyomino(
            ident=3, result=(1, 2), cells=frozenset({(0, 0), (1, 0)})
        )

    def test_size(self):
        assert self._poly().size == 2

    def test_bounding_box(self):
        assert self._poly().bounding_box() == (0, 0, 1, 0)

    def test_boundary_delegates(self):
        assert self._poly().boundary() == [[(0, 0), (2, 0), (2, 1), (0, 1)]]

    def test_canonical_key_is_deterministic(self):
        a = self._poly()
        b = Polyomino(ident=9, result=(1, 2), cells=frozenset({(1, 0), (0, 0)}))
        assert a.canonical_key() == b.canonical_key()

    def test_frozen_and_hashable(self):
        assert hash(self._poly()) == hash(self._poly())
