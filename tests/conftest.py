"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import strategies as st

from repro.geometry.point import Dataset


def points_2d(
    min_size: int = 1,
    max_size: int = 12,
    coordinate: st.SearchStrategy | None = None,
):
    """Strategy: a list of 2-D points, tie-heavy by default.

    Small integer coordinates make ties and duplicates common, which is
    where grid compression and the multiset identities earn their keep.
    """
    if coordinate is None:
        coordinate = st.integers(min_value=0, max_value=8)
    return st.lists(
        st.tuples(coordinate, coordinate),
        min_size=min_size,
        max_size=max_size,
    )


def points_nd(
    dim: int,
    min_size: int = 1,
    max_size: int = 8,
    coordinate: st.SearchStrategy | None = None,
):
    """Strategy: a list of d-dimensional points with frequent ties."""
    if coordinate is None:
        coordinate = st.integers(min_value=0, max_value=6)
    return st.lists(
        st.tuples(*([coordinate] * dim)),
        min_size=min_size,
        max_size=max_size,
    )


def distinct_points_2d(min_size: int = 1, max_size: int = 12):
    """Strategy: 2-D points with all-distinct x and all-distinct y."""

    def build(xs: list[int], ys: list[int]) -> list[tuple[int, int]]:
        size = min(len(xs), len(ys))
        return list(zip(sorted(set(xs))[:size], sorted(set(ys))[:size]))

    return st.builds(
        build,
        st.lists(
            st.integers(0, 1000), min_size=min_size, max_size=max_size, unique=True
        ),
        st.lists(
            st.integers(0, 1000), min_size=min_size, max_size=max_size, unique=True
        ),
    ).filter(lambda pts: len(pts) >= min_size)


@pytest.fixture
def paper_like_hotels() -> Dataset:
    """A hotel dataset in the spirit of the paper's running example.

    Eleven hotels over (distance to downtown, price); several skyline
    layers, an anti-correlated staircase, and one tie on each axis.
    """
    return Dataset(
        [
            (2, 90),
            (4, 70),
            (6, 60),
            (9, 35),
            (12, 24),
            (15, 15),
            (20, 8),
            (4, 90),
            (9, 60),
            (15, 35),
            (20, 24),
        ],
        names=[f"h{i}" for i in range(11)],
    )


@pytest.fixture
def staircase() -> list[tuple[float, float]]:
    """Three mutually incomparable points (the whole set is the skyline)."""
    return [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]
