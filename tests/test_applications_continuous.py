"""Tests for continuous (moving-query) skyline timelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.continuous import TimelineEntry, continuous_skyline
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import QueryError
from repro.skyline.queries import dynamic_skyline, quadrant_skyline

from tests.conftest import points_2d

endpoints = st.tuples(
    st.floats(-1, 9).filter(lambda v: v == v), st.floats(-1, 9)
)


class TestTimelines:
    def test_horizontal_sweep_over_staircase(self, staircase):
        diagram = quadrant_scanning(staircase)
        timeline = continuous_skyline(diagram, (0, 0), (10, 0))
        assert [e.result for e in timeline] == [
            (0, 1, 2),
            (1, 2),
            (2,),
            (),
        ]

    def test_intervals_tile_the_segment(self, staircase):
        diagram = quadrant_scanning(staircase)
        timeline = continuous_skyline(diagram, (0, 0), (10, 10))
        assert timeline[0].t_enter == 0.0
        assert timeline[-1].t_exit == 1.0
        for a, b in zip(timeline, timeline[1:]):
            assert a.t_exit == b.t_enter

    def test_consecutive_entries_differ(self, staircase):
        diagram = quadrant_scanning(staircase)
        timeline = continuous_skyline(diagram, (0, 0), (10, 10))
        for a, b in zip(timeline, timeline[1:]):
            assert a.result != b.result

    def test_stationary_segment(self, staircase):
        diagram = quadrant_scanning(staircase)
        timeline = continuous_skyline(diagram, (4, 3), (4, 3))
        assert len(timeline) == 1
        assert timeline[0].result == quadrant_skyline(staircase, (4, 3))

    def test_dimension_mismatch(self, staircase):
        diagram = quadrant_scanning(staircase)
        with pytest.raises(QueryError):
            continuous_skyline(diagram, (0, 0, 0), (1, 1, 1))
        with pytest.raises(QueryError):
            continuous_skyline(diagram, (0, 0), (1, 1, 1))

    def test_works_on_dynamic_diagrams(self):
        diagram = dynamic_scanning([(0, 0), (10, 10)])
        # Crossing only the x bisector: p0 stays closer in y, so the result
        # grows from {p0} to the incomparable pair {p0, p1}.
        timeline = continuous_skyline(diagram, (1, 1), (9, 4))
        assert timeline[0].result == (0,)
        assert timeline[-1].result == (0, 1)
        # Crossing both bisectors flips all the way to {p1}.
        diagonal = continuous_skyline(diagram, (1, 1), (9, 9))
        assert diagonal[0].result == (0,)
        assert diagonal[-1].result == (1,)

    @given(points_2d(max_size=7), endpoints, endpoints)
    @settings(max_examples=25, deadline=None)
    def test_midpoints_match_from_scratch(self, pts, start, end):
        diagram = quadrant_scanning(pts)
        timeline = continuous_skyline(diagram, start, end)
        for entry in timeline:
            mid = (entry.t_enter + entry.t_exit) / 2
            probe = tuple(
                s + mid * (e - s) for s, e in zip(start, end)
            )
            assert entry.result == quadrant_skyline(pts, probe)

    @given(points_2d(max_size=5), endpoints, endpoints)
    @settings(max_examples=15, deadline=None)
    def test_dynamic_midpoints_match_from_scratch(self, pts, start, end):
        diagram = dynamic_scanning(pts)
        timeline = continuous_skyline(diagram, start, end)
        for entry in timeline:
            mid = (entry.t_enter + entry.t_exit) / 2
            probe = tuple(
                s + mid * (e - s) for s, e in zip(start, end)
            )
            # Interior probes only: a probe sitting exactly on a bisector
            # has tie semantics the diagram does not model.
            on_boundary = any(
                probe[d] in diagram.subcells.axes[d] for d in range(2)
            )
            if not on_boundary:
                assert entry.result == dynamic_skyline(pts, probe)

    def test_entry_dataclass(self):
        entry = TimelineEntry(0.0, 0.5, (1,))
        assert entry.t_exit == 0.5
