"""Tests for internal multiset/iteration helpers."""

from collections import Counter

from hypothesis import given
from hypothesis import strategies as st

from repro._util import dedupe_sorted, multiset_add_sub, pairs_upper

ids = st.lists(st.integers(0, 6), max_size=8).map(sorted)


class TestMultisetAddSub:
    def test_plain_merge(self):
        assert multiset_add_sub((1, 3), (2,), ()) == (1, 2, 3)

    def test_cancellation(self):
        assert multiset_add_sub((1, 2), (2, 3), (2,)) == (1, 2, 3)

    def test_saturation_clamps_at_zero(self):
        # 1 appears once but is subtracted twice: saturates, no underflow.
        assert multiset_add_sub((1,), (), (1, 1)) == ()

    def test_duplicates_survive(self):
        assert multiset_add_sub((1, 1), (1,), (1,)) == (1, 1)

    def test_all_empty(self):
        assert multiset_add_sub((), (), ()) == ()

    @given(ids, ids, ids)
    def test_matches_counter_arithmetic(self, a, b, c):
        expected = Counter(a) + Counter(b)
        expected.subtract(Counter(c))
        want = tuple(
            sorted(
                x
                for x, count in expected.items()
                for _ in range(max(0, count))
            )
        )
        assert multiset_add_sub(tuple(a), tuple(b), tuple(c)) == want

    @given(ids, ids)
    def test_adding_then_subtracting_is_identity(self, a, b):
        assert multiset_add_sub(tuple(a), tuple(b), tuple(b)) == tuple(a)

    @given(ids, ids, ids)
    def test_output_is_sorted(self, a, b, c):
        out = multiset_add_sub(tuple(a), tuple(b), tuple(c))
        assert list(out) == sorted(out)


class TestDedupeSorted:
    def test_collapses_runs(self):
        assert dedupe_sorted((1, 1, 2, 3, 3)) == (1, 2, 3)

    def test_empty(self):
        assert dedupe_sorted(()) == ()

    @given(ids)
    def test_matches_set(self, xs):
        assert dedupe_sorted(tuple(xs)) == tuple(sorted(set(xs)))


class TestPairsUpper:
    def test_small(self):
        assert list(pairs_upper(3)) == [(0, 1), (0, 2), (1, 2)]

    def test_zero_and_one(self):
        assert list(pairs_upper(0)) == []
        assert list(pairs_upper(1)) == []

    @given(st.integers(0, 12))
    def test_count(self, n):
        assert len(list(pairs_upper(n))) == n * (n - 1) // 2
