"""Tests for the sweeping algorithm (Theorem 2) and its geometry."""

from collections import defaultdict

import pytest
from hypothesis import given, settings

from repro.diagram.merge import partition_signature
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.quadrant_sweeping import quadrant_sweeping
from repro.errors import DimensionalityError

from tests.conftest import distinct_points_2d, points_2d


def _sweep_partition_signature(sweep):
    groups = defaultdict(set)
    for cell, owner in sweep.cell_partition().items():
        groups[owner].add(cell)
    return frozenset(frozenset(cells) for cells in groups.values())


class TestGeometry:
    def test_single_point(self):
        sweep = quadrant_sweeping([(5, 5)])
        assert len(sweep.polyominos) == 1
        assert sweep.polyominos[0].corner == (1, 1)
        assert sweep.polyominos[0].vertices == ((1, 1), (0, 1), (0, 0), (1, 0))

    def test_staircase_counts(self, staircase):
        sweep = quadrant_sweeping(staircase)
        # 6 interior intersections -> 6 polyominos (+ the outer region).
        assert len(sweep.polyominos) == 6
        assert sweep.num_regions == 7

    def test_rejects_higher_dimensions(self):
        with pytest.raises(DimensionalityError):
            quadrant_sweeping([(1, 2, 3)])

    def test_segment_extents(self, staircase):
        sweep = quadrant_sweeping(staircase)
        # Points in rank space: (1,3), (2,2), (3,1).
        assert sweep.vtop == [0, 3, 2, 1]
        assert sweep.hright == [0, 3, 2, 1]

    def test_walks_are_closed_staircases(self, staircase):
        sweep = quadrant_sweeping(staircase)
        for poly in sweep.polyominos:
            a, b = poly.corner
            assert poly.vertices[0] == (a, b)
            # The walk ends back on the corner's vertical line, lower down.
            assert poly.vertices[-1][0] == a
            assert poly.vertices[-1][1] < b

    @given(points_2d(max_size=12))
    @settings(max_examples=60)
    def test_one_polyomino_per_interior_vertex(self, pts):
        sweep = quadrant_sweeping(pts)
        num_x = len(sweep.grid.xs)
        num_y = len(sweep.grid.ys)
        interior = sum(
            1
            for a in range(1, num_x + 1)
            for b in range(1, num_y + 1)
            if sweep.vtop[a] >= b and sweep.hright[b] >= a
        )
        assert len(sweep.polyominos) == interior


class TestTheorem2:
    """The sweeping partition equals the merged equal-result partition."""

    @given(points_2d(max_size=12))
    @settings(max_examples=60)
    def test_partition_matches_merged_cells(self, pts):
        sweep = quadrant_sweeping(pts)
        merged = partition_signature(quadrant_scanning(pts).polyominos())
        assert _sweep_partition_signature(sweep) == merged

    @given(distinct_points_2d(max_size=10))
    def test_partition_matches_in_general_position(self, pts):
        sweep = quadrant_sweeping(pts)
        merged = partition_signature(quadrant_scanning(pts).polyominos())
        assert _sweep_partition_signature(sweep) == merged

    @given(points_2d(max_size=10))
    @settings(max_examples=40)
    def test_region_count_matches_merge(self, pts):
        sweep = quadrant_sweeping(pts)
        assert sweep.num_regions == len(quadrant_scanning(pts).polyominos())


class TestAnnotationAndQueries:
    def test_results_match_scanning(self, staircase):
        sweep = quadrant_sweeping(staircase)
        scanning = quadrant_scanning(staircase)
        for poly in sweep.polyominos:
            a, b = poly.corner
            assert sweep.results()[poly.corner] == scanning.result_at(
                (a - 1, b - 1)
            )

    @given(points_2d(max_size=8))
    @settings(max_examples=30)
    def test_query_agrees_with_cell_diagram(self, pts):
        sweep = quadrant_sweeping(pts)
        scanning = quadrant_scanning(pts)
        for cell in scanning.grid.cells():
            representative = scanning.grid.representative(cell)
            assert sweep.query(representative) == scanning.result_at(cell)

    def test_outer_region_is_empty_result(self, staircase):
        sweep = quadrant_sweeping(staircase)
        assert sweep.query((100, 100)) == ()

    def test_results_are_cached(self, staircase):
        sweep = quadrant_sweeping(staircase)
        assert sweep.results() is sweep.results()

    def test_repr(self, staircase):
        assert "polyominos=6" in repr(quadrant_sweeping(staircase))
