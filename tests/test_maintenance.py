"""Tests for incremental diagram maintenance (insert/delete)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagram.global_diagram import quadrant_diagram_for_mask
from repro.diagram.maintenance import delete_point, insert_point
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import QueryError

from tests.conftest import points_2d

coordinate = st.tuples(st.integers(0, 8), st.integers(0, 8))


def _same(a, b):
    return a.grid.axes == b.grid.axes and dict(a.cells()) == dict(b.cells())


class TestInsert:
    def test_new_dominating_point(self):
        updated = insert_point(quadrant_scanning([(5, 5)]), (2, 2))
        assert updated.result_at((0, 0)) == (1,)
        assert updated.result_at((1, 1)) == (0,)

    def test_new_dominated_point_changes_nothing_below(self):
        updated = insert_point(quadrant_scanning([(2, 2)]), (5, 5))
        assert updated.result_at((0, 0)) == (0,)
        assert updated.result_at((1, 1)) == (1,)

    def test_duplicate_point_joins_results(self):
        updated = insert_point(quadrant_scanning([(3, 3)]), (3, 3))
        assert updated.result_at((0, 0)) == (0, 1)

    def test_ids_are_appended(self, staircase):
        updated = insert_point(quadrant_scanning(staircase), (0, 0))
        assert updated.result_at((0, 0)) == (3,)
        assert len(updated.grid.dataset) == 4

    def test_rejects_non_quadrant(self, staircase):
        reflected = quadrant_diagram_for_mask(
            staircase, 1, quadrant_scanning
        )
        with pytest.raises(QueryError):
            insert_point(reflected, (0, 0))

    @given(points_2d(max_size=9), coordinate)
    @settings(max_examples=60, deadline=None)
    def test_matches_full_rebuild(self, pts, newp):
        updated = insert_point(quadrant_scanning(pts), newp)
        rebuilt = quadrant_scanning(pts + [newp])
        assert _same(updated, rebuilt)

    @given(points_2d(max_size=6), st.lists(coordinate, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_chained_inserts(self, pts, additions):
        diagram = quadrant_scanning(pts)
        for newp in additions:
            diagram = insert_point(diagram, newp)
        assert _same(diagram, quadrant_scanning(pts + additions))


class TestDelete:
    def test_deleting_the_dominator_exposes_points(self):
        diagram = quadrant_scanning([(1, 1), (2, 3), (3, 2)])
        updated = delete_point(diagram, 0)
        assert updated.result_at((0, 0)) == (0, 1)  # old ids 1, 2 remapped

    def test_deleting_a_dominated_point_is_a_projection(self):
        diagram = quadrant_scanning([(1, 1), (5, 5)])
        updated = delete_point(diagram, 1)
        assert updated.result_at((0, 0)) == (0,)
        assert updated.grid.shape == (2, 2)

    def test_id_remapping(self):
        diagram = quadrant_scanning([(9, 9), (1, 1), (2, 2)])
        updated = delete_point(diagram, 0)
        # Old ids 1, 2 are now 0, 1.
        assert updated.result_at((0, 0)) == (0,)

    def test_validation(self, staircase):
        diagram = quadrant_scanning(staircase)
        with pytest.raises(QueryError):
            delete_point(diagram, 99)
        with pytest.raises(QueryError):
            delete_point(quadrant_scanning([(1, 1)]), 0)

    @given(points_2d(min_size=2, max_size=9), st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_matches_full_rebuild(self, pts, seed):
        victim = seed % len(pts)
        updated = delete_point(quadrant_scanning(pts), victim)
        rebuilt = quadrant_scanning(
            [q for i, q in enumerate(pts) if i != victim]
        )
        assert _same(updated, rebuilt)

    @given(points_2d(min_size=1, max_size=7), coordinate)
    @settings(max_examples=25, deadline=None)
    def test_insert_then_delete_is_identity(self, pts, newp):
        diagram = quadrant_scanning(pts)
        round_trip = delete_point(insert_point(diagram, newp), len(pts))
        assert _same(round_trip, diagram)

    def test_chain_of_hidden_points_resurfaces_in_order(self):
        # p0 hides both p1 and p2, and p1 hides p2: deleting p0 must
        # resurface p1 only.
        diagram = quadrant_scanning([(1, 1), (2, 2), (3, 3)])
        updated = delete_point(diagram, 0)
        assert updated.result_at((0, 0)) == (0,)


class TestSkybandGuard:
    def test_maintenance_rejects_skyband_diagrams(self):
        from repro.diagram.skyband import skyband_sweep

        diagram = skyband_sweep([(1, 1), (2, 2)], k=2)
        with pytest.raises(QueryError, match="skyband"):
            insert_point(diagram, (0, 0))
        with pytest.raises(QueryError, match="skyband"):
            delete_point(diagram, 0)


class TestAuditedInterleaving:
    """Stateful drill: audit after every maintenance step (ISSUE PR 3)."""

    def test_interleaved_ops_audit_and_match_rebuild(self):
        import random

        from repro.skyline.queries import quadrant_skyline

        rng = random.Random(42)
        points = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]
        diagram = quadrant_scanning(points)
        for step in range(30):
            if len(points) > 1 and rng.random() < 0.4:
                victim = rng.randrange(len(points))
                diagram = delete_point(diagram, victim)
                del points[victim]
            else:
                p = (float(rng.randint(0, 9)), float(rng.randint(0, 9)))
                diagram = insert_point(diagram, p)
                points.append(p)
            # Self-audit: structural invariants + recurrence samples.
            fingerprint = diagram.audit()
            assert isinstance(fingerprint, str) and len(fingerprint) == 64
            # Differential: the maintained diagram equals a full rebuild.
            assert _same(diagram, quadrant_scanning(points))
            # Spot-check one query against direct evaluation.
            q = (rng.uniform(-1, 10), rng.uniform(-1, 10))
            assert diagram.query(q) == quadrant_skyline(points, q)

    def test_budgeted_insert_raises_and_preserves_original(self):
        from repro.errors import BudgetExceededError
        from repro.resilience import BuildBudget

        diagram = quadrant_scanning([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)])
        before = dict(diagram.cells())
        with pytest.raises(BudgetExceededError) as excinfo:
            insert_point(diagram, (2.0, 2.0), budget=BuildBudget(max_cells=2))
        assert excinfo.value.progress.cells_done > 2
        # Copy-on-write: the original diagram is untouched.
        assert dict(diagram.cells()) == before
        diagram.audit()

    def test_budgeted_delete_raises_and_preserves_original(self):
        from repro.errors import BudgetExceededError
        from repro.resilience import BuildBudget

        diagram = quadrant_scanning([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)])
        before = dict(diagram.cells())
        with pytest.raises(BudgetExceededError):
            delete_point(diagram, 0, budget=BuildBudget(max_cells=1))
        assert dict(diagram.cells()) == before

    def test_unbudgeted_maintenance_unchanged(self, staircase):
        updated = insert_point(quadrant_scanning(staircase), (4.0, 4.0))
        assert _same(updated, quadrant_scanning(staircase + [(4.0, 4.0)]))
