"""Tests for incremental diagram maintenance (insert/delete)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagram.global_diagram import quadrant_diagram_for_mask
from repro.diagram.maintenance import delete_point, insert_point
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import QueryError

from tests.conftest import points_2d

coordinate = st.tuples(st.integers(0, 8), st.integers(0, 8))


def _same(a, b):
    return a.grid.axes == b.grid.axes and dict(a.cells()) == dict(b.cells())


class TestInsert:
    def test_new_dominating_point(self):
        updated = insert_point(quadrant_scanning([(5, 5)]), (2, 2))
        assert updated.result_at((0, 0)) == (1,)
        assert updated.result_at((1, 1)) == (0,)

    def test_new_dominated_point_changes_nothing_below(self):
        updated = insert_point(quadrant_scanning([(2, 2)]), (5, 5))
        assert updated.result_at((0, 0)) == (0,)
        assert updated.result_at((1, 1)) == (1,)

    def test_duplicate_point_joins_results(self):
        updated = insert_point(quadrant_scanning([(3, 3)]), (3, 3))
        assert updated.result_at((0, 0)) == (0, 1)

    def test_ids_are_appended(self, staircase):
        updated = insert_point(quadrant_scanning(staircase), (0, 0))
        assert updated.result_at((0, 0)) == (3,)
        assert len(updated.grid.dataset) == 4

    def test_rejects_non_quadrant(self, staircase):
        reflected = quadrant_diagram_for_mask(
            staircase, 1, quadrant_scanning
        )
        with pytest.raises(QueryError):
            insert_point(reflected, (0, 0))

    @given(points_2d(max_size=9), coordinate)
    @settings(max_examples=60, deadline=None)
    def test_matches_full_rebuild(self, pts, newp):
        updated = insert_point(quadrant_scanning(pts), newp)
        rebuilt = quadrant_scanning(pts + [newp])
        assert _same(updated, rebuilt)

    @given(points_2d(max_size=6), st.lists(coordinate, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_chained_inserts(self, pts, additions):
        diagram = quadrant_scanning(pts)
        for newp in additions:
            diagram = insert_point(diagram, newp)
        assert _same(diagram, quadrant_scanning(pts + additions))


class TestDelete:
    def test_deleting_the_dominator_exposes_points(self):
        diagram = quadrant_scanning([(1, 1), (2, 3), (3, 2)])
        updated = delete_point(diagram, 0)
        assert updated.result_at((0, 0)) == (0, 1)  # old ids 1, 2 remapped

    def test_deleting_a_dominated_point_is_a_projection(self):
        diagram = quadrant_scanning([(1, 1), (5, 5)])
        updated = delete_point(diagram, 1)
        assert updated.result_at((0, 0)) == (0,)
        assert updated.grid.shape == (2, 2)

    def test_id_remapping(self):
        diagram = quadrant_scanning([(9, 9), (1, 1), (2, 2)])
        updated = delete_point(diagram, 0)
        # Old ids 1, 2 are now 0, 1.
        assert updated.result_at((0, 0)) == (0,)

    def test_validation(self, staircase):
        diagram = quadrant_scanning(staircase)
        with pytest.raises(QueryError):
            delete_point(diagram, 99)
        with pytest.raises(QueryError):
            delete_point(quadrant_scanning([(1, 1)]), 0)

    @given(points_2d(min_size=2, max_size=9), st.integers(0, 8))
    @settings(max_examples=60, deadline=None)
    def test_matches_full_rebuild(self, pts, seed):
        victim = seed % len(pts)
        updated = delete_point(quadrant_scanning(pts), victim)
        rebuilt = quadrant_scanning(
            [q for i, q in enumerate(pts) if i != victim]
        )
        assert _same(updated, rebuilt)

    @given(points_2d(min_size=1, max_size=7), coordinate)
    @settings(max_examples=25, deadline=None)
    def test_insert_then_delete_is_identity(self, pts, newp):
        diagram = quadrant_scanning(pts)
        round_trip = delete_point(insert_point(diagram, newp), len(pts))
        assert _same(round_trip, diagram)

    def test_chain_of_hidden_points_resurfaces_in_order(self):
        # p0 hides both p1 and p2, and p1 hides p2: deleting p0 must
        # resurface p1 only.
        diagram = quadrant_scanning([(1, 1), (2, 2), (3, 3)])
        updated = delete_point(diagram, 0)
        assert updated.result_at((0, 0)) == (0,)


class TestSkybandGuard:
    def test_maintenance_rejects_skyband_diagrams(self):
        from repro.diagram.skyband import skyband_sweep

        diagram = skyband_sweep([(1, 1), (2, 2)], k=2)
        with pytest.raises(QueryError, match="skyband"):
            insert_point(diagram, (0, 0))
        with pytest.raises(QueryError, match="skyband"):
            delete_point(diagram, 0)


class TestAuditedInterleaving:
    """Stateful drill: audit after every maintenance step (ISSUE PR 3)."""

    def test_interleaved_ops_audit_and_match_rebuild(self):
        import random

        from repro.skyline.queries import quadrant_skyline

        rng = random.Random(42)
        points = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]
        diagram = quadrant_scanning(points)
        for step in range(30):
            if len(points) > 1 and rng.random() < 0.4:
                victim = rng.randrange(len(points))
                diagram = delete_point(diagram, victim)
                del points[victim]
            else:
                p = (float(rng.randint(0, 9)), float(rng.randint(0, 9)))
                diagram = insert_point(diagram, p)
                points.append(p)
            # Self-audit: structural invariants + recurrence samples.
            fingerprint = diagram.audit()
            assert isinstance(fingerprint, str) and len(fingerprint) == 64
            # Differential: the maintained diagram equals a full rebuild.
            assert _same(diagram, quadrant_scanning(points))
            # Spot-check one query against direct evaluation.
            q = (rng.uniform(-1, 10), rng.uniform(-1, 10))
            assert diagram.query(q) == quadrant_skyline(points, q)

    def test_budgeted_insert_raises_and_preserves_original(self):
        from repro.errors import BudgetExceededError
        from repro.resilience import BuildBudget

        diagram = quadrant_scanning([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)])
        before = dict(diagram.cells())
        with pytest.raises(BudgetExceededError) as excinfo:
            insert_point(diagram, (2.0, 2.0), budget=BuildBudget(max_cells=2))
        assert excinfo.value.progress.cells_done > 2
        # Copy-on-write: the original diagram is untouched.
        assert dict(diagram.cells()) == before
        diagram.audit()

    def test_budgeted_delete_raises_and_preserves_original(self):
        from repro.errors import BudgetExceededError
        from repro.resilience import BuildBudget

        diagram = quadrant_scanning([(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)])
        before = dict(diagram.cells())
        with pytest.raises(BudgetExceededError):
            delete_point(diagram, 0, budget=BuildBudget(max_cells=1))
        assert dict(diagram.cells()) == before

    def test_unbudgeted_maintenance_unchanged(self, staircase):
        updated = insert_point(quadrant_scanning(staircase), (4.0, 4.0))
        assert _same(updated, quadrant_scanning(staircase + [(4.0, 4.0)]))


class TestDirtyRegionScan:
    """Regression: re-scan work is proportional to the dirty region.

    Maintenance promises to re-scan *only* the dirty lower-left block —
    for an insert, the rows strictly below the new point's y-rank; for a
    delete, the row prefix below the victim's y grid line.  The build
    report's ``rows_scanned`` is the witness.
    """

    # Anti-diagonal staircase: distinct coordinates, so ranks are easy
    # to reason about (y values 1..8 → y-rank == y).
    POINTS = [(float(i), float(9 - i)) for i in range(1, 9)]

    def test_insert_scans_exactly_the_rows_below_the_new_rank(self):
        diagram = quadrant_scanning(self.POINTS)
        for newp, expected in (((4.5, 0.5), 1), ((4.5, 4.5), 5),
                               ((4.5, 8.5), 9)):
            updated = insert_point(diagram, newp)
            _, ry = updated.grid.rank_of(len(self.POINTS))
            assert updated.build_report.rows_scanned == ry == expected
            assert updated.build_report.rows_scanned < updated.grid.shape[1]

    def test_delete_scans_exactly_the_prefix_below_the_victim(self):
        diagram = quadrant_scanning(self.POINTS)
        # victim id → y coordinate 8, 4, 1 → dirty prefix 8, 4, 1 rows.
        for victim, expected in ((0, 8), (4, 4), (7, 1)):
            updated = delete_point(diagram, victim)
            assert updated.build_report.rows_scanned == expected

    def test_low_insert_beats_full_rebuild_rows(self):
        # A fresh build scans every row; inserting a bottom point must
        # scan only the single dirty row however large the diagram is.
        diagram = quadrant_scanning(self.POINTS)
        fresh = quadrant_scanning(self.POINTS + [(4.5, 0.5)])
        updated = insert_point(diagram, (4.5, 0.5))
        assert updated.build_report.rows_scanned == 1
        assert fresh.build_report.rows_scanned == fresh.grid.shape[1]
        assert _same(updated, fresh)


class TestStreamingUpdates:
    """Engine-level update journal: coalescing, atomic swap, backoff."""

    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]

    def _db(self, **kwargs):
        from repro.index.engine import SkylineDatabase

        return SkylineDatabase(
            list(self.POINTS), precompute=["quadrant"], **kwargs
        )

    def test_insert_swaps_generation_and_matches_fresh_build(self):
        db = self._db()
        before = db.generation
        outcome = db.apply_update("insert", (3.0, 3.0))
        assert outcome["status"] == "journalled"
        assert outcome["applied"] == 1 and outcome["pending"] == 0
        after = db.generation
        assert after["seq"] == before["seq"] + 1
        assert after["sha"] != before["sha"]
        assert len(db.dataset) == 4
        maintained = db._gen.diagrams["quadrant:0"]
        fresh = quadrant_scanning(self.POINTS + [(3.0, 3.0)])
        assert maintained.store.fingerprint() == fresh.store.fingerprint()

    def test_delete_coalesces_with_its_pending_insert(self):
        db = self._db()
        db.apply_update("insert", (3.0, 3.0), flush=False)
        assert db.pending_updates == 1
        # Deleting the prospective id of the journalled insert cancels
        # both entries without ever touching the diagram.
        outcome = db.apply_update("delete", len(self.POINTS), flush=False)
        assert outcome["status"] == "coalesced"
        assert db.pending_updates == 0
        assert db.generation["seq"] == 0

    def test_malformed_updates_rejected_at_journal_time(self):
        db = self._db()
        with pytest.raises(QueryError):
            db.apply_update("upsert", (1.0, 1.0))
        with pytest.raises(QueryError):
            db.apply_update("insert", (1.0,))  # wrong dimensionality
        with pytest.raises(QueryError):
            db.apply_update("delete", 99)
        assert db.pending_updates == 0

    def test_failed_flush_serves_old_generation_stale_annotated(self):
        from repro.resilience import BuildBudget
        from repro.testing import faults

        clock = faults.SteppingClock()
        db = self._db(clock=clock)
        db.budget = BuildBudget(max_cells=1)  # updates now impossible
        outcome = db.apply_update("insert", (3.0, 3.0))
        assert outcome["applied"] == 0 and outcome["pending"] == 1
        assert "BudgetExceededError" in outcome["error"]
        assert db.generation["seq"] == 0
        assert len(db.dataset) == 3  # old dataset serves on
        # Queries stay exact against the OLD dataset, annotated stale.
        answer = db.query_annotated((10.0, 10.0), kind="quadrant")
        assert answer.result == db.query_from_scratch(
            (10.0, 10.0), kind="quadrant"
        )
        assert len(self.POINTS) not in answer.result  # no phantom new id
        assert answer.query_report.pending_updates == 1
        assert answer.served_from == "diagram"
        # A non-forced flush inside the backoff window is a no-op.
        retry = db.flush_updates()
        assert retry["applied"] == 0 and retry["backoff"] > 0
        # Lifting the budget and forcing heals byte-identically.
        db.budget = None
        healed = db.flush_updates(force=True)
        assert healed["applied"] == 1 and db.pending_updates == 0
        maintained = db._gen.diagrams["quadrant:0"]
        fresh = quadrant_scanning(self.POINTS + [(3.0, 3.0)])
        assert maintained.store.fingerprint() == fresh.store.fingerprint()

    def test_query_poke_applies_due_updates(self):
        from repro.resilience import BuildBudget
        from repro.testing import faults

        clock = faults.SteppingClock()
        db = self._db(clock=clock)
        db.budget = BuildBudget(max_cells=1)
        db.apply_update("insert", (3.0, 3.0))
        assert db.pending_updates == 1
        db.budget = None
        clock.advance(3600.0)  # well past the backoff deadline
        answer = db.query_annotated((10.0, 10.0), kind="quadrant")
        # The first query past the deadline applied the journal.
        assert answer.query_report.pending_updates == 0
        assert db.generation["seq"] == 1
        assert len(db.dataset) == 4

    def test_batched_updates_apply_as_one_generation(self):
        db = self._db()
        db.apply_update("insert", (3.0, 3.0), flush=False)
        db.apply_update("insert", (1.0, 1.0), flush=False)
        db.apply_update("delete", 0, flush=False)
        assert db.pending_updates == 3
        outcome = db.flush_updates()
        assert outcome["applied"] == 3
        assert db.generation["seq"] == 1  # one swap for the whole batch
        final = [p for i, p in enumerate(
            self.POINTS + [(3.0, 3.0), (1.0, 1.0)]
        ) if i != 0]
        maintained = db._gen.diagrams["quadrant:0"]
        fresh = quadrant_scanning(final)
        assert maintained.store.fingerprint() == fresh.store.fingerprint()

    def test_health_and_metrics_expose_update_state(self):
        db = self._db()
        db.apply_update("insert", (3.0, 3.0))
        health = db.health()
        assert health["generation"]["seq"] == 1
        assert health["updates"]["pending"] == 0
        assert health["updates"]["applied"] == 1
        assert health["updates"]["batches"] == 1
        snapshot = db.metrics.snapshot()
        assert snapshot["counters"]["updates_applied"] == 1
        assert snapshot["updates_by_generation"] == {
            db.generation["sha"]: 1
        }


class TestUpdateChaosScenarios:
    """The three PR 8 chaos drills, invoked directly (seeded)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_query_during_update(self, seed, tmp_path):
        import random

        from repro.testing.chaos import _scenario_query_during_update

        _scenario_query_during_update(
            random.Random(seed), 7, str(tmp_path)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_crash_mid_update(self, seed, tmp_path):
        import random

        from repro.testing.chaos import _scenario_crash_mid_update

        _scenario_crash_mid_update(random.Random(seed), 7, str(tmp_path))

    @pytest.mark.parametrize("seed", range(3))
    def test_update_budget_exhausted(self, seed, tmp_path):
        import random

        from repro.testing.chaos import _scenario_update_budget_exhausted

        _scenario_update_budget_exhausted(
            random.Random(seed), 7, str(tmp_path)
        )

    def test_campaign_includes_update_scenarios(self):
        from repro.testing.chaos import run_chaos

        report = run_chaos(cases=28, seed=5, max_points=6)
        assert report.ok, report.summary()
        for name in ("query-during-update", "crash-mid-update",
                     "update-budget-exhausted"):
            assert report.by_scenario.get(name, 0) >= 1


class TestMaintenanceDifferential:
    """The maintenance:* verify family stays green on a smoke budget."""

    def test_fuzzed_sequences_fingerprint_identical(self):
        from repro.diagram.verify import differential_verify

        report = differential_verify(seed=11, budget=60)
        assert report.ok, report.mismatch.reproducer()
        assert report.by_check.get("maintenance", 0) >= 3
