"""Tests for the order-k Voronoi diagram (the analogy's kNN side)."""

import math
import random

import pytest

from repro.errors import DimensionalityError, QueryError
from repro.voronoi.diagram import VoronoiDiagram
from repro.voronoi.knn import k_nearest
from repro.voronoi.order_k import OrderKVoronoi, order_k_cell

BBOX = (0.0, 0.0, 10.0, 10.0)


def _inside(polygon, q, tol=1e-7):
    m = len(polygon)
    for k in range(m):
        x0, y0 = polygon[k]
        x1, y1 = polygon[(k + 1) % m]
        if (x1 - x0) * (q[1] - y0) - (y1 - y0) * (q[0] - x0) < -tol:
            return False
    return True


@pytest.fixture
def sites():
    rng = random.Random(31)
    return [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(7)]


class TestOrderKCell:
    def test_triangle_pairs(self):
        pts = [(0, 0), (10, 0), (5, 9)]
        for pair in ([0, 1], [0, 2], [1, 2]):
            assert len(order_k_cell(pts, pair, (0, 0, 10, 9))) >= 3

    def test_far_pair_has_empty_cell(self):
        # The two extreme sites are never simultaneously the 2 nearest.
        pts = [(0, 5), (5, 5), (10, 5), (5.1, 5.1)]
        assert order_k_cell(pts, [0, 2], BBOX) == []

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionalityError):
            order_k_cell([(1, 2, 3)], [0], (0, 0, 1, 1))


class TestOrderKVoronoi:
    def test_k1_matches_ordinary_voronoi(self, sites):
        order1 = OrderKVoronoi(sites, 1, BBOX)
        ordinary = VoronoiDiagram(sites, bbox=BBOX)
        assert len(order1.cells) == len(
            [c for c in ordinary.cells if len(c) >= 3]
        )
        for (site,), polygon in order1.cells.items():
            assert math.isclose(
                ordinary.cell_area(site),
                abs(_area(polygon)),
                rel_tol=1e-6,
            )

    def test_cells_tile_the_box(self, sites):
        for k in (1, 2, 3):
            diagram = OrderKVoronoi(sites, k, BBOX)
            assert math.isclose(diagram.total_area(), 100.0, rel_tol=1e-6)

    def test_sampled_points_land_in_their_cell(self, sites):
        rng = random.Random(8)
        diagram = OrderKVoronoi(sites, 2, BBOX)
        for _ in range(200):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            label = diagram.locate(q)
            assert label in diagram.cells
            assert _inside(diagram.cells[label], q)

    def test_locate_is_knn(self, sites):
        diagram = OrderKVoronoi(sites, 3, BBOX)
        q = (4.0, 4.0)
        assert diagram.locate(q) == tuple(sorted(k_nearest(sites, q, 3)))

    def test_k_bounds(self, sites):
        with pytest.raises(QueryError):
            OrderKVoronoi(sites, 0, BBOX)
        with pytest.raises(QueryError):
            OrderKVoronoi(sites, len(sites) + 1, BBOX)

    def test_k_equal_n_is_one_cell(self, sites):
        diagram = OrderKVoronoi(sites, len(sites), BBOX)
        assert len(diagram.cells) == 1

    def test_repr(self, sites):
        assert "k=2" in repr(OrderKVoronoi(sites, 2, BBOX))


class TestAnalogy:
    """k-th order Voronoi : kNN  ::  k-skyband diagram : skybands."""

    def test_both_structures_answer_by_point_location(self, sites):
        from repro.diagram.skyband import skyband_sweep
        from repro.skyline.queries import quadrant_skyband

        order2 = OrderKVoronoi(sites, 2, BBOX)
        skyband2 = skyband_sweep(sites, 2)
        rng = random.Random(3)
        for _ in range(40):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            assert order2.locate(q) == tuple(
                sorted(k_nearest(sites, q, 2))
            )
            assert skyband2.query(q) == quadrant_skyband(sites, q, 2)


def _area(polygon):
    total = 0.0
    m = len(polygon)
    for k in range(m):
        x0, y0 = polygon[k]
        x1, y1 = polygon[(k + 1) % m]
        total += x0 * y1 - x1 * y0
    return total / 2.0
