"""Smoke tests: every example script runs to completion.

Examples are executable documentation; each one also carries internal
assertions (e.g. the PIR example checks private answers against public
lookups), so "runs without error" is a meaningful check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)  # examples may write output files
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_example_directory_has_quickstart():
    assert any(p.name == "quickstart.py" for p in EXAMPLES)
    assert len(EXAMPLES) >= 3
