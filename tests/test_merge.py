"""Tests for cell merging into polyominos."""

from hypothesis import given, settings

from repro.diagram.merge import cell_labels, merge_cells, partition_signature
from repro.diagram.quadrant_scanning import quadrant_scanning

from tests.conftest import points_2d


class TestMergeCells:
    def test_uniform_grid_is_one_polyomino(self):
        results = {(i, j): (0,) for i in range(3) for j in range(3)}
        polys = merge_cells((3, 3), results)
        assert len(polys) == 1
        assert polys[0].size == 9

    def test_checkerboard_never_merges(self):
        results = {
            (i, j): ((i + j) % 2,) for i in range(3) for j in range(3)
        }
        polys = merge_cells((3, 3), results)
        assert len(polys) == 9

    def test_diagonal_adjacency_does_not_merge(self):
        results = {
            (0, 0): (1,),
            (1, 1): (1,),
            (0, 1): (2,),
            (1, 0): (3,),
        }
        polys = merge_cells((2, 2), results)
        assert len(polys) == 4

    def test_idents_are_positions(self):
        results = {(i, 0): (i,) for i in range(4)}
        polys = merge_cells((4, 1), results)
        assert [p.ident for p in polys] == [0, 1, 2, 3]


class TestInvariants:
    @given(points_2d(max_size=10))
    @settings(max_examples=40)
    def test_polyominos_partition_the_grid(self, pts):
        diagram = quadrant_scanning(pts)
        polys = diagram.polyominos()
        seen: set = set()
        for poly in polys:
            assert not (poly.cells & seen)
            seen |= poly.cells
        assert seen == set(diagram.grid.cells())

    @given(points_2d(max_size=10))
    @settings(max_examples=40)
    def test_cells_of_a_polyomino_share_its_result(self, pts):
        diagram = quadrant_scanning(pts)
        for poly in diagram.polyominos():
            for cell in poly.cells:
                assert diagram.result_at(cell) == poly.result

    @given(points_2d(max_size=10))
    @settings(max_examples=40)
    def test_adjacent_polyominos_have_different_results(self, pts):
        diagram = quadrant_scanning(pts)
        labels = cell_labels(diagram.polyominos())
        polys = diagram.polyominos()
        for (i, j), ident in labels.items():
            for neighbour in ((i + 1, j), (i, j + 1)):
                other = labels.get(neighbour)
                if other is not None and other != ident:
                    assert polys[other].result != polys[ident].result

    @given(points_2d(max_size=10))
    @settings(max_examples=40)
    def test_maximality_same_result_same_region_when_connected(self, pts):
        """Definition 4: polyominos are maximal — a neighbouring cell with
        the same result is always in the same polyomino."""
        diagram = quadrant_scanning(pts)
        labels = cell_labels(diagram.polyominos())
        sx, sy = diagram.grid.shape
        for i in range(sx):
            for j in range(sy):
                if i + 1 < sx and diagram.result_at((i, j)) == diagram.result_at(
                    (i + 1, j)
                ):
                    assert labels[(i, j)] == labels[(i + 1, j)]
                if j + 1 < sy and diagram.result_at((i, j)) == diagram.result_at(
                    (i, j + 1)
                ):
                    assert labels[(i, j)] == labels[(i, j + 1)]

    def test_partition_signature_ignores_order(self):
        results = {(0, 0): (1,), (1, 0): (2,)}
        a = merge_cells((2, 1), results)
        b = list(reversed(merge_cells((2, 1), results)))
        assert partition_signature(a) == partition_signature(b)
