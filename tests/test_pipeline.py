"""Tests for the unified build pipeline: BuildContext, executors, reports.

The load-bearing property is *byte-identity*: a sharded build (chunked
serial or process pool) must produce exactly the serial ResultStore —
same id grid, same table order, same fingerprint — and equal budget
accounting.  The serial scan's intern table is ordered by first
occurrence in scan order, chunk workers relabel their local tables to
that order, and the parent merges chunk tables through one shared
interner in global scan order, which reproduces the serial numbering.
"""

import json
import warnings

import numpy as np
import pytest

from repro.datasets import generate
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.global_diagram import global_diagram, quadrant_diagram_for_mask
from repro.diagram.highdim import quadrant_scanning_nd
from repro.diagram.maintenance import delete_point, insert_point
from repro.diagram.pipeline import (
    EXECUTORS,
    BuildContext,
    BuildOptions,
    BuildReport,
    Interner,
    ProcessRowExecutor,
    SerialRowExecutor,
    relabel_scan_order,
)
from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.diagram.quadrant_scanning import (
    quadrant_scanning,
    quadrant_scanning_reference,
)
from repro.diagram.skyband import skyband_baseline, skyband_sweep
from repro.errors import BudgetExceededError
from repro.index.engine import SkylineDatabase
from repro.resilience import BuildBudget

DATASETS = [
    generate("independent", n=12, dim=2, seed=7, domain=40),
    generate("anticorrelated", n=20, dim=2, seed=3, domain=60),
    generate("clustered", n=9, dim=2, seed=11, domain=25),
    [(2, 8), (5, 4), (9, 1)],
    [(0, 0), (10, 10), (5, 5)],
]


def _assert_same_store(a, b):
    assert a.store.table == b.store.table
    assert np.array_equal(a.store.ids, b.store.ids)
    assert a.store.fingerprint() == b.store.fingerprint()
    assert a.store == b.store


class TestBuildOptions:
    def test_defaults(self):
        options = BuildOptions()
        assert options.executor == "serial"
        assert options.workers is None
        assert options.chunk_rows is None

    def test_validation(self):
        with pytest.raises(ValueError, match="executor"):
            BuildOptions(executor="threads")
        with pytest.raises(ValueError, match="workers"):
            BuildOptions(workers=0)
        with pytest.raises(ValueError, match="chunk_rows"):
            BuildOptions(chunk_rows=0)


class TestRelabelScanOrder:
    def test_orders_table_by_first_occurrence(self):
        rows = np.array([[2, 0], [1, 2]], dtype=np.int32)
        table = [(9,), (8,), (7,)]
        relabeled, ordered = relabel_scan_order(rows, table)
        # Scan order (flip=False) reads row 0 left-to-right first.
        assert ordered == [(7,), (9,), (8,)]
        assert relabeled.tolist() == [[0, 1], [2, 0]]

    def test_flip_reads_reverse_scan_order(self):
        rows = np.array([[2, 0], [1, 2]], dtype=np.int32)
        table = [(9,), (8,), (7,)]
        relabeled, ordered = relabel_scan_order(rows, table, flip=True)
        # flip=True reads the grid bottom-right to top-left.
        assert ordered == [(7,), (8,), (9,)]
        assert relabeled.tolist() == [[0, 2], [1, 0]]

    def test_drops_unused_entries(self):
        rows = np.array([[1, 1]], dtype=np.int32)
        _, ordered = relabel_scan_order(rows, [(5,), (6,), (7,)])
        assert ordered == [(6,)]


class TestExecutorIdentity:
    """Serial vs sharded builds must be byte-identical."""

    @pytest.mark.parametrize("points", DATASETS)
    @pytest.mark.parametrize("chunk_rows", [1, 2, 3])
    def test_quadrant_chunked_serial(self, points, chunk_rows):
        serial = quadrant_scanning(points)
        sharded = quadrant_scanning(
            points, build_options=BuildOptions(chunk_rows=chunk_rows)
        )
        _assert_same_store(serial, sharded)

    @pytest.mark.parametrize("points", DATASETS)
    @pytest.mark.parametrize("chunk_rows", [1, 2, 3])
    def test_dynamic_chunked_serial(self, points, chunk_rows):
        serial = dynamic_scanning(points)
        sharded = dynamic_scanning(
            points, build_options=BuildOptions(chunk_rows=chunk_rows)
        )
        _assert_same_store(serial, sharded)

    @pytest.mark.parametrize("points", DATASETS[:2])
    def test_quadrant_process_pool(self, points):
        serial = quadrant_scanning(points)
        pooled = quadrant_scanning(
            points,
            build_options=BuildOptions(executor="process", workers=2),
        )
        _assert_same_store(serial, pooled)
        assert pooled.build_report.executor == "process"
        assert pooled.build_report.workers == 2

    @pytest.mark.parametrize("points", DATASETS[:1])
    def test_dynamic_process_pool(self, points):
        serial = dynamic_scanning(points)
        pooled = dynamic_scanning(
            points,
            build_options=BuildOptions(executor="process", workers=2),
        )
        _assert_same_store(serial, pooled)

    @pytest.mark.parametrize("points", DATASETS[:3])
    def test_global_chunked_matches_serial(self, points):
        serial = global_diagram(points)
        sharded = global_diagram(
            points, build_options=BuildOptions(chunk_rows=2)
        )
        _assert_same_store(serial, sharded)

    @pytest.mark.parametrize("points", DATASETS[:2])
    def test_chunked_matches_reference_oracle(self, points):
        sharded = quadrant_scanning(
            points, build_options=BuildOptions(chunk_rows=2)
        )
        assert sharded == quadrant_scanning_reference(points)

    def test_checkpoint_accounting_parity(self):
        points = DATASETS[0]
        serial_meter = BuildBudget().start()
        quadrant_scanning(points, budget=serial_meter)
        sharded_meter = BuildBudget().start()
        quadrant_scanning(
            points,
            budget=sharded_meter,
            build_options=BuildOptions(chunk_rows=2),
        )
        assert sharded_meter.checkpoints == serial_meter.checkpoints
        assert sharded_meter.cells_done == serial_meter.cells_done
        assert sharded_meter.distinct == serial_meter.distinct

    def test_dynamic_checkpoint_accounting_parity(self):
        points = DATASETS[1]
        serial_meter = BuildBudget().start()
        dynamic_scanning(points, budget=serial_meter)
        sharded_meter = BuildBudget().start()
        dynamic_scanning(
            points,
            budget=sharded_meter,
            build_options=BuildOptions(chunk_rows=3),
        )
        assert sharded_meter.checkpoints == serial_meter.checkpoints
        assert sharded_meter.cells_done == serial_meter.cells_done
        assert sharded_meter.distinct == serial_meter.distinct

    def test_sharded_budget_exhaustion_carries_no_partial(self):
        points = DATASETS[1]
        with pytest.raises(BudgetExceededError) as info:
            quadrant_scanning(
                points,
                budget=BuildBudget(max_cells=5),
                build_options=BuildOptions(chunk_rows=1),
            )
        assert info.value.partial is None

    def test_serial_budget_exhaustion_keeps_partial(self):
        points = DATASETS[1]
        with pytest.raises(BudgetExceededError) as info:
            quadrant_scanning(points, budget=BuildBudget(max_cells=5))
        assert info.value.partial is not None


DEGENERATE_DATASETS = {
    "duplicates": [(3.0, 4.0)] * 5 + [(1.0, 6.0), (6.0, 1.0), (3.0, 4.0)],
    "collinear": [(float(i), float(i)) for i in range(9)],
    "single": [(2.0, 3.0)],
    "boundary-heavy": [
        (float(x), float(y)) for x in range(4) for y in range(4)
    ],
    "vertical-stack": [(2.0, float(y)) for y in range(7)],
}


class TestVectorizedExecutor:
    """The whole-row numpy engine must be byte-identical to serial."""

    def test_registry_lists_all_three(self):
        assert EXECUTORS == ("serial", "process", "vectorized")
        BuildOptions(executor="vectorized")  # accepted by validation

    @pytest.mark.parametrize(
        "points",
        list(DEGENERATE_DATASETS.values()),
        ids=list(DEGENERATE_DATASETS),
    )
    @pytest.mark.parametrize("chunk_rows", [None, 1, 2, 3])
    def test_degenerate_byte_identity(self, points, chunk_rows):
        serial = quadrant_scanning(points)
        chunked = quadrant_scanning(
            points, build_options=BuildOptions(chunk_rows=chunk_rows)
        )
        vectorized = quadrant_scanning(
            points,
            build_options=BuildOptions(
                executor="vectorized", chunk_rows=chunk_rows
            ),
        )
        _assert_same_store(serial, chunked)
        _assert_same_store(serial, vectorized)
        assert vectorized.build_report.executor == "vectorized"

    @pytest.mark.parametrize("points", DATASETS)
    def test_random_byte_identity(self, points):
        serial = quadrant_scanning(points)
        vectorized = quadrant_scanning(
            points, build_options=BuildOptions(executor="vectorized")
        )
        _assert_same_store(serial, vectorized)

    def test_checkpoint_accounting_parity(self):
        points = DATASETS[0]
        serial = quadrant_scanning(points)
        vectorized = quadrant_scanning(
            points,
            build_options=BuildOptions(executor="vectorized", chunk_rows=3),
        )
        # Per-block checkpoints differ in granularity but the final
        # accounting (cells advanced, rows scanned, distinct results)
        # must agree with the serial build's.
        assert (
            serial.build_report.cells == vectorized.build_report.cells
        )
        assert (
            serial.build_report.rows_scanned
            == vectorized.build_report.rows_scanned
        )
        assert (
            serial.build_report.distinct_results
            == vectorized.build_report.distinct_results
        )

    def test_fallback_is_honest(self):
        points = DATASETS[0]
        serial = dynamic_scanning(points)
        fallback = dynamic_scanning(
            points, build_options=BuildOptions(executor="vectorized")
        )
        _assert_same_store(serial, fallback)
        assert fallback.build_report.executor == "serial"

    def test_budget_trips_at_row_block_boundary(self):
        from repro.resilience import CoverageMiss

        points = DEGENERATE_DATASETS["boundary-heavy"]
        serial = quadrant_scanning(points)
        sx, sy = serial.store.shape
        # Allow exactly one 2-row block of cells: the second block's
        # checkpoint must trip, and the partial must cover a whole
        # number of blocks (budget enforcement is per row block).
        chunk_rows = 2
        budget = BuildBudget(max_cells=chunk_rows * sx)
        with pytest.raises(BudgetExceededError) as excinfo:
            quadrant_scanning(
                points,
                budget=budget,
                build_options=BuildOptions(
                    executor="vectorized", chunk_rows=chunk_rows
                ),
            )
        partial = excinfo.value.partial
        assert partial is not None
        # The scan consumes blocks topmost-first, so the covered prefix
        # must end exactly on a block boundary: sy - lo for some block
        # start lo (never a torn block).
        block_aligned = {sy - lo for lo in range(0, sy, chunk_rows)}
        assert partial.rows_built in block_aligned
        assert 0 < partial.rows_built < sy
        hits = 0
        for x in range(8):
            for y in range(8):
                query = (x + 0.5, y + 0.5)
                try:
                    answer = partial.query(query)
                except CoverageMiss:
                    continue
                hits += 1
                assert answer == serial.query(query)
        assert hits > 0, "partial diagram answered nothing in its region"

    def test_lazy_table_matches_materialized(self):
        from repro.diagram.store import ConsForestTable

        points = DATASETS[1]
        vectorized = quadrant_scanning(
            points, build_options=BuildOptions(executor="vectorized")
        )
        store = vectorized.store
        lazy = store._table
        assert isinstance(lazy, ConsForestTable)
        distinct = store.distinct_count  # O(1); must not materialize
        assert isinstance(store._table, ConsForestTable)
        per_id = [store.result_tuple(rid) for rid in range(distinct)]
        # Accessing .table upgrades the forest to a plain list in place.
        table = store.table
        assert isinstance(store._table, list)
        assert table == per_id
        assert len(table) == distinct
        serial = quadrant_scanning(points)
        assert table == serial.store.table


class TestBudgetKwargCompat:
    """Every constructor still accepts the old ``budget=`` kwarg."""

    POINTS = [(2, 8), (5, 4), (9, 1), (7, 6)]

    def test_quadrant(self):
        assert quadrant_scanning(self.POINTS, budget=BuildBudget()).store

    def test_dynamic(self):
        assert dynamic_scanning(self.POINTS, budget=BuildBudget()).store

    def test_global(self):
        assert global_diagram(self.POINTS, budget=BuildBudget()).store

    def test_skyband(self):
        assert skyband_baseline(self.POINTS, k=2, budget=BuildBudget()).store
        assert skyband_sweep(self.POINTS, k=2, budget=BuildBudget()).store

    def test_highdim(self):
        points = [(2, 8, 1), (5, 4, 7), (9, 1, 3)]
        assert quadrant_scanning_nd(points, budget=BuildBudget()).store

    def test_maintenance(self):
        diagram = quadrant_scanning(self.POINTS)
        updated = insert_point(diagram, (3.0, 3.0), budget=BuildBudget())
        assert updated.store
        assert delete_point(updated, 0, budget=BuildBudget()).store


class TestGlobalPerRowCharge:
    def test_budget_unaware_subbuild_charges_per_row(self):
        # A budget-unaware algorithm is charged one scan row at a time, so
        # a shared budget trips within one row of its limit instead of
        # absorbing the whole sub-build in a lump.
        points = [(2, 8), (5, 4), (9, 1), (7, 6)]
        with pytest.raises(BudgetExceededError) as info:
            quadrant_diagram_for_mask(
                points, 0, quadrant_baseline, budget=BuildBudget(max_cells=6)
            )
        rows = len(points) + 1  # grid has n+1 cells per axis at most
        assert info.value.progress.cells_done <= 6 + rows


class TestBuildReport:
    def test_report_contents(self):
        diagram = quadrant_scanning(DATASETS[0])
        report = diagram.build_report
        assert isinstance(report, BuildReport)
        assert report.algorithm == "scanning"
        assert report.kind == "quadrant"
        assert report.executor == "serial"
        assert report.workers == 1
        assert set(report.phases) == {
            "rank_space", "row_scan", "intern", "assemble"
        }
        assert all(t >= 0.0 for t in report.phases.values())
        assert report.rows_scanned == diagram.store.shape[1]
        assert report.cells == diagram.store.num_cells
        assert report.distinct_results == diagram.store.distinct_count
        assert report.checkpoints == 0  # no budget, no meter
        assert report.elapsed >= 0.0

    def test_report_counts_checkpoints(self):
        meter = BuildBudget().start()
        diagram = quadrant_scanning(DATASETS[0], budget=meter)
        assert diagram.build_report.checkpoints == meter.checkpoints > 0

    def test_as_dict_is_json_serializable(self):
        report = dynamic_scanning(DATASETS[3]).build_report
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["kind"] == "dynamic"
        assert payload["executor"] == "serial"
        assert set(payload["phases"]) >= {"row_scan", "intern"}

    def test_every_constructor_attaches_a_report(self):
        points = [(2, 8), (5, 4), (9, 1)]
        builds = [
            quadrant_scanning(points),
            dynamic_scanning(points),
            global_diagram(points),
            skyband_baseline(points, k=2),
            skyband_sweep(points, k=2),
            quadrant_scanning_nd([(2, 8, 1), (5, 4, 7), (9, 1, 3)]),
            insert_point(quadrant_scanning(points), (3.0, 3.0)),
        ]
        for diagram in builds:
            assert isinstance(diagram.build_report, BuildReport), diagram

    def test_reference_oracle_has_no_report(self):
        diagram = quadrant_scanning_reference([(2, 8), (5, 4)])
        assert diagram.build_report is None

    def test_telemetry_sink_sees_every_phase(self):
        events = []
        options = BuildOptions(
            telemetry=lambda phase, seconds: events.append(phase)
        )
        quadrant_scanning(DATASETS[3], build_options=options)
        assert events == ["rank_space", "row_scan", "intern", "assemble"]


class TestBuildContext:
    def test_serial_only_pins_executor(self):
        ctx = BuildContext(
            None,
            BuildOptions(executor="process", workers=4),
            algorithm="x",
            kind="skyband",
            serial_only=True,
        )
        assert isinstance(ctx.executor, SerialRowExecutor)

    def test_row_chunks_cover_rows_exactly(self):
        ctx = BuildContext(
            None, BuildOptions(chunk_rows=3), algorithm="x", kind="quadrant"
        )
        chunks = ctx.row_chunks(10)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        top_first = ctx.row_chunks(10, topmost_first=True)
        assert top_first == list(reversed(chunks))

    def test_cancel_trips_next_checkpoint(self):
        ctx = BuildContext(None, None, algorithm="x", kind="quadrant")
        ctx.cancel("test abort")
        with pytest.raises(BudgetExceededError, match="test abort"):
            ctx.checkpoint(advance=1)

    def test_executors_run_jobs_in_order(self):
        executor = SerialRowExecutor()
        seen = []
        results = executor.run(
            _square, [1, 2, 3], lambda job, result: seen.append(job)
        )
        assert results == [1, 4, 9]
        assert seen == [1, 2, 3]

    def test_process_executor_preserves_job_order(self):
        executor = ProcessRowExecutor(workers=2)
        assert executor.run(_square, [3, 1, 2], None) == [9, 1, 4]


def _square(job):
    return job * job


class TestInterner:
    def test_first_intern_wins(self):
        interner = Interner()
        assert interner.intern((1, 2)) == 0
        assert interner.intern((3,)) == 1
        assert interner.intern((1, 2)) == 0
        assert len(interner) == 2
        assert interner.table == [(1, 2), (3,)]

    def test_seed_empty(self):
        interner = Interner(seed_empty=True)
        assert interner.intern(()) == 0
        assert interner.table == [()]


class TestEngineIntegration:
    def test_database_threads_build_options(self):
        db = SkylineDatabase(
            DATASETS[3], build_options=BuildOptions(chunk_rows=2)
        )
        answer = db.query_annotated((1.0, 2.0), kind="quadrant")
        assert answer.served_from == "diagram"
        assert answer.report is not None
        assert answer.report.executor == "serial"
        plain = SkylineDatabase(DATASETS[3])
        assert (
            db.quadrant_diagram().store == plain.quadrant_diagram().store
        )

    def test_health_surfaces_reports(self):
        db = SkylineDatabase(DATASETS[3])
        db.query((1.0, 2.0), kind="quadrant")
        health = db.health()
        entry = health["builds"]["quadrant:0"]
        assert entry["report"]["executor"] == "serial"
        assert "row_scan" in entry["report"]["phases"]
        json.dumps(health["builds"]["quadrant:0"]["report"])

    def test_query_exact_alias_removed(self):
        # Deprecated (warning-only) for two releases; now gone for good.
        db = SkylineDatabase(DATASETS[3])
        assert not hasattr(db, "query_exact")


class TestCli:
    def test_build_parallel_flags(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "points.csv"
        csv.write_text("2,8\n5,4\n9,1\n")
        out = tmp_path / "chunked.json"
        assert main(
            [
                "build", str(csv), str(out),
                "--kind", "quadrant", "--chunk-rows", "2",
            ]
        ) == 0
        stdout = capsys.readouterr().out
        assert "executor: serial" in stdout
        assert "row_scan" in stdout
        plain = tmp_path / "serial.json"
        assert main(["build", str(csv), str(plain)]) == 0
        assert out.read_bytes() == plain.read_bytes()

    def test_build_executor_flag(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "points.csv"
        csv.write_text("2,8\n5,4\n9,1\n")
        out = tmp_path / "vectorized.json"
        assert main(
            ["build", str(csv), str(out), "--executor", "vectorized"]
        ) == 0
        stdout = capsys.readouterr().out
        assert "executor: vectorized" in stdout
        plain = tmp_path / "serial.json"
        assert main(["build", str(csv), str(plain)]) == 0
        # The binary payload keeps each build's native table encoding
        # (cons forest vs CSR), so byte identity is asserted on the
        # diagrams, not the files.
        from repro.index.serialize import load_diagram

        vector_d = load_diagram(str(out))
        serial_d = load_diagram(str(plain))
        assert vector_d == serial_d
        assert vector_d.store.fingerprint() == serial_d.store.fingerprint()

    def test_executor_flag_rejects_unknown(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["build", "x.csv", "y.json", "--executor", "threads"])
