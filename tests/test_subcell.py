"""Unit and property tests for the bisector-augmented subcell grid."""

import pytest
from hypothesis import given

from repro.errors import DimensionalityError, QueryError
from repro.geometry.subcell import SubcellGrid

from tests.conftest import points_2d


class TestAxes:
    def test_axes_contain_points_and_midpoints(self):
        sg = SubcellGrid([(0, 0), (4, 8)])
        assert sg.axes[0] == (0.0, 2.0, 4.0)
        assert sg.axes[1] == (0.0, 4.0, 8.0)

    def test_coincident_bisectors_collapse(self):
        # Pairs (0,4) and (1,3) share the x bisector 2.
        sg = SubcellGrid([(0, 0), (4, 0), (1, 1), (3, 1)])
        assert sg.axes[0].count(2.0) == 1

    def test_shape_counts_subcells(self):
        sg = SubcellGrid([(0, 0), (4, 8)])
        assert sg.shape == (4, 4)
        assert sg.num_subcells == 16
        assert len(list(sg.subcells())) == 16

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionalityError):
            SubcellGrid([(1, 2, 3)])

    @given(points_2d(max_size=8))
    def test_point_axes_subset_of_subcell_axes(self, pts):
        sg = SubcellGrid(pts)
        for d in range(2):
            assert set(sg.grid.axes[d]) <= set(sg.axes[d])


class TestContributors:
    def test_point_line_contributors(self):
        sg = SubcellGrid([(0, 0), (4, 8)])
        assert sg.contributors(0, 0.0) == (0,)
        assert sg.contributors(0, 4.0) == (1,)

    def test_bisector_contributors(self):
        sg = SubcellGrid([(0, 0), (4, 8)])
        assert sg.contributors(0, 2.0) == (0, 1)
        assert sg.contributors(1, 4.0) == (0, 1)

    def test_merged_contributors_on_coincident_lines(self):
        # x=2 is the bisector of (0,4) and of (1,3), and nobody's own line.
        sg = SubcellGrid([(0, 0), (4, 0), (1, 1), (3, 1)])
        assert sg.contributors(0, 2.0) == (0, 1, 2, 3)

    def test_unknown_value_is_empty(self):
        sg = SubcellGrid([(0, 0), (4, 8)])
        assert sg.contributors(0, 3.3) == ()

    def test_boundary_contributors_by_index(self):
        sg = SubcellGrid([(0, 0), (4, 8)])
        assert sg.boundary_contributors(0, 2) == (0, 1)  # value 2.0

    @given(points_2d(max_size=7))
    def test_every_axis_value_has_contributors(self, pts):
        sg = SubcellGrid(pts)
        for d in range(2):
            for index in range(1, len(sg.axes[d]) + 1):
                assert sg.boundary_contributors(d, index)


class TestLocationAndMapping:
    def test_locate_interior(self):
        sg = SubcellGrid([(0, 0), (4, 8)])
        assert sg.locate((1, 1)) == (1, 1)

    def test_locate_rejects_non_2d(self):
        sg = SubcellGrid([(0, 0)])
        with pytest.raises(QueryError):
            sg.locate((1, 2, 3))

    def test_representative_out_of_range(self):
        sg = SubcellGrid([(0, 0)])
        with pytest.raises(QueryError):
            sg.representative((9, 0))

    @given(points_2d(max_size=7))
    def test_representatives_locate_home(self, pts):
        sg = SubcellGrid(pts)
        for subcell in sg.subcells():
            assert sg.locate(sg.representative(subcell)) == subcell

    @given(points_2d(max_size=7))
    def test_containing_cell_is_consistent(self, pts):
        sg = SubcellGrid(pts)
        for subcell in sg.subcells():
            rep = sg.representative(subcell)
            assert sg.containing_cell(subcell) == sg.grid.locate(rep)

    def test_repr_mentions_subcells(self):
        assert "subcells=" in repr(SubcellGrid([(0, 0), (4, 8)]))
