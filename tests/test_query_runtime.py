"""Tests for the unified query runtime (`repro.query`).

The kernel, the planner, and the metrics registry — parity against
from-scratch evaluation on boundary-heavy workloads for every kind,
mask, and k (including the degraded tier), the plan-once contract for
batch ladder fallback, and the observability surfaces (`QueryReport`,
`MetricsRegistry`, `health()["queries"]`, `repro stats`).
"""

import pytest

from repro.diagram import dynamic_scanning, global_diagram, quadrant_scanning
from repro.diagram.pipeline import BuildOptions
from repro.index.engine import SkylineDatabase
from repro.query import (
    KINDS,
    MODES,
    LatencyHistogram,
    MetricsRegistry,
    QueryKernel,
    QueryReport,
    format_snapshot,
)
from repro.resilience import BuildBudget

POINTS = [(2, 9), (4, 7), (6, 6), (9, 3), (12, 2), (4, 9), (9, 6), (6, 3)]


def boundary_heavy_queries(points):
    """Queries saturating every boundary case the kernel must resolve.

    Grid values (on grid lines), their pairwise midpoints (dynamic
    bisectors), grid vertices, off-grid interior points, and the far
    outside corners.
    """
    xs = sorted({float(p[0]) for p in points})
    ys = sorted({float(p[1]) for p in points})
    queries = []
    queries += [(x, 5.5) for x in xs]  # vertical grid lines
    queries += [(5.5, y) for y in ys]  # horizontal grid lines
    queries += [(x, y) for x, y in zip(xs, ys)]  # grid vertices
    mid_x = [(a + b) / 2 for a, b in zip(xs, xs[1:])]
    mid_y = [(a + b) / 2 for a, b in zip(ys, ys[1:])]
    queries += [(x, y) for x, y in zip(mid_x, mid_y)]  # bisector-ish
    queries += [(0.0, 0.0), (100.0, 100.0), (0.0, 100.0), (100.0, 0.0)]
    queries += [(3.3, 6.7), (7.1, 4.2)]  # generic interior
    return queries


class TestQueryKernel:
    def test_modes_are_the_documented_three(self):
        assert MODES == ("closed_edge", "global_union", "dynamic_union")

    def test_rejects_unknown_mode(self):
        diagram = quadrant_scanning(POINTS)
        with pytest.raises(ValueError):
            QueryKernel(diagram.grid, diagram.store, "telepathy")

    def test_single_definition_of_boundary_result(self):
        # The acceptance criterion: _boundary_result lives in the kernel
        # and nowhere else.
        from repro.diagram import base

        assert not hasattr(base.SkylineDiagram, "_boundary_result")
        assert not hasattr(base.DynamicDiagram, "_boundary_result")
        assert hasattr(QueryKernel, "_boundary_result")

    def test_diagrams_share_the_kernel_implementation(self):
        quadrant = quadrant_scanning(POINTS)
        dynamic = dynamic_scanning(POINTS[:5])
        assert type(quadrant.kernel) is QueryKernel
        assert type(dynamic.kernel) is QueryKernel
        assert quadrant.kernel.mode == "closed_edge"
        assert global_diagram(POINTS).kernel.mode == "global_union"
        assert dynamic.kernel.mode == "dynamic_union"

    def test_kernel_counters_advance(self):
        diagram = global_diagram(POINTS)
        kernel = diagram.kernel
        served, batches = kernel.served, kernel.batches
        diagram.query((2.0, 5.5))  # on a grid line: boundary resolution
        diagram.query_batch([(1.0, 1.0), (3.0, 3.0)])
        assert kernel.served == served + 3
        assert kernel.batches == batches + 1
        assert kernel.boundary_hits >= 1


class TestFusedScalarLookup:
    """The fused closed_edge scalar path: same answers, same errors."""

    def test_fused_active_only_for_closed_edge(self):
        quadrant = quadrant_scanning(POINTS)
        dynamic = dynamic_scanning(POINTS[:5])
        assert quadrant.kernel._fused is not None
        assert global_diagram(POINTS).kernel._fused is None
        assert dynamic.kernel._fused is None

    @pytest.mark.parametrize("mask", range(4))
    def test_fused_equals_batch_on_boundary_heavy_queries(self, mask):
        from repro.diagram.global_diagram import quadrant_diagram_for_mask

        diagram = quadrant_diagram_for_mask(POINTS, mask, quadrant_scanning)
        assert diagram.kernel._fused is not None
        queries = boundary_heavy_queries(POINTS)
        singles = [diagram.query(q) for q in queries]
        assert singles == diagram.query_batch(queries)

    def test_fused_on_vectorized_built_diagram(self):
        serial = quadrant_scanning(POINTS)
        vectorized = quadrant_scanning(
            POINTS, build_options=BuildOptions(executor="vectorized")
        )
        assert vectorized.kernel._fused is not None
        for q in boundary_heavy_queries(POINTS):
            assert vectorized.query(q) == serial.query(q)

    @pytest.mark.parametrize("executor", ["serial", "vectorized"])
    def test_error_parity(self, executor):
        from repro.errors import QueryError

        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(executor=executor)
        )
        with pytest.raises(
            QueryError, match="query has 3 dimensions, grid has 2"
        ):
            diagram.query((1.0, 2.0, 3.0))
        with pytest.raises(QueryError, match="must not be NaN"):
            diagram.query((float("nan"), 2.0))


class TestPlannerParity:
    """Planner answers == from-scratch, boundary-heavy, every tier."""

    @pytest.mark.parametrize("mask", [0, 1, 2, 3])
    def test_quadrant_masks(self, mask):
        db = SkylineDatabase(POINTS)
        for q in boundary_heavy_queries(POINTS):
            expected = db.query_from_scratch(q, kind="quadrant", mask=mask)
            assert db.query(q, kind="quadrant", mask=mask) == expected

    @pytest.mark.parametrize("kind", ["global", "dynamic"])
    def test_global_and_dynamic(self, kind):
        db = SkylineDatabase(POINTS)
        for q in boundary_heavy_queries(POINTS):
            assert db.query(q, kind=kind) == db.query_from_scratch(
                q, kind=kind
            )

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_skyband_k(self, k):
        db = SkylineDatabase(POINTS)
        for q in boundary_heavy_queries(POINTS):
            expected = db.query_from_scratch(q, kind="skyband", k=k)
            assert db.query(q, kind="skyband", k=k) == expected

    def test_batch_equals_singles_everywhere(self):
        db = SkylineDatabase(POINTS)
        queries = boundary_heavy_queries(POINTS)
        # The registry's new kinds require their spec parameters.
        params = {
            "constrained": {"box": ((3.0, 2.0), (9.0, 7.0))},
            "diversified": {"k": 2, "diversify": 2},
        }
        for kind in KINDS:
            kwargs = params.get(kind, {})
            assert db.query_batch(queries, kind=kind, **kwargs) == [
                db.query(q, kind=kind, **kwargs) for q in queries
            ]

    @pytest.mark.parametrize("kind", ["quadrant", "dynamic", "skyband"])
    def test_degraded_tier_parity(self, kind):
        # An impossible budget keeps every build failing; answers must
        # come from the ladder's lower tiers and still match scratch.
        db = SkylineDatabase(POINTS, budget=BuildBudget(max_cells=1))
        for q in boundary_heavy_queries(POINTS)[:8]:
            answer = db.query_annotated(q, kind=kind, k=2)
            assert answer.served_from in ("partial", "scratch")
            assert answer.result == db.query_from_scratch(q, kind=kind, k=2)


class TestPlanOnce:
    def test_degraded_batch_resolves_the_plan_once(self, monkeypatch):
        # Regression: the ladder used to re-plan (and re-check the
        # diagram cache) for every query of a degraded batch.
        db = SkylineDatabase(POINTS, budget=BuildBudget(max_cells=1))
        calls = []
        original = SkylineDatabase._obtain

        def counting_obtain(self, key, builder, **kwargs):
            calls.append(key)
            return original(self, key, builder, **kwargs)

        monkeypatch.setattr(SkylineDatabase, "_obtain", counting_obtain)
        queries = boundary_heavy_queries(POINTS)[:6]
        answers = db.query_batch_annotated(queries, kind="quadrant")
        assert len(calls) == 1
        assert all(a.served_from in ("partial", "scratch") for a in answers)

    def test_diagram_batch_resolves_the_plan_once(self, monkeypatch):
        db = SkylineDatabase(POINTS)
        calls = []
        original = SkylineDatabase._obtain

        def counting_obtain(self, key, builder, **kwargs):
            calls.append(key)
            return original(self, key, builder, **kwargs)

        monkeypatch.setattr(SkylineDatabase, "_obtain", counting_obtain)
        db.query_batch(boundary_heavy_queries(POINTS), kind="global")
        assert calls == ["global"]


class TestQueryManyForwardsK:
    def test_query_many_forwards_k(self):
        # Regression: k used to be silently dropped, answering skyband
        # batches with the k=1 diagram.
        db = SkylineDatabase(POINTS)
        queries = [(3.0, 6.5), (7.0, 7.0), (100.0, 100.0)]
        for k in (1, 2, 3):
            assert db.query_many(queries, kind="skyband", k=k) == [
                db.query_from_scratch(q, kind="skyband", k=k)
                for q in queries
            ]
        # k=2 genuinely differs from k=1 on this workload, so the
        # assertion above cannot pass by accident.
        assert db.query_many(queries, kind="skyband", k=2) != db.query_many(
            queries, kind="skyband", k=1
        )


class TestQueryReports:
    def test_every_annotated_answer_carries_a_report(self):
        db = SkylineDatabase(POINTS)
        answer = db.query_annotated((3.0, 6.5), kind="quadrant")
        report = answer.query_report
        assert report is not None
        assert report.kind == "quadrant"
        assert report.tier == answer.served_from == "diagram"
        assert report.batch == 1
        assert report.seconds >= 0.0
        assert set(report.as_dict()) == {
            "kind", "key", "tier", "batch", "seconds", "per_query_s",
            "boundary_hits", "cache_hit", "pending_updates", "generation",
        }

    def test_batch_answers_share_one_report(self):
        db = SkylineDatabase(POINTS)
        queries = boundary_heavy_queries(POINTS)
        answers = db.query_batch_annotated(queries, kind="global")
        reports = {id(a.query_report) for a in answers}
        assert len(reports) == 1
        report = answers[0].query_report
        assert report.batch == len(queries)
        assert report.boundary_hits >= 1  # grid-line queries in the set

    def test_degraded_answers_report_their_tier(self):
        db = SkylineDatabase(POINTS, budget=BuildBudget(max_cells=1))
        answers = db.query_batch_annotated(
            [(3.0, 6.5), (7.0, 7.0)], kind="quadrant"
        )
        for answer in answers:
            assert answer.query_report.tier == answer.served_from
            assert answer.query_report.tier in ("partial", "scratch")

    def test_cache_hit_flag(self):
        db = SkylineDatabase(POINTS)
        first = db.query_annotated((3.0, 6.5), kind="quadrant")
        second = db.query_annotated((3.0, 6.5), kind="quadrant")
        assert first.query_report.cache_hit is False
        assert second.query_report.cache_hit is True


class TestMetricsRegistry:
    def test_tier_accounting_single_choke_point(self):
        db = SkylineDatabase(POINTS)
        db.query((3.0, 6.5), kind="quadrant")
        db.query_batch([(1.0, 1.0), (2.0, 2.0)], kind="quadrant")
        assert db.metrics.tier_counts()["diagram"] == 3
        assert db.health()["tiers"] == db.metrics.tier_counts()

    def test_health_exposes_the_snapshot(self):
        db = SkylineDatabase(POINTS)
        db.query((3.0, 6.5), kind="quadrant")
        snapshot = db.health()["queries"]
        assert snapshot["tiers"]["diagram"] == 1
        assert snapshot["counters"]["queries"] == 1
        assert "quadrant/diagram" in snapshot["latency"]

    def test_registry_is_shareable_across_databases(self):
        registry = MetricsRegistry()
        a = SkylineDatabase(POINTS, metrics=registry)
        b = SkylineDatabase(POINTS[:4], metrics=registry)
        a.query((3.0, 6.5), kind="quadrant")
        b.query((3.0, 6.5), kind="quadrant")
        assert registry.tier_counts()["diagram"] == 2

    def test_registry_is_a_build_telemetry_sink(self):
        # The registry speaks the BuildContext sink protocol, so build
        # phases and query latency can land in one place.
        registry = MetricsRegistry()
        db = SkylineDatabase(
            POINTS,
            build_options=BuildOptions(telemetry=registry),
            metrics=registry,
        )
        db.query((3.0, 6.5), kind="quadrant")
        snapshot = registry.snapshot()
        assert snapshot["build_phases"]  # row_scan et al. landed
        assert snapshot["tiers"]["diagram"] == 1

    def test_format_snapshot_renders_all_sections(self):
        db = SkylineDatabase(POINTS, budget=BuildBudget(max_cells=1))
        db.query((3.0, 6.5), kind="quadrant")
        text = format_snapshot(db.metrics.snapshot())
        assert "query runtime metrics" in text
        assert "tiers:" in text
        assert "counters:" in text
        assert "kind/tier" in text

    def test_snapshot_is_json_serializable(self):
        import json

        db = SkylineDatabase(POINTS)
        db.query_batch(boundary_heavy_queries(POINTS), kind="dynamic")
        json.dumps(db.metrics.snapshot())


class TestLatencyHistogram:
    def test_quantiles_and_moments(self):
        histogram = LatencyHistogram()
        for seconds in (1e-6, 2e-6, 1e-3):
            histogram.observe(seconds)
        stats = histogram.as_dict()
        assert stats["count"] == 3
        assert stats["min_s"] == pytest.approx(1e-6)
        assert stats["max_s"] == pytest.approx(1e-3)
        assert stats["p50_s"] <= stats["p99_s"]

    def test_batch_weight_attribution(self):
        # A batch of 10 queries taking 0.1 s each lands as 10
        # observations of the per-query latency.
        histogram = LatencyHistogram()
        histogram.observe(0.1, weight=10)
        assert histogram.as_dict()["count"] == 10
        assert histogram.as_dict()["mean_s"] == pytest.approx(0.1)
        assert histogram.as_dict()["max_s"] == pytest.approx(0.1)

    def test_ignores_nonpositive_weight(self):
        histogram = LatencyHistogram()
        histogram.observe(1.0, weight=0)
        assert histogram.as_dict()["count"] == 0


class TestObserveQuery:
    def test_rejects_unknown_tier(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.observe_query(
                QueryReport(kind="quadrant", key="quadrant:0", tier="warp")
            )

    def test_cache_counters_only_for_diagram_tier(self):
        registry = MetricsRegistry()
        registry.observe_query(
            QueryReport("quadrant", "quadrant:0", "diagram", cache_hit=True)
        )
        registry.observe_query(
            QueryReport("quadrant", "quadrant:0", "scratch")
        )
        counters = registry.snapshot()["counters"]
        assert counters["cache_hits"] == 1
        assert counters.get("cache_misses", 0) == 0


class TestStatsCli:
    def test_workload_mode_prints_metrics(self, capsys):
        from repro.cli import main

        assert main(["stats", "--workload", "12", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "query runtime metrics" in out
        assert "quadrant/diagram" in out
        assert "scratch" in out  # the degraded arm ran

    def test_chaos_mode_prints_metrics(self, capsys):
        from repro.cli import main

        assert main(["stats", "--chaos", "--cases", "4"]) == 0
        out = capsys.readouterr().out
        assert "chaos [OK]" in out
        assert "query tiers:" in out
        assert "query runtime metrics" in out

    def test_stats_without_target_fails(self, capsys):
        from repro.cli import main

        assert main(["stats"]) != 0
        assert "error:" in capsys.readouterr().err


class TestMalformedBatches:
    def test_batch_of_one_raises_typed_errors(self):
        # Regression: the scalar batch-of-1 path must validate like the
        # vectorized path — typed QueryError, never a raw ValueError.
        from repro.errors import QueryError

        db = SkylineDatabase(POINTS)
        for bad in [[(1, 2, 3)], [("a", "b")], [(float("nan"), 1.0)]]:
            with pytest.raises(QueryError):
                db.query_batch(bad, kind="quadrant")

    def test_multi_row_batches_keep_locate_batch_errors(self):
        from repro.errors import QueryError

        db = SkylineDatabase(POINTS)
        with pytest.raises(QueryError, match="locate_batch"):
            db.query_batch([(1, 2, 3), (4, 5, 6)], kind="quadrant")


class TestQueryExactIsGone:
    def test_alias_removed_everywhere(self):
        db = SkylineDatabase(POINTS)
        assert not hasattr(db, "query_exact")
