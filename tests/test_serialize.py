"""Tests for diagram JSON serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.global_diagram import global_diagram
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import SerializationError
from repro.index.serialize import (
    diagram_from_json,
    diagram_to_json,
    dynamic_diagram_from_json,
    dynamic_diagram_to_json,
)

from tests.conftest import points_2d


class TestRoundTrip:
    @given(points_2d(max_size=8))
    @settings(max_examples=25)
    def test_quadrant_round_trip(self, pts):
        diagram = quadrant_scanning(pts)
        assert diagram_from_json(diagram_to_json(diagram)) == diagram

    @given(points_2d(max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_dynamic_round_trip(self, pts):
        diagram = dynamic_scanning(pts)
        assert dynamic_diagram_from_json(
            dynamic_diagram_to_json(diagram)
        ) == diagram

    def test_global_round_trip(self, staircase):
        diagram = global_diagram(staircase)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored == diagram
        assert restored.kind == "global"

    def test_metadata_preserved(self, staircase):
        diagram = quadrant_scanning(staircase)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.algorithm == "scanning"
        assert restored.mask == 0

    def test_restored_diagram_answers_queries(self, staircase):
        diagram = quadrant_scanning(staircase)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.query((0, 0)) == diagram.query((0, 0))


class TestValidation:
    def test_rejects_invalid_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            diagram_from_json("{nope")

    def test_rejects_foreign_payload(self):
        with pytest.raises(SerializationError, match="not a serialized"):
            diagram_from_json(json.dumps({"hello": 1}))

    def test_rejects_wrong_version(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_wrong_diagram_type(self, staircase):
        text = diagram_to_json(quadrant_scanning(staircase))
        with pytest.raises(SerializationError, match="expected"):
            dynamic_diagram_from_json(text)

    def test_rejects_missing_fields(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        del payload["cells"]
        with pytest.raises(SerializationError, match="missing"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_cell_count_mismatch(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["cells"] = payload["cells"][:-1]
        with pytest.raises(SerializationError, match="cell entries"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_shape_mismatch(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["shape"] = [99, 99]
        with pytest.raises(SerializationError, match="shape"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_dynamic_shape_mismatch(self):
        payload = json.loads(
            dynamic_diagram_to_json(dynamic_scanning([(0, 0), (4, 4)]))
        )
        payload["shape"] = [1, 1]
        with pytest.raises(SerializationError, match="shape"):
            dynamic_diagram_from_json(json.dumps(payload))


class TestEnvelope:
    """Versioned, checksummed, atomically written files (ISSUE PR 3)."""

    def _diagrams(self, staircase):
        from repro.diagram.global_diagram import quadrant_diagram_for_mask
        from repro.diagram.skyband import skyband_sweep

        return {
            "quadrant": quadrant_scanning(staircase),
            "reflected": quadrant_diagram_for_mask(
                staircase, 3, quadrant_scanning
            ),
            "global": global_diagram(staircase),
            "dynamic": dynamic_scanning(staircase),
            "skyband": skyband_sweep(staircase, k=2),
        }

    def test_round_trip_every_kind(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram

        for name, diagram in self._diagrams(staircase).items():
            path = tmp_path / f"{name}.json"
            save_diagram(diagram, str(path))
            restored = load_diagram(str(path))
            assert restored.store == diagram.store, name
            assert type(restored) is type(diagram), name

    def test_skyband_round_trip_preserves_k(self, staircase, tmp_path):
        from repro.diagram.skyband import skyband_sweep
        from repro.index.serialize import load_diagram, save_diagram

        path = tmp_path / "band.json"
        save_diagram(skyband_sweep(staircase, k=2), str(path))
        restored = load_diagram(str(path))
        assert restored.k == 2
        assert restored.query((0, 0)) == (0, 1, 2)

    def test_rejects_invalid_skyband_k(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["k"] = 0
        with pytest.raises(SerializationError, match="k"):
            diagram_from_json(json.dumps(payload))

    def test_header_shape(self, staircase, tmp_path):
        from repro.index.serialize import save_diagram

        path = tmp_path / "d.bin"
        save_diagram(quadrant_scanning(staircase), str(path))
        header, _, body = path.read_bytes().partition(b"\n")
        assert header.startswith(b"repro.skyline-diagram/3 sha256=")
        assert f"bytes={len(body)}".encode() in header

    def test_json_header_shape(self, staircase, tmp_path):
        from repro.index.serialize import save_diagram

        path = tmp_path / "d.json"
        save_diagram(quadrant_scanning(staircase), str(path), format="json")
        header, _, body = path.read_bytes().partition(b"\n")
        assert header.startswith(b"repro.skyline-diagram/2 sha256=")
        assert f"bytes={len(body)}".encode() in header

    def test_bare_v1_file_still_loads(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram

        diagram = quadrant_scanning(staircase)
        path = tmp_path / "v1.json"
        path.write_text(diagram_to_json(diagram))
        assert load_diagram(str(path)).store == diagram.store

    def test_truncation_detected_with_salvage(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram

        path = tmp_path / "d.json"
        save_diagram(quadrant_scanning(staircase), str(path))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(SerializationError, match="truncated") as excinfo:
            load_diagram(str(path))
        salvage = excinfo.value.salvage
        assert salvage["payload_bytes"] < salvage["expected_bytes"]
        assert salvage["payload_parseable"] is False

    def test_bit_rot_detected_by_checksum(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram

        path = tmp_path / "d.json"
        save_diagram(quadrant_scanning(staircase), str(path))
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x01  # flip one payload bit; byte count is unchanged
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="checksum"):
            load_diagram(str(path))

    def test_envelope_version_mismatch(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram

        path = tmp_path / "d.json"
        save_diagram(quadrant_scanning(staircase), str(path))
        blob = path.read_bytes().replace(
            b"repro.skyline-diagram/3", b"repro.skyline-diagram/7", 1
        )
        path.write_bytes(blob)
        with pytest.raises(SerializationError, match="version"):
            load_diagram(str(path))

    def test_missing_file_is_a_serialization_error(self, tmp_path):
        from repro.index.serialize import load_diagram

        with pytest.raises(SerializationError, match="cannot read"):
            load_diagram(str(tmp_path / "absent.json"))

    def test_malformed_cell_entries_are_typed(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["cells"][0] = ["not-an-id"]
        with pytest.raises(SerializationError, match="cell entry"):
            diagram_from_json(json.dumps(payload))

    def test_failed_save_preserves_previous_file(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram
        from repro.testing.faults import io_errors_on_save

        diagram = quadrant_scanning(staircase)
        path = tmp_path / "d.json"
        save_diagram(diagram, str(path))
        original = path.read_bytes()
        with io_errors_on_save():
            with pytest.raises(OSError):
                save_diagram(quadrant_scanning(staircase[:2]), str(path))
        assert path.read_bytes() == original
        assert load_diagram(str(path)).store == diagram.store
        assert not list(tmp_path.glob("*.tmp"))


class TestBinaryFormat:
    """The v3 binary snapshot payload (ISSUE PR 7)."""

    def _diagrams(self, staircase):
        from repro.diagram.global_diagram import quadrant_diagram_for_mask
        from repro.diagram.skyband import skyband_sweep

        return {
            "quadrant": quadrant_scanning(staircase),
            "reflected": quadrant_diagram_for_mask(
                staircase, 3, quadrant_scanning
            ),
            "global": global_diagram(staircase),
            "dynamic": dynamic_scanning(staircase),
            "skyband": skyband_sweep(staircase, k=2),
        }

    def test_binary_round_trip_every_kind(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram

        for name, diagram in self._diagrams(staircase).items():
            path = tmp_path / f"{name}.bin"
            save_diagram(diagram, str(path))
            restored = load_diagram(str(path))
            assert restored == diagram, name
            assert type(restored) is type(diagram), name
            assert restored.store.fingerprint() == (
                diagram.store.fingerprint()
            ), name

    def test_binary_preserves_skyband_k(self, staircase, tmp_path):
        from repro.diagram.skyband import skyband_sweep
        from repro.index.serialize import load_diagram, save_diagram

        path = tmp_path / "band.bin"
        save_diagram(skyband_sweep(staircase, k=2), str(path))
        restored = load_diagram(str(path))
        assert restored.k == 2
        assert restored.query((0, 0)) == (0, 1, 2)

    def test_vectorized_build_stays_lazy_through_save_and_load(
        self, staircase, tmp_path
    ):
        from repro.diagram.pipeline import BuildOptions
        from repro.diagram.store import ConsForestTable
        from repro.index.serialize import load_diagram, save_diagram

        diagram = quadrant_scanning(
            staircase, build_options=BuildOptions(executor="vectorized")
        )
        path = tmp_path / "lazy.bin"
        save_diagram(diagram, str(path))
        # Saving must not force the cons forest into a materialized list...
        assert type(diagram.store._table) is ConsForestTable
        restored = load_diagram(str(path))
        # ...and loading must rebuild the forest, not a flat table.
        assert type(restored.store._table) is ConsForestTable
        assert restored == diagram

    def test_map_diagram_answers_from_readonly_views(
        self, staircase, tmp_path
    ):
        from repro.index.serialize import (
            map_diagram,
            save_diagram,
            verify_envelope,
        )

        diagram = quadrant_scanning(staircase)
        path = tmp_path / "mapped.bin"
        save_diagram(diagram, str(path))
        mapped, sha = map_diagram(str(path))
        assert mapped == diagram
        assert mapped.query((0, 0)) == diagram.query((0, 0))
        assert not mapped.store.ids.flags.writeable
        _, _, expected_sha = verify_envelope(path.read_bytes())
        assert sha == expected_sha

    def test_v2_to_v3_upgrade_path(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram

        diagram = dynamic_scanning(staircase)
        old = tmp_path / "legacy.json"
        save_diagram(diagram, str(old), format="json")
        migrated = load_diagram(str(old))
        new = tmp_path / "upgraded.bin"
        save_diagram(migrated, str(new))
        assert new.read_bytes().startswith(b"repro.skyline-diagram/3 ")
        assert load_diagram(str(new)) == diagram

    def test_binary_is_smaller_than_json(self, tmp_path):
        import os

        from repro.datasets import generate
        from repro.index.serialize import save_diagram

        # Large enough that the per-section alignment padding is noise;
        # the ISSUE's 5x-at-n=2000 target is measured by the benchmark.
        diagram = quadrant_scanning(generate("independent", 120, seed=4))
        save_diagram(diagram, str(tmp_path / "d.bin"))
        save_diagram(diagram, str(tmp_path / "d.json"), format="json")
        assert os.path.getsize(tmp_path / "d.bin") * 2 < os.path.getsize(
            tmp_path / "d.json"
        )

    def test_save_rejects_unknown_format(self, staircase, tmp_path):
        from repro.index.serialize import save_diagram

        with pytest.raises(ValueError, match="format"):
            save_diagram(
                quadrant_scanning(staircase),
                str(tmp_path / "d.xml"),
                format="xml",
            )

    def test_binary_bit_rot_detected(self, staircase, tmp_path):
        from repro.index.serialize import load_diagram, save_diagram

        path = tmp_path / "d.bin"
        save_diagram(quadrant_scanning(staircase), str(path))
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(SerializationError, match="checksum"):
            load_diagram(str(path))

    def test_open_envelope_refuses_binary_payloads(self, staircase, tmp_path):
        from repro.index.serialize import open_envelope, save_diagram

        path = tmp_path / "d.bin"
        save_diagram(quadrant_scanning(staircase), str(path))
        with pytest.raises(SerializationError, match="binary"):
            open_envelope(path.read_bytes())
