"""Tests for diagram JSON serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.global_diagram import global_diagram
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import SerializationError
from repro.index.serialize import (
    diagram_from_json,
    diagram_to_json,
    dynamic_diagram_from_json,
    dynamic_diagram_to_json,
)

from tests.conftest import points_2d


class TestRoundTrip:
    @given(points_2d(max_size=8))
    @settings(max_examples=25)
    def test_quadrant_round_trip(self, pts):
        diagram = quadrant_scanning(pts)
        assert diagram_from_json(diagram_to_json(diagram)) == diagram

    @given(points_2d(max_size=6))
    @settings(max_examples=15, deadline=None)
    def test_dynamic_round_trip(self, pts):
        diagram = dynamic_scanning(pts)
        assert dynamic_diagram_from_json(
            dynamic_diagram_to_json(diagram)
        ) == diagram

    def test_global_round_trip(self, staircase):
        diagram = global_diagram(staircase)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored == diagram
        assert restored.kind == "global"

    def test_metadata_preserved(self, staircase):
        diagram = quadrant_scanning(staircase)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.algorithm == "scanning"
        assert restored.mask == 0

    def test_restored_diagram_answers_queries(self, staircase):
        diagram = quadrant_scanning(staircase)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored.query((0, 0)) == diagram.query((0, 0))


class TestValidation:
    def test_rejects_invalid_json(self):
        with pytest.raises(SerializationError, match="invalid JSON"):
            diagram_from_json("{nope")

    def test_rejects_foreign_payload(self):
        with pytest.raises(SerializationError, match="not a serialized"):
            diagram_from_json(json.dumps({"hello": 1}))

    def test_rejects_wrong_version(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_wrong_diagram_type(self, staircase):
        text = diagram_to_json(quadrant_scanning(staircase))
        with pytest.raises(SerializationError, match="expected"):
            dynamic_diagram_from_json(text)

    def test_rejects_missing_fields(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        del payload["cells"]
        with pytest.raises(SerializationError, match="missing"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_cell_count_mismatch(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["cells"] = payload["cells"][:-1]
        with pytest.raises(SerializationError, match="cell entries"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_shape_mismatch(self, staircase):
        payload = json.loads(diagram_to_json(quadrant_scanning(staircase)))
        payload["shape"] = [99, 99]
        with pytest.raises(SerializationError, match="shape"):
            diagram_from_json(json.dumps(payload))

    def test_rejects_dynamic_shape_mismatch(self):
        payload = json.loads(
            dynamic_diagram_to_json(dynamic_scanning([(0, 0), (4, 4)]))
        )
        payload["shape"] = [1, 1]
        with pytest.raises(SerializationError, match="shape"):
            dynamic_diagram_from_json(json.dumps(payload))
