"""Unit and property tests for the skyline-cell grid."""

import pytest
from hypothesis import given

from repro.errors import QueryError
from repro.geometry.grid import Grid

from tests.conftest import points_2d, points_nd


class TestCompression:
    def test_tied_coordinates_share_a_line(self):
        grid = Grid([(1, 5), (1, 7), (3, 5)])
        assert grid.axes == ((1.0, 3.0), (5.0, 7.0))
        assert grid.shape == (3, 3)

    def test_ranks_are_one_based(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.rank_of(0) == (1, 1)
        assert grid.rank_of(1) == (2, 2)

    def test_num_cells(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.num_cells == 9
        assert len(list(grid.cells())) == 9

    def test_2d_axis_aliases(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.xs == (1.0, 3.0)
        assert grid.ys == (5.0, 7.0)


class TestCorners:
    def test_point_at_corner(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.corner_points((1, 1)) == (0,)
        assert grid.corner_points((2, 2)) == (1,)

    def test_empty_corner(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.corner_points((1, 2)) == ()

    def test_duplicate_points_share_a_corner(self):
        grid = Grid([(1, 5), (1, 5)])
        assert grid.corner_points((1, 1)) == (0, 1)

    def test_corner_value(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.corner_value((2, 1)) == (3.0, 5.0)
        assert grid.corner_value((0, 1)) == (float("-inf"), 5.0)


class TestLocation:
    def test_interior_point(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.locate((2, 6)) == (1, 1)

    def test_before_all_lines(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.locate((0, 0)) == (0, 0)

    def test_after_all_lines(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.locate((99, 99)) == (2, 2)

    def test_boundary_assigned_to_lower_cell(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.locate((3, 5)) == (1, 0)

    def test_upper_mask_flips_boundary_side_per_axis(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.locate((3, 5), upper_mask=1) == (2, 0)
        assert grid.locate((3, 5), upper_mask=2) == (1, 1)
        assert grid.locate((3, 5), upper_mask=3) == (2, 1)
        # Off the lines the side does not matter.
        assert grid.locate((2, 6), upper_mask=3) == grid.locate((2, 6))

    def test_boundary_axes_bitmask(self):
        grid = Grid([(1, 5), (3, 7)])
        q = (3, 6)
        assert grid.boundary_axes(q, grid.locate(q)) == 1
        q = (2, 5)
        assert grid.boundary_axes(q, grid.locate(q)) == 2
        q = (3, 5)
        assert grid.boundary_axes(q, grid.locate(q)) == 3
        q = (2, 6)
        assert grid.boundary_axes(q, grid.locate(q)) == 0

    def test_locate_rejects_nan(self):
        grid = Grid([(1, 5), (3, 7)])
        with pytest.raises(QueryError, match="NaN"):
            grid.locate((float("nan"), 1.0))
        with pytest.raises(QueryError, match="NaN"):
            grid.locate_batch([(1.0, float("nan"))])

    def test_rejects_wrong_dimensionality(self):
        grid = Grid([(1, 5)])
        with pytest.raises(QueryError):
            grid.locate((1, 2, 3))


class TestRepresentatives:
    def test_interior_cell(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.representative((1, 1)) == (2.0, 6.0)

    def test_outer_cells_extend_beyond(self):
        grid = Grid([(1, 5), (3, 7)])
        assert grid.representative((0, 0)) == (0.0, 4.0)
        assert grid.representative((2, 2)) == (4.0, 8.0)

    def test_rejects_out_of_range(self):
        grid = Grid([(1, 5)])
        with pytest.raises(QueryError):
            grid.representative((5, 0))

    @given(points_2d())
    def test_representative_locates_to_its_cell(self, pts):
        grid = Grid(pts)
        for cell in grid.cells():
            assert grid.locate(grid.representative(cell)) == cell

    @given(points_nd(3, max_size=5))
    def test_representative_locates_to_its_cell_3d(self, pts):
        grid = Grid(pts)
        for cell in grid.cells():
            assert grid.locate(grid.representative(cell)) == cell


class TestCellBounds:
    def test_interior(self):
        grid = Grid([(1, 5), (3, 7)])
        lo, hi = grid.cell_bounds((1, 1))
        assert lo == (1.0, 5.0)
        assert hi == (3.0, 7.0)

    def test_unbounded_edges(self):
        grid = Grid([(1, 5)])
        lo, hi = grid.cell_bounds((0, 1))
        assert lo == (float("-inf"), 5.0)
        assert hi == (1.0, float("inf"))

    @given(points_2d())
    def test_every_point_rank_matches_axis_value(self, pts):
        grid = Grid(pts)
        for pid, p in enumerate(grid.dataset):
            rx, ry = grid.rank_of(pid)
            assert grid.xs[rx - 1] == p[0]
            assert grid.ys[ry - 1] == p[1]

    def test_repr(self):
        assert "lines=2x2" in repr(Grid([(1, 5), (3, 7)]))
