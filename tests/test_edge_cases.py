"""Cross-module edge cases that no single module's suite owns."""

import pytest

from repro.diagram import (
    dynamic_scanning,
    global_diagram,
    quadrant_scanning,
    quadrant_sweeping,
)
from repro.diagram.skyband import skyband_sweep
from repro.geometry.subcell import SubcellGrid
from repro.index.engine import SkylineDatabase
from repro.index.serialize import diagram_from_json, diagram_to_json


class TestSinglePoint:
    """n = 1 exercises every boundary branch at once."""

    def test_all_quadrant_structures(self):
        diagram = quadrant_scanning([(5, 5)])
        assert diagram.query((0, 0)) == (0,)
        assert diagram.query((6, 6)) == ()
        sweep = quadrant_sweeping([(5, 5)])
        assert sweep.num_regions == 2

    def test_global_sees_the_point_everywhere(self):
        diagram = global_diagram([(5, 5)])
        for cell, result in diagram.cells():
            assert result == (0,)

    def test_dynamic_sees_the_point_everywhere(self):
        diagram = dynamic_scanning([(5, 5)])
        for _, result in diagram.cells():
            assert result == (0,)

    def test_subcell_grid_of_one_point(self):
        sg = SubcellGrid([(5, 5)])
        # One point: its own lines only (the self-bisector coincides).
        assert sg.axes == ((5.0,), (5.0,))
        assert sg.num_subcells == 4

    def test_skyband_k_equals_n(self):
        diagram = skyband_sweep([(5, 5)], k=1)
        assert diagram.query((0, 0)) == (0,)


class TestAllPointsIdentical:
    def test_quadrant(self):
        diagram = quadrant_scanning([(3, 3)] * 4)
        assert diagram.query((0, 0)) == (0, 1, 2, 3)
        assert diagram.query((4, 4)) == ()

    def test_dynamic(self):
        diagram = dynamic_scanning([(3, 3)] * 3)
        for _, result in diagram.cells():
            assert result == (0, 1, 2)

    def test_global(self):
        diagram = global_diagram([(3, 3)] * 2)
        for _, result in diagram.cells():
            assert result == (0, 1)


class TestCollinearPoints:
    def test_all_on_one_vertical_line(self):
        diagram = quadrant_scanning([(5, 1), (5, 4), (5, 9)])
        # Only the lowest survives wherever all are candidates.
        assert diagram.query((0, 0)) == (0,)
        assert diagram.query((0, 2)) == (1,)
        assert diagram.query((0, 5)) == (2,)

    def test_all_on_one_horizontal_line(self):
        diagram = quadrant_scanning([(1, 5), (4, 5), (9, 5)])
        assert diagram.query((0, 0)) == (0,)
        assert diagram.query((2, 0)) == (1,)

    def test_sweeping_handles_collinear(self):
        sweep = quadrant_sweeping([(5, 1), (5, 4), (5, 9)])
        scanning = quadrant_scanning([(5, 1), (5, 4), (5, 9)])
        assert sweep.num_regions == len(scanning.polyominos())

    def test_diagonal_chain(self):
        diagram = quadrant_scanning([(i, i) for i in range(1, 6)])
        for i in range(5):
            probe = (i + 0.5, i + 0.5)
            assert diagram.query(probe) == (i,)


class TestSerializationOfVariants:
    def test_skyband_serializes_as_plain_diagram(self):
        diagram = skyband_sweep([(1, 1), (2, 2)], k=2)
        restored = diagram_from_json(diagram_to_json(diagram))
        assert dict(restored.cells()) == dict(diagram.cells())

    def test_negative_coordinates_round_trip(self):
        diagram = quadrant_scanning([(-5, -1), (-2, -8)])
        restored = diagram_from_json(diagram_to_json(diagram))
        assert restored == diagram
        assert restored.query((-10, -10)) == diagram.query((-10, -10))


class TestEngineBatch:
    def test_query_many_dynamic(self):
        db = SkylineDatabase([(0, 0), (10, 10)])
        queries = [(1, 1), (9, 9), (4, 6)]
        assert db.query_many(queries, kind="dynamic") == [
            db.query(q, kind="dynamic") for q in queries
        ]

    def test_query_many_unknown_kind(self):
        from repro.errors import QueryError

        db = SkylineDatabase([(0, 0)])
        with pytest.raises(QueryError):
            db.query_many([(1, 1)], kind="bogus")
