"""Tests for build budgets, the degradation ladder, health and audits."""

import numpy as np
import pytest

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import (
    AuditError,
    BudgetExceededError,
    DatasetError,
    DimensionalityError,
    QueryError,
)
from repro.index.engine import SkylineDatabase
from repro.resilience import (
    BudgetMeter,
    BuildBudget,
    CoverageMiss,
    PartialDiagram,
    as_meter,
)
from repro.testing.faults import SteppingClock, crash_build_after


class TestBuildBudget:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_seconds"):
            BuildBudget(max_seconds=0)
        with pytest.raises(ValueError, match="max_cells"):
            BuildBudget(max_cells=0)
        with pytest.raises(ValueError, match="max_distinct"):
            BuildBudget(max_distinct=-1)

    def test_unlimited(self):
        assert BuildBudget().unlimited
        assert not BuildBudget(max_cells=10).unlimited

    def test_meter_counts_and_trips_cells(self):
        meter = BuildBudget(max_cells=5).start()
        meter.checkpoint(advance=3)
        with pytest.raises(BudgetExceededError, match="cell budget") as info:
            meter.checkpoint(advance=3)
        progress = info.value.progress
        assert progress.cells_done == 6
        assert progress.checkpoints == 2

    def test_meter_trips_distinct(self):
        meter = BuildBudget(max_distinct=2).start()
        meter.checkpoint(distinct=2)
        with pytest.raises(BudgetExceededError, match="distinct"):
            meter.checkpoint(distinct=3)

    def test_meter_trips_time_with_injected_clock(self):
        clock = SteppingClock()
        meter = BuildBudget(max_seconds=1.0).start(clock)
        meter.checkpoint()
        clock.advance(2.0)
        with pytest.raises(BudgetExceededError, match="time budget"):
            meter.checkpoint()

    def test_as_meter_normalization(self):
        assert as_meter(None) is None
        meter = BuildBudget(max_cells=3).start()
        assert as_meter(meter) is meter
        assert isinstance(as_meter(BuildBudget(max_cells=3)), BudgetMeter)
        with pytest.raises(TypeError):
            as_meter(42)


class TestBuilderBudgets:
    """Every construction raises typed, progress-carrying exhaustion."""

    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0), (1.0, 9.0)]

    def test_quadrant_scanning_partial(self):
        with pytest.raises(BudgetExceededError) as info:
            quadrant_scanning(self.POINTS, budget=BuildBudget(max_cells=6))
        partial = info.value.partial
        assert isinstance(partial, PartialDiagram)
        assert 0 < partial.coverage < 1
        # The top rows were scanned; queries there are exact.
        answer = partial.query((0.0, 100.0))
        full = quadrant_scanning(self.POINTS)
        assert answer == full.query((0.0, 100.0))

    def test_dynamic_scanning_partial_covers_bottom_rows(self):
        with pytest.raises(BudgetExceededError) as info:
            dynamic_scanning(self.POINTS, budget=BuildBudget(max_cells=9))
        partial = info.value.partial
        assert partial is not None and partial.rows_built >= 1
        full = dynamic_scanning(self.POINTS)
        assert partial.query((0.3, -50.0)) == full.query((0.3, -50.0))

    def test_dynamic_partial_misses_boundary_queries(self):
        with pytest.raises(BudgetExceededError) as info:
            dynamic_scanning(self.POINTS, budget=BuildBudget(max_cells=9))
        partial = info.value.partial
        with pytest.raises(CoverageMiss):
            partial.query((2.0, -50.0))  # x = 2 lies on a subcell line

    def test_partial_miss_outside_covered_rows(self):
        with pytest.raises(BudgetExceededError) as info:
            quadrant_scanning(self.POINTS, budget=BuildBudget(max_cells=6))
        with pytest.raises(CoverageMiss):
            info.value.partial.query((0.0, 0.0))  # bottom row never built

    def test_global_diagram_strips_partial(self):
        from repro.diagram.global_diagram import global_diagram

        with pytest.raises(BudgetExceededError) as info:
            global_diagram(self.POINTS, budget=BuildBudget(max_cells=6))
        assert info.value.partial is None

    def test_reflected_quadrant_strips_partial(self):
        from repro.diagram.global_diagram import quadrant_diagram_for_mask

        with pytest.raises(BudgetExceededError) as info:
            quadrant_diagram_for_mask(
                self.POINTS, 3, quadrant_scanning,
                budget=BuildBudget(max_cells=6),
            )
        assert info.value.partial is None

    def test_skyband_sweep_partial(self):
        from repro.diagram.skyband import skyband_sweep

        with pytest.raises(BudgetExceededError) as info:
            skyband_sweep(self.POINTS, 2, budget=BuildBudget(max_cells=6))
        partial = info.value.partial
        full = skyband_sweep(self.POINTS, 2)
        assert partial.query((0.0, -5.0)) == full.query((0.0, -5.0))

    def test_highdim_scanning_budget(self):
        from repro.diagram.highdim import quadrant_scanning_nd

        with pytest.raises(BudgetExceededError):
            quadrant_scanning_nd(
                [(1.0, 2.0, 3.0), (3.0, 2.0, 1.0), (2.0, 2.0, 2.0)],
                budget=BuildBudget(max_cells=4),
            )

    def test_budget_unaware_algorithm_charged_post_hoc(self):
        from repro.diagram.global_diagram import quadrant_diagram_for_mask
        from repro.diagram.quadrant_baseline import quadrant_baseline

        with pytest.raises(BudgetExceededError):
            quadrant_diagram_for_mask(
                self.POINTS, 0, quadrant_baseline,
                budget=BuildBudget(max_cells=6),
            )


class TestDegradationLadder:
    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]

    def test_scratch_tier_matches_direct_evaluation(self):
        db = SkylineDatabase(self.POINTS, budget=BuildBudget(max_cells=1))
        for kind in ("quadrant", "global", "dynamic", "skyband"):
            k = 2 if kind == "skyband" else 1
            answer = db.query_annotated((4.0, 4.0), kind=kind, k=k)
            assert answer.served_from in ("partial", "scratch")
            assert answer.result == db.query_from_scratch(
                (4.0, 4.0), kind=kind, k=k
            )

    def test_partial_tier_served_for_covered_rows(self):
        db = SkylineDatabase(self.POINTS, budget=BuildBudget(max_cells=6))
        answer = db.query_annotated((0.0, 100.0), kind="quadrant")
        assert answer.served_from == "partial"
        assert answer.result == db.query_from_scratch(
            (0.0, 100.0), kind="quadrant"
        )
        assert db.health()["builds"]["quadrant:0"]["partial_coverage"] > 0

    def test_diagram_tier_when_budget_suffices(self):
        db = SkylineDatabase(self.POINTS, budget=BuildBudget(max_cells=10**6))
        answer = db.query_annotated((1.0, 2.0), kind="quadrant")
        assert (answer.result, answer.served_from, answer.key) == (
            (0, 1),
            "diagram",
            "quadrant:0",
        )
        assert answer.report is not None
        assert answer.report.executor == "serial"

    def test_tier_counters_accumulate(self):
        db = SkylineDatabase(self.POINTS, budget=BuildBudget(max_cells=1))
        db.query((1.0, 2.0), kind="quadrant")
        db.query((1.0, 2.0), kind="quadrant")
        tiers = db.health()["tiers"]
        assert tiers["diagram"] == 0
        assert tiers["partial"] + tiers["scratch"] == 2

    def test_query_batch_degrades_per_query(self):
        db = SkylineDatabase(self.POINTS, budget=BuildBudget(max_cells=1))
        queries = [(1.0, 2.0), (6.0, 5.0), (10.0, 10.0)]
        batch = db.query_batch(queries, kind="quadrant")
        assert batch == [
            db.query_from_scratch(q, kind="quadrant") for q in queries
        ]

    def test_build_crash_degrades_not_raises(self):
        db = SkylineDatabase(self.POINTS)
        with crash_build_after(1, message="synthetic bug"):
            answer = db.query_annotated((1.0, 2.0), kind="quadrant")
        assert answer.served_from == "scratch"
        assert answer.result == (0, 1)
        state = db.health()["builds"]["quadrant:0"]
        assert state["status"] == "degraded"
        assert "synthetic bug" in state["error"]

    def test_required_accessor_raises_on_budget(self):
        db = SkylineDatabase(self.POINTS, budget=BuildBudget(max_cells=1))
        with pytest.raises(BudgetExceededError):
            db.quadrant_diagram()
        # ... but the failure is recorded, and queries keep working.
        assert db.query((1.0, 2.0), kind="quadrant") == (0, 1)


class TestBackoffAndRebuild:
    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]

    def _degraded_db(self, clock):
        db = SkylineDatabase(
            self.POINTS, budget=BuildBudget(max_cells=1), clock=clock
        )
        db.query((1.0, 2.0), kind="quadrant")
        return db

    def test_backoff_suppresses_rebuild_attempts(self):
        clock = SteppingClock()
        db = self._degraded_db(clock)
        attempts = db.health()["builds"]["quadrant:0"]["attempts"]
        db.query((1.0, 2.0), kind="quadrant")  # inside the backoff window
        assert db.health()["builds"]["quadrant:0"]["attempts"] == attempts

    def test_backoff_is_exponential(self):
        clock = SteppingClock()
        db = self._degraded_db(clock)
        first = db.health()["builds"]["quadrant:0"]["retry_in"]
        clock.advance(first + 0.01)
        db.query((1.0, 2.0), kind="quadrant")  # second failed attempt
        second = db.health()["builds"]["quadrant:0"]["retry_in"]
        assert second > first

    def test_rebuild_respects_and_forces_backoff(self):
        clock = SteppingClock()
        db = self._degraded_db(clock)
        assert db.rebuild() == {"quadrant:0": "backoff"}
        db.budget = None
        assert db.rebuild(force=True) == {"quadrant:0": "ready"}
        assert db.health()["ok"]
        answer = db.query_annotated((1.0, 2.0), kind="quadrant")
        assert answer.served_from == "diagram"

    def test_rebuild_of_specific_kind(self):
        clock = SteppingClock()
        db = self._degraded_db(clock)
        db.budget = None
        outcome = db.rebuild(kind="quadrant", force=True)
        assert outcome == {"quadrant:0": "ready"}


class TestTypedQueryErrors:
    """Satellite: malformed inputs raise library errors, never raw numpy."""

    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]

    def test_scalar_query(self):
        db = SkylineDatabase(self.POINTS)
        with pytest.raises(QueryError, match="sequence"):
            db.query(5)

    def test_string_query(self):
        db = SkylineDatabase(self.POINTS)
        with pytest.raises(QueryError, match="sequence of coordinates"):
            db.query("ab")

    def test_wrong_dimensionality_query(self):
        db = SkylineDatabase(self.POINTS)
        with pytest.raises(QueryError, match="dimensions"):
            db.query((1.0, 2.0, 3.0))
        with pytest.raises(QueryError, match="dimensions"):
            db.query_from_scratch((1.0, 2.0, 3.0))

    def test_non_numeric_coordinates(self):
        db = SkylineDatabase(self.POINTS)
        with pytest.raises(QueryError, match="non-numeric"):
            db.query(("x", "y"))

    def test_mask_out_of_range(self):
        db = SkylineDatabase(self.POINTS)
        with pytest.raises(QueryError, match="mask"):
            db.query((1.0, 2.0), kind="quadrant", mask=4)
        with pytest.raises(QueryError, match="mask"):
            db.query((1.0, 2.0), kind="quadrant", mask=-1)

    def test_bad_skyband_k(self):
        db = SkylineDatabase(self.POINTS)
        with pytest.raises(QueryError, match="k"):
            db.query((1.0, 2.0), kind="skyband", k=0)
        with pytest.raises(QueryError, match="k"):
            db.skyband((1.0, 2.0), k="two")

    def test_unknown_kind(self):
        db = SkylineDatabase(self.POINTS)
        with pytest.raises(QueryError, match="kind"):
            db.query((1.0, 2.0), kind="bogus")

    def test_empty_dataset_is_typed(self):
        with pytest.raises(DatasetError):
            SkylineDatabase([])

    def test_single_point_dataset_works_everywhere(self):
        db = SkylineDatabase([(3.0, 3.0)])
        assert db.query((0.0, 0.0), kind="quadrant") == (0,)
        assert db.query((0.0, 0.0), kind="global") == (0,)
        assert db.query((0.0, 0.0), kind="dynamic") == (0,)
        assert db.query_batch([(0.0, 0.0), (5.0, 5.0)], kind="global") == [
            (0,),
            (0,),
        ]

    def test_dimensionality_errors_win_over_ladder(self):
        db = SkylineDatabase([(1.0, 1.0, 1.0), (2.0, 2.0, 2.0)])
        with pytest.raises(DimensionalityError):
            db.query((0.0, 0.0, 0.0), kind="dynamic")
        with pytest.raises(DimensionalityError):
            db.query((0.0, 0.0, 0.0), kind="skyband", k=2)


class TestAudits:
    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]

    def test_clean_database_audits_ok(self):
        db = SkylineDatabase(self.POINTS, precompute=["global", "dynamic"])
        db.query((1.0, 2.0), kind="quadrant")
        outcome = db.audit()
        assert set(outcome) == {"global", "dynamic", "quadrant:0"}
        assert all(v == "ok" for v in outcome.values())
        assert db.health()["last_audit"] == outcome

    def test_fingerprint_drift_detected_and_healed(self):
        db = SkylineDatabase(self.POINTS)
        db.query((1.0, 2.0), kind="quadrant")
        store = db._diagrams["quadrant:0"].store
        # Remap one cell to a different valid id: structurally sound,
        # caught only by the content fingerprint.
        store.ids[0, 0] = (store.ids[0, 0] + 1) % store.distinct_count
        outcome = db.audit()
        assert outcome["quadrant:0"].startswith("corrupt")
        assert "quadrant:0" in db.health()["degraded"]
        # Self-healing: the next query transparently rebuilds.
        answer = db.query_annotated((1.0, 2.0), kind="quadrant")
        assert answer.result == (0, 1)
        assert db.audit()["quadrant:0"] == "ok"

    def test_structural_corruption_detected(self):
        db = SkylineDatabase(self.POINTS)
        db.query((1.0, 2.0), kind="dynamic")
        store = db._diagrams["dynamic"].store
        store.table[0] = store.table[0] + (10**6,)
        store._intern = None
        assert db.audit()["dynamic"].startswith("corrupt")

    def test_store_audit_rejects_unsorted_results(self):
        from repro.diagram.store import ResultStore

        store = ResultStore.from_dict((1, 1), {(0, 0): (1, 0)})
        with pytest.raises(AuditError, match="sorted"):
            store.audit()

    def test_store_audit_rejects_out_of_range_ids(self):
        from repro.diagram.store import ResultStore

        store = ResultStore.from_dict((1, 1), {(0, 0): (0,)})
        store.ids[0, 0] = 7
        with pytest.raises(AuditError, match="table"):
            store.audit()

    def test_diagram_audit_full_level(self):
        diagram = quadrant_scanning(self.POINTS)
        fingerprint = diagram.audit(level="full")
        assert fingerprint == diagram.store.fingerprint()

    def test_diagram_audit_catches_wrong_cell(self):
        diagram = quadrant_scanning(self.POINTS)
        ids = diagram.store.ids
        ids[0, 0] = (ids[0, 0] + 1) % diagram.store.distinct_count
        with pytest.raises(AuditError):
            diagram.audit(level="full")

    def test_fingerprint_is_content_addressed(self):
        a = quadrant_scanning(self.POINTS)
        b = quadrant_scanning(list(self.POINTS))
        assert a.store.fingerprint() == b.store.fingerprint()
        c = quadrant_scanning(self.POINTS[:2])
        assert a.store.fingerprint() != c.store.fingerprint()


class TestEngineCompat:
    """Contracts the pre-resilience engine exposed must keep holding."""

    def test_precompute_populates_compat_properties(self):
        db = SkylineDatabase(
            [(2.0, 8.0), (5.0, 4.0)], precompute=["global", "dynamic"]
        )
        assert db._global is not None
        assert db._dynamic is not None

    def test_precompute_under_budget_degrades_silently(self):
        db = SkylineDatabase(
            [(2.0, 8.0), (5.0, 4.0)],
            precompute=["global"],
            budget=BuildBudget(max_cells=1),
        )
        assert db._global is None
        assert db.health()["builds"]["global"]["status"] == "degraded"

    def test_shared_budget_meter_is_per_build(self):
        # Each build gets a fresh meter: a budget that admits one diagram
        # admits every diagram, not just the first.
        db = SkylineDatabase(
            [(2.0, 8.0), (5.0, 4.0)], budget=BuildBudget(max_cells=10**6)
        )
        assert db.query_annotated((0.0, 0.0), "quadrant").served_from == "diagram"
        assert db.query_annotated((0.0, 0.0), "dynamic").served_from == "diagram"
