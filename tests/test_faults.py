"""Fault-injection gate: the acceptance scenarios from the robustness issue.

Three properties must hold under injected faults:

(a) a mid-build kill still yields correct answers, served from a lower
    tier of the degradation ladder;
(b) corrupted stores and corrupted files are detected (audit/checksum),
    reported via ``db.health()``, and never served;
(c) every degraded-tier answer matches ``query_from_scratch``.
"""

import os

import pytest

from repro.cli import main
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import BudgetExceededError, SerializationError
from repro.index.engine import SkylineDatabase
from repro.index.serialize import load_diagram, save_diagram
from repro.resilience import BuildBudget
from repro.testing import (
    SteppingClock,
    cancel_build_after,
    corrupt_file_byte,
    crash_build_after,
    flip_store_bit,
    io_errors_on_save,
    truncate_file,
)
from repro.testing.chaos import run_chaos

POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0), (1.0, 9.0), (7.0, 2.0)]
QUERIES = [(0.0, 0.0), (3.0, 5.0), (6.0, 1.5), (100.0, 100.0)]


class TestMidBuildKill:
    """Acceptance (a): killed builds degrade, answers stay correct."""

    def test_cancelled_build_serves_lower_tier(self):
        db = SkylineDatabase(POINTS)
        with cancel_build_after(1):
            for query in QUERIES:
                answer = db.query_annotated(query, kind="quadrant")
                assert answer.served_from in ("partial", "scratch")
                assert answer.result == db.query_from_scratch(
                    query, kind="quadrant"
                )
        assert not db.health()["ok"]
        assert "quadrant:0" in db.health()["degraded"]

    def test_cancelled_build_recovers_after_rebuild(self):
        db = SkylineDatabase(POINTS)
        with cancel_build_after(1):
            db.query((0.0, 0.0), kind="quadrant")
        assert db.rebuild(force=True)["quadrant:0"] == "ready"
        answer = db.query_annotated((0.0, 0.0), kind="quadrant")
        assert answer.served_from == "diagram"
        assert db.health()["ok"]

    def test_cancellation_in_every_kind(self):
        for kind in ("quadrant", "global", "dynamic", "skyband"):
            k = 2 if kind == "skyband" else 1
            db = SkylineDatabase(POINTS)
            with cancel_build_after(1):
                answer = db.query_annotated((3.0, 5.0), kind=kind, k=k)
            assert answer.served_from != "diagram"
            assert answer.result == db.query_from_scratch(
                (3.0, 5.0), kind=kind, k=k
            )

    def test_crash_degrades_without_partial(self):
        db = SkylineDatabase(POINTS)
        with crash_build_after(1, message="simulated builder bug"):
            answer = db.query_annotated((0.0, 0.0), kind="quadrant")
        assert answer.served_from == "scratch"
        state = db.health()["builds"]["quadrant:0"]
        assert state["status"] == "degraded"
        assert "partial_coverage" not in state
        assert "simulated builder bug" in state["error"]


class TestCorruptionNeverServed:
    """Acceptance (b): corruption is detected, reported, never served."""

    def test_flipped_store_bit_caught_by_audit(self):
        db = SkylineDatabase(POINTS)
        baseline = {
            q: db.query(q, kind="quadrant") for q in QUERIES
        }
        flip_store_bit(db._diagrams["quadrant:0"].store, seed=3)
        outcome = db.audit()
        assert outcome["quadrant:0"].startswith("corrupt")
        health = db.health()
        assert not health["ok"]
        assert "quadrant:0" in health["degraded"]
        assert health["last_audit"]["quadrant:0"].startswith("corrupt")
        # The corrupt diagram was evicted: answers are correct again.
        for query, expected in baseline.items():
            assert db.query(query, kind="quadrant") == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_flip_modes_always_detected(self, seed):
        diagram = quadrant_scanning(POINTS)
        db = SkylineDatabase(POINTS)
        db.query((0.0, 0.0), kind="quadrant")
        flip_store_bit(db._diagrams["quadrant:0"].store, seed=seed)
        assert db._diagrams["quadrant:0"].store != diagram.store
        assert db.audit()["quadrant:0"].startswith("corrupt")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "d.skd"
        save_diagram(quadrant_scanning(POINTS), path)
        truncate_file(path, keep=os.path.getsize(path) - 10)
        with pytest.raises(SerializationError, match="truncated") as info:
            load_diagram(path)
        salvage = info.value.salvage
        assert salvage["payload_bytes"] < salvage["expected_bytes"]

    def test_bit_rotted_file_rejected_by_checksum(self, tmp_path):
        path = tmp_path / "d.skd"
        save_diagram(quadrant_scanning(POINTS), path)
        corrupt_file_byte(path, seed=1)
        with pytest.raises(SerializationError, match="checksum"):
            load_diagram(path)

    def test_failed_save_is_atomic(self, tmp_path):
        path = tmp_path / "d.skd"
        save_diagram(quadrant_scanning(POINTS), path)
        before = path.read_bytes()
        with io_errors_on_save():
            with pytest.raises(OSError):
                save_diagram(quadrant_scanning(POINTS[:3]), path)
        assert path.read_bytes() == before
        assert list(tmp_path.glob("*.tmp")) == []
        assert load_diagram(path).store == quadrant_scanning(POINTS).store


class TestDegradedMatchesScratch:
    """Acceptance (c): degraded answers equal from-scratch evaluation."""

    @pytest.mark.parametrize("kind", ["quadrant", "global", "dynamic", "skyband"])
    def test_budget_starved_answers_match(self, kind):
        k = 2 if kind == "skyband" else 1
        db = SkylineDatabase(POINTS, budget=BuildBudget(max_cells=2))
        for query in QUERIES:
            answer = db.query_annotated(query, kind=kind, k=k)
            assert answer.served_from != "diagram"
            assert answer.result == db.query_from_scratch(query, kind=kind, k=k)

    def test_differential_harness_covers_degraded_tier(self):
        from repro.diagram.verify import differential_verify

        report = differential_verify(seed=2, budget=300, max_points=5)
        assert report.ok
        assert report.by_check.get("degraded", 0) > 0


class TestClockFaults:
    def test_skewed_clock_never_blocks_recovery_forever(self):
        clock = SteppingClock()
        db = SkylineDatabase(
            POINTS, budget=BuildBudget(max_cells=1), clock=clock
        )
        db.query((0.0, 0.0), kind="quadrant")
        clock.skew(-5000.0)  # clock jumps backwards
        assert db.rebuild() == {"quadrant:0": "backoff"}
        assert db.health()["builds"]["quadrant:0"]["retry_in"] >= 0
        clock.advance(10**6)
        db.budget = None
        assert db.rebuild() == {"quadrant:0": "ready"}


class TestChaosHarness:
    def test_chaos_run_is_deterministic(self):
        a = run_chaos(cases=14, seed=5)
        b = run_chaos(cases=14, seed=5)
        assert a.by_scenario == b.by_scenario
        assert a.failures == b.failures

    def test_chaos_smoke_gate(self):
        # The CI smoke target from the issue. Full 200 cases, seed 0.
        assert main(["chaos", "--cases", "200", "--seed", "0"]) == 0

    def test_chaos_reports_summary(self, capsys):
        assert main(["chaos", "--cases", "7", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "chaos [OK]" in out
        assert "cases (seed=1)" in out
