"""Integration tests: the paper's running example, end to end.

A hotel dataset (Fig. 1 style: distance to downtown vs price) exercised
through the full pipeline — all three query semantics, every construction
algorithm, serialization, the query engine and the applications — with the
figures' qualitative facts asserted along the way.
"""

from repro.applications.authentication import (
    AuthenticatedSkylineClient,
    AuthenticatedSkylineServer,
    DiagramSigner,
)
from repro.applications.continuous import continuous_skyline
from repro.applications.pir import PirServer, PrivateSkylineClient, diagram_database
from repro.applications.reverse_skyline import (
    reverse_skyline,
    reverse_skyline_brute,
)
from repro.diagram import (
    dynamic_scanning,
    global_diagram,
    quadrant_baseline,
    quadrant_dsg,
    quadrant_scanning,
    quadrant_sweeping,
)
from repro.index.engine import SkylineDatabase
from repro.index.serialize import diagram_from_json, diagram_to_json
from repro.skyline.queries import dynamic_skyline, global_skyline, quadrant_skyline


class TestHotelScenario:
    def test_skyline_is_the_cheap_or_close_staircase(self, paper_like_hotels):
        from repro.skyline.algorithms import skyline_brute

        sky = skyline_brute(paper_like_hotels)
        # The seven staircase hotels are all on the skyline; the four
        # dominated ones (worse on both axes) are not.
        assert sky == (0, 1, 2, 3, 4, 5, 6)

    def test_query_semantics_nest(self, paper_like_hotels):
        q = (10, 40)
        dynamic = set(dynamic_skyline(paper_like_hotels, q))
        global_ = set(global_skyline(paper_like_hotels, q))
        quadrant = set(quadrant_skyline(paper_like_hotels, q))
        assert dynamic <= global_
        assert quadrant <= global_

    def test_all_algorithms_agree_on_hotels(self, paper_like_hotels):
        reference = quadrant_baseline(paper_like_hotels)
        assert quadrant_dsg(paper_like_hotels) == reference
        assert quadrant_scanning(paper_like_hotels) == reference
        sweep = quadrant_sweeping(paper_like_hotels)
        assert sweep.num_regions == len(reference.polyominos())

    def test_database_round_trip_and_queries(self, paper_like_hotels, tmp_path):
        diagram = quadrant_scanning(paper_like_hotels)
        path = tmp_path / "hotels.json"
        path.write_text(diagram_to_json(diagram))
        restored = diagram_from_json(path.read_text())
        q = (10, 40)
        assert restored.query(q) == quadrant_skyline(paper_like_hotels, q)

    def test_engine_matches_direct_evaluation_everywhere(
        self, paper_like_hotels
    ):
        db = SkylineDatabase(paper_like_hotels)
        for q in [(0, 0), (10, 40), (5, 100), (25, 5), (12, 24)]:
            for kind in ("quadrant", "global", "dynamic"):
                assert db.query(q, kind=kind) == db.query_from_scratch(
                    q, kind=kind
                )


class TestApplicationsPipeline:
    def test_outsourced_authentication(self, paper_like_hotels):
        diagram = quadrant_scanning(paper_like_hotels)
        signer = DiagramSigner(diagram, b"hotel-owner-key")
        server = AuthenticatedSkylineServer(signer)
        client = AuthenticatedSkylineClient(
            diagram.grid.axes, signer.signed_root(), b"hotel-owner-key"
        )
        q = (10, 40)
        assert client.verify(q, server.answer(q)) == diagram.query(q)

    def test_private_queries(self, paper_like_hotels):
        diagram = quadrant_scanning(paper_like_hotels)
        db = diagram_database(diagram)
        client = PrivateSkylineClient(diagram.grid.axes, diagram.grid.shape)
        assert client.query(
            (10, 40), PirServer(db), PirServer(db)
        ) == diagram.query((10, 40))

    def test_reverse_skyline_consistency(self, paper_like_hotels):
        q = (10, 40)
        diagram = global_diagram(paper_like_hotels)
        assert reverse_skyline(
            paper_like_hotels, q, diagram=diagram
        ) == reverse_skyline_brute(paper_like_hotels, q)

    def test_commuter_timeline(self, paper_like_hotels):
        # A commuter moving from downtown outwards watches the dynamic
        # skyline change at bisector crossings only.
        diagram = dynamic_scanning(
            [tuple(p) for p in list(paper_like_hotels)[:5]]
        )
        timeline = continuous_skyline(diagram, (1, 20), (21, 20))
        assert len(timeline) >= 2
        for a, b in zip(timeline, timeline[1:]):
            assert a.t_exit == b.t_enter
            assert a.result != b.result


class TestVoronoiCounterpart:
    """Fig. 2 vs Fig. 3: both structures answer by point location."""

    def test_counterpart_lookup_consistency(self, paper_like_hotels):
        from repro.voronoi.diagram import VoronoiDiagram
        from repro.voronoi.knn import nearest

        pts = [tuple(p) for p in paper_like_hotels]
        voronoi = VoronoiDiagram(pts)
        skyline = quadrant_scanning(pts)
        for q in [(3, 50), (10, 40), (18, 10)]:
            assert voronoi.locate(q) == nearest(pts, q)
            assert skyline.query(q) == quadrant_skyline(pts, q)
