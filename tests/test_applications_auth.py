"""Tests for authenticated outsourced skyline queries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.authentication import (
    AuthenticatedSkylineClient,
    AuthenticatedSkylineServer,
    DiagramSigner,
    MerkleTree,
    VerificationObject,
    _hash_leaf,
)
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import AuthenticationError

from tests.conftest import points_2d

KEY = b"owner-secret"


def _setup(pts):
    diagram = quadrant_scanning(pts)
    signer = DiagramSigner(diagram, KEY)
    server = AuthenticatedSkylineServer(signer)
    client = AuthenticatedSkylineClient(
        diagram.grid.axes, signer.signed_root(), KEY
    )
    return diagram, server, client


class TestMerkleTree:
    def test_single_leaf(self):
        tree = MerkleTree([b"a" * 32])
        assert tree.root == b"a" * 32
        assert tree.path(0) == []

    def test_rejects_empty(self):
        with pytest.raises(AuthenticationError):
            MerkleTree([])

    def test_rejects_bad_index(self):
        with pytest.raises(AuthenticationError):
            MerkleTree([b"x"]).path(5)

    @given(st.integers(1, 17))
    def test_every_leaf_folds_to_root(self, n):
        leaves = [bytes([i]) * 32 for i in range(n)]
        tree = MerkleTree(leaves)
        for i, leaf in enumerate(leaves):
            assert MerkleTree.fold(leaf, tree.path(i)) == tree.root

    def test_different_leaves_different_roots(self):
        assert (
            MerkleTree([b"a", b"b"]).root != MerkleTree([b"a", b"c"]).root
        )


class TestEndToEnd:
    def test_verified_query(self, staircase):
        diagram, server, client = _setup(staircase)
        q = (4, 3)
        vo = server.answer(q)
        assert client.verify(q, vo) == diagram.query(q)

    @given(points_2d(min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_all_cells_verify(self, pts):
        diagram, server, client = _setup(pts)
        for cell in diagram.grid.cells():
            q = diagram.grid.representative(cell)
            assert client.verify(q, server.answer(q)) == diagram.query(q)


class TestTamperDetection:
    def test_tampered_result_rejected(self, staircase):
        _, server, client = _setup(staircase)
        q = (4, 3)
        vo = server.answer(q)
        forged = VerificationObject(
            result=(0,), cells=vo.cells, leaf_index=vo.leaf_index, path=vo.path
        )
        with pytest.raises(AuthenticationError, match="root"):
            client.verify(q, forged)

    def test_wrong_region_rejected(self, staircase):
        diagram, server, client = _setup(staircase)
        vo = server.answer((4, 3))
        with pytest.raises(AuthenticationError, match="outside"):
            client.verify((100, 100), vo)

    def test_tampered_path_rejected(self, staircase):
        _, server, client = _setup(staircase)
        q = (4, 3)
        vo = server.answer(q)
        if not vo.path:
            pytest.skip("degenerate single-polyomino diagram")
        side, digest = vo.path[0]
        forged_path = ((side, b"\x00" * len(digest)), *vo.path[1:])
        forged = VerificationObject(
            result=vo.result,
            cells=vo.cells,
            leaf_index=vo.leaf_index,
            path=forged_path,
        )
        with pytest.raises(AuthenticationError, match="root"):
            client.verify(q, forged)

    def test_wrong_key_rejected(self, staircase):
        diagram, server, _ = _setup(staircase)
        signer = DiagramSigner(diagram, KEY)
        client = AuthenticatedSkylineClient(
            diagram.grid.axes, signer.signed_root(), b"other-key"
        )
        q = (4, 3)
        with pytest.raises(AuthenticationError):
            client.verify(q, server.answer(q))

    def test_stale_diagram_rejected(self, staircase):
        # Root signed over an older diagram; answers from a new one fail.
        old = quadrant_scanning([(1, 1)])
        old_signer = DiagramSigner(old, KEY)
        _, server, _ = _setup(staircase)
        client = AuthenticatedSkylineClient(
            quadrant_scanning(staircase).grid.axes,
            old_signer.signed_root(),
            KEY,
        )
        with pytest.raises(AuthenticationError):
            client.verify((4, 3), server.answer((4, 3)))

    def test_leaf_hash_depends_on_cells_and_result(self):
        from repro.geometry.polyomino import Polyomino

        a = Polyomino(0, (1,), frozenset({(0, 0)}))
        b = Polyomino(0, (2,), frozenset({(0, 0)}))
        c = Polyomino(0, (1,), frozenset({(1, 0)}))
        assert _hash_leaf(a) != _hash_leaf(b)
        assert _hash_leaf(a) != _hash_leaf(c)


class TestDynamicDiagramAuthentication:
    def test_end_to_end_over_dynamic_diagram(self):
        from repro.diagram.dynamic_scanning import dynamic_scanning

        diagram = dynamic_scanning([(0, 0), (10, 10)])
        signer = DiagramSigner(diagram, KEY)
        server = AuthenticatedSkylineServer(signer)
        client = AuthenticatedSkylineClient(
            diagram.subcells.axes, signer.signed_root(), KEY
        )
        for q in [(1, 1), (4, 6), (9, 9)]:
            assert client.verify(q, server.answer(q)) == diagram.query(q)
