"""Stateful property tests: random operation sequences against a model.

Hypothesis drives random insert/delete sequences through the incremental
maintenance API while a shadow point list rebuilt from scratch acts as the
model; any divergence of results, axes, or polyomino structure fails.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.diagram.maintenance import delete_point, insert_point
from repro.diagram.quadrant_scanning import quadrant_scanning

coordinate = st.tuples(st.integers(0, 6), st.integers(0, 6))


class MaintenanceMachine(RuleBasedStateMachine):
    """Insert/delete in any order; the diagram must track a full rebuild."""

    @initialize(first=coordinate)
    def start(self, first):
        self.points = [first]
        self.diagram = quadrant_scanning(self.points)

    @rule(point=coordinate)
    def insert(self, point):
        self.diagram = insert_point(self.diagram, point)
        self.points.append(point)

    @precondition(lambda self: len(self.points) > 1)
    @rule(data=st.data())
    def delete(self, data):
        victim = data.draw(
            st.integers(0, len(self.points) - 1), label="victim"
        )
        self.diagram = delete_point(self.diagram, victim)
        del self.points[victim]

    @invariant()
    def matches_rebuild(self):
        if not hasattr(self, "points"):
            return
        rebuilt = quadrant_scanning(self.points)
        assert self.diagram.grid.axes == rebuilt.grid.axes
        assert dict(self.diagram.cells()) == dict(rebuilt.cells())

    @invariant()
    def audit_passes(self):
        # The self-audit (structural store checks + Theorem 1 recurrence
        # samples) must stay green after every maintenance step.
        if hasattr(self, "diagram"):
            self.diagram.audit()


MaintenanceMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=8, deadline=None
)
TestMaintenanceMachine = MaintenanceMachine.TestCase


class CacheMachine(RuleBasedStateMachine):
    """The polyomino cache must always return what the diagram returns."""

    @initialize(points=st.lists(coordinate, min_size=1, max_size=6))
    def start(self, points):
        from repro.applications.caching import PolyominoCache

        self.diagram = quadrant_scanning(points)
        self.cache = PolyominoCache(
            self.diagram, lambda ids: ("payload", ids), capacity=3
        )

    @rule(query=st.tuples(st.floats(-1, 8), st.floats(-1, 8)))
    def query(self, query):
        payload = self.cache.get(query)
        assert payload == ("payload", self.diagram.query(query))

    @rule()
    def invalidate(self):
        self.cache.invalidate()

    @invariant()
    def capacity_respected(self):
        if hasattr(self, "cache"):
            assert len(self.cache) <= self.cache.capacity


CacheMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
TestCacheMachine = CacheMachine.TestCase


def test_cache_does_not_cache_loader_failures(staircase):
    """Failure injection: a crashing loader must not poison the cache."""
    import pytest

    from repro.applications.caching import PolyominoCache

    attempts = []

    def flaky_loader(ids):
        attempts.append(ids)
        if len(attempts) == 1:
            raise RuntimeError("record store unavailable")
        return list(ids)

    cache = PolyominoCache(quadrant_scanning(staircase), flaky_loader)
    with pytest.raises(RuntimeError):
        cache.get((0, 0))
    assert len(cache) == 0
    # Retry after the store recovers: loads and caches normally.
    assert cache.get((0, 0)) == [0, 1, 2]
    assert len(attempts) == 2
