"""Tests for the k-skyband diagram extension."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.diagram.skyband import skyband_baseline, skyband_sweep
from repro.errors import DimensionalityError
from repro.skyline.queries import quadrant_skyband, quadrant_skyline

from tests.conftest import points_2d


class TestGroundTruth:
    def test_chain_skybands(self):
        pts = [(1, 1), (2, 2), (3, 3)]
        assert quadrant_skyband(pts, (0, 0), 1) == (0,)
        assert quadrant_skyband(pts, (0, 0), 2) == (0, 1)
        assert quadrant_skyband(pts, (0, 0), 3) == (0, 1, 2)

    def test_k1_is_the_skyline(self):
        pts = [(1, 4), (2, 2), (4, 1), (3, 3)]
        assert quadrant_skyband(pts, (0, 0), 1) == quadrant_skyline(
            pts, (0, 0)
        )

    def test_validates_k(self):
        with pytest.raises(ValueError):
            quadrant_skyband([(1, 1)], (0, 0), 0)

    @given(points_2d(max_size=10), st.integers(1, 4))
    def test_monotone_in_k(self, pts, k):
        q = (-1, -1)
        assert set(quadrant_skyband(pts, q, k)) <= set(
            quadrant_skyband(pts, q, k + 1)
        )

    @given(points_2d(max_size=10))
    def test_large_k_returns_all_candidates(self, pts):
        assert quadrant_skyband(pts, (-1, -1), len(pts) + 1) == tuple(
            range(len(pts))
        )


class TestDiagrams:
    def test_baseline_example(self):
        diagram = skyband_baseline([(1, 1), (2, 2), (3, 3)], k=2)
        assert diagram.k == 2
        assert diagram.result_at((0, 0)) == (0, 1)
        assert diagram.result_at((1, 0)) == (1, 2)
        assert diagram.result_at((2, 0)) == (2,)

    def test_k1_matches_quadrant_diagram(self):
        pts = [(1, 4), (2, 2), (4, 1), (3, 3), (2, 2)]
        band = skyband_baseline(pts, k=1)
        quadrant = quadrant_baseline(pts)
        for cell, result in quadrant.cells():
            assert band.result_at(cell) == result

    def test_validation(self):
        with pytest.raises(ValueError):
            skyband_baseline([(1, 1)], k=0)
        with pytest.raises(DimensionalityError):
            skyband_baseline([(1, 1, 1)], k=1)
        with pytest.raises(ValueError):
            skyband_sweep([(1, 1)], k=0)

    @given(points_2d(max_size=10), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_sweep_matches_baseline(self, pts, k):
        assert skyband_sweep(pts, k) == skyband_baseline(pts, k)

    @given(points_2d(max_size=8), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_cells_match_from_scratch(self, pts, k):
        diagram = skyband_sweep(pts, k)
        for cell, result in diagram.cells():
            representative = diagram.grid.representative(cell)
            assert result == quadrant_skyband(pts, representative, k)

    @given(points_2d(max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_band_results_nest_in_k(self, pts):
        d1 = skyband_sweep(pts, 1)
        d2 = skyband_sweep(pts, 2)
        for cell, result in d1.cells():
            assert set(result) <= set(d2.result_at(cell))

    def test_query_and_polyominos(self):
        diagram = skyband_sweep([(1, 1), (2, 2), (3, 3)], k=2)
        assert diagram.query((0, 0)) == (0, 1)
        covered = {c for poly in diagram.polyominos() for c in poly.cells}
        assert covered == set(diagram.grid.cells())

    def test_repr(self):
        assert "k=2" in repr(skyband_sweep([(1, 1)], k=2))
