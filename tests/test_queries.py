"""Unit and property tests for direct skyline query evaluation."""

from hypothesis import given
from hypothesis import strategies as st

from repro.skyline.queries import (
    dynamic_skyline,
    dynamic_skyline_among,
    global_skyline,
    is_skyline_member,
    quadrant_skyline,
)

from tests.conftest import points_2d

queries = st.tuples(
    st.integers(-2, 10) | st.just(3), st.integers(-2, 10) | st.just(3)
)


class TestQuadrantSkyline:
    def test_first_quadrant_filters_candidates(self):
        pts = [(12, 90), (4, 90), (12, 70)]
        assert quadrant_skyline(pts, (10, 80)) == (0,)

    def test_other_quadrants_via_mask(self):
        pts = [(12, 90), (4, 90), (12, 70), (4, 70)]
        assert quadrant_skyline(pts, (10, 80), mask=0b01) == (1,)
        assert quadrant_skyline(pts, (10, 80), mask=0b10) == (2,)
        assert quadrant_skyline(pts, (10, 80), mask=0b11) == (3,)

    def test_dominance_inside_quadrant(self):
        pts = [(11, 81), (12, 82)]
        assert quadrant_skyline(pts, (10, 80)) == (0,)

    def test_boundary_point_included(self):
        assert quadrant_skyline([(10, 85)], (10, 80)) == (0,)

    def test_empty_quadrant(self):
        assert quadrant_skyline([(1, 1)], (10, 80)) == ()

    def test_three_dimensional(self):
        pts = [(1, 1, 1), (2, 2, 2), (1, 2, 3)]
        assert quadrant_skyline(pts, (0, 0, 0)) == (0,)


class TestGlobalSkyline:
    def test_union_of_quadrants(self):
        pts = [(12, 90), (4, 90), (12, 70), (4, 70)]
        assert global_skyline(pts, (10, 80)) == (0, 1, 2, 3)

    def test_global_contains_every_quadrant(self):
        pts = [(1, 9), (9, 1), (5, 5), (2, 2), (8, 8)]
        q = (5.5, 5.5)
        union = set()
        for mask in range(4):
            union.update(quadrant_skyline(pts, q, mask))
        assert set(global_skyline(pts, q)) == union

    @given(points_2d(max_size=10), queries)
    def test_global_is_union_property(self, pts, q):
        union = set()
        for mask in range(4):
            union.update(quadrant_skyline(pts, q, mask))
        assert set(global_skyline(pts, q)) == union


class TestDynamicSkyline:
    def test_paper_style_example(self):
        # A far point in one quadrant is dominated by a mapped nearby point.
        pts = [(9, 9), (12, 12)]
        assert dynamic_skyline(pts, (10, 10)) == (0,)

    def test_subset_of_global(self):
        pts = [(1, 9), (9, 1), (5, 5), (2, 2), (8, 8)]
        q = (5.5, 5.5)
        assert set(dynamic_skyline(pts, q)) <= set(global_skyline(pts, q))

    @given(points_2d(max_size=12), queries)
    def test_dynamic_subset_of_global_property(self, pts, q):
        assert set(dynamic_skyline(pts, q)) <= set(global_skyline(pts, q))

    @given(points_2d(max_size=12))
    def test_origin_query_outside_domain_reduces_to_traditional(self, pts):
        from repro.skyline.algorithms import skyline_brute

        # With the query below/left of every point, mapping is the identity
        # shift, so the dynamic skyline is the traditional skyline.
        assert dynamic_skyline(pts, (-1, -1)) == skyline_brute(pts)

    @given(points_2d(max_size=12), queries)
    def test_membership_matches_result(self, pts, q):
        result = set(dynamic_skyline(pts, q))
        for pid in range(len(pts)):
            assert is_skyline_member(pts, q, pid) == (pid in result)


class TestDynamicSkylineAmong:
    @given(points_2d(min_size=1, max_size=12), queries)
    def test_superset_candidates_recover_exact_result(self, pts, q):
        full = dynamic_skyline(pts, q)
        among = dynamic_skyline_among(pts, list(range(len(pts))), q)
        assert among == full

    def test_restricted_candidates(self):
        pts = [(0, 0), (10, 10), (4, 4)]
        assert dynamic_skyline_among(pts, [0, 2], (1, 1)) == (0,)
