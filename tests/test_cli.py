"""End-to-end tests for the command line interface."""

import pytest

from repro.cli import main
from repro.index.serialize import load_diagram


def _reload(path):
    """The saved diagram (verifying the envelope checksum on load)."""
    return load_diagram(str(path))


@pytest.fixture
def points_csv(tmp_path):
    path = tmp_path / "points.csv"
    path.write_text("# hotel data\n2,8\n5,4\n9,1\n")
    return str(path)


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "data.csv"
        assert main(["generate", str(out), "--n", "25", "--seed", "3"]) == 0
        rows = [r for r in out.read_text().splitlines() if r]
        assert len(rows) == 25
        assert "wrote 25" in capsys.readouterr().out

    def test_distribution_and_domain(self, tmp_path):
        out = tmp_path / "data.csv"
        main(
            [
                "generate",
                str(out),
                "--distribution",
                "anticorrelated",
                "--n",
                "10",
                "--domain",
                "8",
            ]
        )
        values = {
            float(x)
            for row in out.read_text().splitlines()
            for x in row.split(",")
        }
        assert values <= {float(v) for v in range(8)}

    def test_unknown_distribution_fails(self, tmp_path, capsys):
        assert (
            main(
                [
                    "generate",
                    str(tmp_path / "x.csv"),
                    "--distribution",
                    "zipf",
                ]
            )
            == 1
        )
        assert "error:" in capsys.readouterr().err


class TestBuildAndQuery:
    def test_quadrant_pipeline(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "d.json"
        assert main(["build", points_csv, str(diagram)]) == 0
        assert main(["query", str(diagram), "0", "0"]) == 0
        out = capsys.readouterr().out
        assert "skyline ids: [0, 1, 2]" in out

    def test_global_pipeline(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "g.json"
        assert main(["build", points_csv, str(diagram), "--kind", "global"]) == 0
        assert _reload(diagram).kind == "global"

    def test_dynamic_pipeline(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "dyn.json"
        assert (
            main(["build", points_csv, str(diagram), "--kind", "dynamic"]) == 0
        )
        assert main(["query", str(diagram), "4", "3"]) == 0
        assert "skyline ids" in capsys.readouterr().out

    def test_algorithm_selection(self, tmp_path, points_csv):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["build", points_csv, str(a), "--algorithm", "baseline"])
        main(["build", points_csv, str(b), "--algorithm", "scanning"])
        pa, pb = _reload(a), _reload(b)
        assert pa.store == pb.store
        assert pa.algorithm == "baseline"

    def test_unknown_algorithm_fails(self, tmp_path, points_csv, capsys):
        code = main(
            ["build", points_csv, str(tmp_path / "x.json"), "--algorithm", "??"]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file_fails(self, tmp_path, capsys):
        assert main(["build", str(tmp_path / "no.csv"), "x.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRenderAndInfo:
    def test_render_ascii(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "d.json"
        main(["build", points_csv, str(diagram)])
        assert main(["render", str(diagram)]) == 0
        out = capsys.readouterr().out
        assert ": {" in out  # legend lines

    def test_render_svg(self, tmp_path, points_csv):
        diagram = tmp_path / "d.json"
        svg = tmp_path / "d.svg"
        main(["build", points_csv, str(diagram)])
        assert main(["render", str(diagram), "--svg", str(svg)]) == 0
        assert svg.read_text().startswith("<svg")

    def test_info_on_csv(self, points_csv, capsys):
        assert main(["info", points_csv]) == 0
        assert "Dataset(n=3, dim=2)" in capsys.readouterr().out

    def test_info_on_diagram(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "d.json"
        main(["build", points_csv, str(diagram)])
        assert main(["info", str(diagram)]) == 0
        assert "SkylineDiagram" in capsys.readouterr().out


class TestStatsSkybandWhynot:
    def test_stats(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "d.json"
        main(["build", points_csv, str(diagram)])
        assert main(["stats", str(diagram)]) == 0
        out = capsys.readouterr().out
        assert "num_points: 3" in out
        assert "compression_ratio:" in out

    def test_skyband(self, points_csv, capsys):
        assert main(["skyband", points_csv, "2", "0", "0"]) == 0
        assert "2-skyband ids: [0, 1, 2]" in capsys.readouterr().out

    def test_skyband_k1_is_skyline(self, points_csv, capsys):
        assert main(["skyband", points_csv, "1", "0", "0"]) == 0
        assert "[0, 1, 2]" in capsys.readouterr().out

    def test_whynot_missing_point(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "d.json"
        main(["build", points_csv, str(diagram)])
        assert main(["whynot", str(diagram), "0", "7", "3"]) == 0
        assert "move the query" in capsys.readouterr().out

    def test_whynot_present_point(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "d.json"
        main(["build", points_csv, str(diagram)])
        assert main(["whynot", str(diagram), "0", "0", "0"]) == 0
        assert "already in the result" in capsys.readouterr().out

    def test_whynot_bad_id(self, tmp_path, points_csv, capsys):
        diagram = tmp_path / "d.json"
        main(["build", points_csv, str(diagram)])
        assert main(["whynot", str(diagram), "99", "0", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestVerify:
    def test_smoke_run_is_clean(self, capsys):
        # The CI smoke invocation from the issue: 2000 seeded cases must
        # cross-check clean across every algorithm pair and lookup path.
        assert main(["verify", "--seed", "0", "--budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "mismatch" not in out

    def test_reports_mismatch_with_reproducer(self, capsys, monkeypatch):
        from repro.diagram.base import DynamicDiagram

        monkeypatch.setattr(
            DynamicDiagram,
            "query",
            lambda self, q: self._store.result_at(self.subcells.locate(q)),
        )
        assert main(["verify", "--seed", "0", "--budget", "500"]) == 1
        out = capsys.readouterr().out
        assert "points =" in out  # paste-ready reproducer printed


class TestThreeDimensionalBuild:
    def test_build_and_query_3d(self, tmp_path, capsys):
        points = tmp_path / "p3.csv"
        points.write_text("1,1,1\n2,2,2\n")
        diagram = tmp_path / "d3.json"
        assert main(["build", str(points), str(diagram)]) == 0
        assert main(["query", str(diagram), "0", "0", "0"]) == 0
        assert "skyline ids: [0]" in capsys.readouterr().out

    def test_global_3d(self, tmp_path, capsys):
        points = tmp_path / "p3.csv"
        points.write_text("1,1,1\n2,2,2\n")
        diagram = tmp_path / "g3.json"
        assert (
            main(["build", str(points), str(diagram), "--kind", "global"])
            == 0
        )
        assert main(["query", str(diagram), "1.5", "1.5", "1.5"]) == 0
        assert "skyline ids: [0, 1]" in capsys.readouterr().out
