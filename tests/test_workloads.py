"""Tests for the query workload generators."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.workloads import (
    clustered_queries,
    trajectory_queries,
    uniform_queries,
    workload,
)
from repro.errors import DatasetError

BOX = (0.0, 0.0, 10.0, 10.0)


class TestUniform:
    def test_shape_and_bounds(self):
        qs = uniform_queries(50, BOX, seed=2)
        assert len(qs) == 50
        assert all(0 <= x <= 10 and 0 <= y <= 10 for x, y in qs)

    def test_deterministic(self):
        assert uniform_queries(10, BOX, seed=3) == uniform_queries(
            10, BOX, seed=3
        )

    def test_validation(self):
        with pytest.raises(DatasetError):
            uniform_queries(0, BOX)
        with pytest.raises(DatasetError):
            uniform_queries(5, (1, 1, 1, 1))

    @given(st.integers(1, 100), st.integers(0, 9))
    def test_count_property(self, n, seed):
        assert len(uniform_queries(n, BOX, seed=seed)) == n


class TestClustered:
    def test_bounds_respected(self):
        qs = clustered_queries(200, BOX, seed=4)
        assert all(0 <= x <= 10 and 0 <= y <= 10 for x, y in qs)

    def test_more_concentrated_than_uniform(self):
        import numpy as np

        clustered = clustered_queries(500, BOX, seed=5, hotspots=2)
        uniform = uniform_queries(500, BOX, seed=5)

        def spread(qs):
            arr = np.array(qs)
            return float(arr.std(axis=0).sum())

        assert spread(clustered) < spread(uniform)

    def test_validation(self):
        with pytest.raises(DatasetError):
            clustered_queries(0, BOX)
        with pytest.raises(DatasetError):
            clustered_queries(5, BOX, hotspots=0)


class TestTrajectory:
    def test_endpoints_included(self):
        qs = trajectory_queries((0, 0), (4, 2), 3)
        assert qs == [(0.0, 0.0), (2.0, 1.0), (4.0, 2.0)]

    def test_step_count(self):
        assert len(trajectory_queries((0, 0), (1, 1), 17)) == 17

    def test_validation(self):
        with pytest.raises(DatasetError):
            trajectory_queries((0, 0), (1, 1), 1)

    @given(st.integers(2, 30))
    def test_evenly_spaced(self, steps):
        qs = trajectory_queries((0, 0), (10, 0), steps)
        gaps = {round(b[0] - a[0], 9) for a, b in zip(qs, qs[1:])}
        assert len(gaps) == 1


class TestDispatch:
    def test_known_kinds(self):
        assert len(workload("uniform", 5, BOX)) == 5
        assert len(workload("clustered", 5, BOX)) == 5

    def test_unknown_kind(self):
        with pytest.raises(DatasetError, match="unknown workload"):
            workload("adversarial", 5, BOX)
