"""Unit and property tests for the classic skyline algorithms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.point import Dataset
from repro.skyline.algorithms import (
    skyline,
    skyline_bnl,
    skyline_brute,
    skyline_dnc,
    skyline_sort_2d,
)

from tests.conftest import points_2d, points_nd


class TestBrute:
    def test_staircase_all_skyline(self, staircase):
        assert skyline_brute(staircase) == (0, 1, 2)

    def test_dominated_point_excluded(self):
        assert skyline_brute([(1, 1), (2, 2)]) == (0,)

    def test_duplicates_both_kept(self):
        assert skyline_brute([(1, 1), (1, 1), (2, 2)]) == (0, 1)

    def test_empty(self):
        assert skyline_brute([]) == ()

    def test_accepts_dataset(self):
        assert skyline_brute(Dataset([(1, 1), (2, 2)])) == (0,)

    def test_three_dimensional(self):
        pts = [(1, 2, 3), (3, 2, 1), (2, 2, 2), (3, 3, 3)]
        assert skyline_brute(pts) == (0, 1, 2)


class TestSort2D:
    def test_matches_brute_on_example(self, staircase):
        assert skyline_sort_2d(staircase) == skyline_brute(staircase)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            skyline_sort_2d([(1, 2, 3)])

    def test_vertical_tie_keeps_lowest(self):
        assert skyline_sort_2d([(1, 5), (1, 3)]) == (1,)

    def test_horizontal_tie_keeps_leftmost(self):
        assert skyline_sort_2d([(5, 1), (3, 1)]) == (1,)

    def test_duplicates_of_corner_kept(self):
        assert skyline_sort_2d([(2, 2), (2, 2), (1, 3)]) == (0, 1, 2)

    @given(points_2d(max_size=20))
    def test_matches_brute(self, pts):
        assert skyline_sort_2d(pts) == skyline_brute(pts)


class TestDnc:
    @given(points_2d(max_size=20))
    def test_matches_brute_2d(self, pts):
        assert skyline_dnc(pts) == skyline_brute(pts)

    @given(points_nd(3, max_size=16))
    def test_matches_brute_3d(self, pts):
        assert skyline_dnc(pts) == skyline_brute(pts)

    @given(points_nd(4, max_size=12))
    def test_matches_brute_4d(self, pts):
        assert skyline_dnc(pts) == skyline_brute(pts)

    def test_large_recursion(self):
        pts = [(i, 100 - i) for i in range(100)]
        assert skyline_dnc(pts) == tuple(range(100))


class TestBnl:
    @given(points_2d(max_size=20))
    def test_matches_brute(self, pts):
        assert skyline_bnl(pts) == skyline_brute(pts)

    @given(points_nd(3, max_size=14))
    def test_matches_brute_3d(self, pts):
        assert skyline_bnl(pts) == skyline_brute(pts)

    @given(points_2d(max_size=20), st.integers(1, 5))
    def test_bounded_window_matches_brute(self, pts, window):
        assert skyline_bnl(pts, window_size=window) == skyline_brute(pts)

    def test_window_of_one_on_chain(self):
        pts = [(3, 3), (2, 2), (1, 1)]
        assert skyline_bnl(pts, window_size=1) == (2,)


class TestDispatcher:
    def test_empty(self):
        assert skyline([]) == ()

    def test_2d_uses_sort(self, staircase):
        assert skyline(staircase) == (0, 1, 2)

    def test_3d_uses_dnc(self):
        pts = [(1, 2, 3), (2, 3, 1), (3, 1, 2), (4, 4, 4)]
        assert skyline(pts) == (0, 1, 2)

    @given(points_nd(3, max_size=12))
    def test_always_matches_brute(self, pts):
        assert skyline(pts) == skyline_brute(pts)


class TestSkylineInvariants:
    @given(points_2d(min_size=1, max_size=15))
    def test_skyline_points_are_mutually_incomparable(self, pts):
        from repro.geometry.dominance import dominates

        sky = skyline_brute(pts)
        for a in sky:
            for b in sky:
                assert not dominates(pts[a], pts[b]) or pts[a] == pts[b]

    @given(points_2d(min_size=1, max_size=15))
    def test_nonskyline_points_have_a_skyline_dominator(self, pts):
        from repro.geometry.dominance import dominates

        sky = set(skyline_brute(pts))
        for i, p in enumerate(pts):
            if i not in sky:
                assert any(dominates(pts[s], p) for s in sky)

    @given(points_2d(min_size=1, max_size=15))
    def test_skyline_nonempty_for_nonempty_input(self, pts):
        assert skyline_brute(pts)


class TestSfs:
    def test_example(self, staircase):
        from repro.skyline.algorithms import skyline_sfs

        assert skyline_sfs(staircase) == (0, 1, 2)

    def test_window_never_needs_eviction(self):
        # A chain sorted by sum never admits a dominated point.
        from repro.skyline.algorithms import skyline_sfs

        assert skyline_sfs([(3, 3), (2, 2), (1, 1)]) == (2,)

    @given(points_2d(max_size=20))
    def test_matches_brute(self, pts):
        from repro.skyline.algorithms import skyline_sfs

        assert skyline_sfs(pts) == skyline_brute(pts)

    @given(points_nd(3, max_size=14))
    def test_matches_brute_3d(self, pts):
        from repro.skyline.algorithms import skyline_sfs

        assert skyline_sfs(pts) == skyline_brute(pts)

    def test_duplicates_kept(self):
        from repro.skyline.algorithms import skyline_sfs

        assert skyline_sfs([(1, 1), (1, 1)]) == (0, 1)
