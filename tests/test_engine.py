"""Tests for the SkylineDatabase query engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.index.engine import SkylineDatabase
from repro.skyline.queries import dynamic_skyline, global_skyline, quadrant_skyline

from tests.conftest import points_2d


class TestConstruction:
    def test_lazy_by_default(self, staircase):
        db = SkylineDatabase(staircase)
        assert db._global is None
        assert db._dynamic is None

    def test_precompute(self, staircase):
        db = SkylineDatabase(staircase, precompute=["global", "dynamic"])
        assert db._global is not None
        assert db._dynamic is not None

    def test_precompute_validates_kind(self, staircase):
        with pytest.raises(QueryError):
            SkylineDatabase(staircase, precompute=["bogus"])

    def test_diagrams_are_cached(self, staircase):
        db = SkylineDatabase(staircase)
        assert db.global_diagram() is db.global_diagram()
        assert db.dynamic_diagram() is db.dynamic_diagram()
        assert db.quadrant_diagram(2) is db.quadrant_diagram(2)

    def test_repr(self, staircase):
        assert "n=3" in repr(SkylineDatabase(staircase))


class TestQueries:
    def test_kind_dispatch(self, staircase):
        db = SkylineDatabase(staircase)
        q = (4, 3)
        assert db.query(q, kind="quadrant") == quadrant_skyline(staircase, q)
        assert db.query(q, kind="global") == global_skyline(staircase, q)
        assert db.query(q, kind="dynamic") == dynamic_skyline(staircase, q)

    def test_quadrant_masks(self, staircase):
        db = SkylineDatabase(staircase)
        q = (4, 3)
        for mask in range(4):
            assert db.query(q, kind="quadrant", mask=mask) == quadrant_skyline(
                staircase, q, mask
            )

    def test_unknown_kind(self, staircase):
        db = SkylineDatabase(staircase)
        with pytest.raises(QueryError):
            db.query((1, 1), kind="bogus")
        with pytest.raises(QueryError):
            db.query_from_scratch((1, 1), kind="bogus")

    def test_query_many(self, staircase):
        db = SkylineDatabase(staircase)
        queries = [(0, 0), (4, 3), (100, 100)]
        assert db.query_many(queries, kind="quadrant") == [
            db.query(q, kind="quadrant") for q in queries
        ]

    def test_query_many_forwards_mask(self, staircase):
        # Regression: the mask used to be silently dropped, answering
        # reflected-quadrant batches with the first-quadrant diagram.
        db = SkylineDatabase(staircase)
        queries = [(4, 3), (6, 6), (100, 100)]
        for mask in range(4):
            assert db.query_many(queries, kind="quadrant", mask=mask) == [
                db.query(q, kind="quadrant", mask=mask) for q in queries
            ]

    def test_rejects_nan_queries(self, staircase):
        db = SkylineDatabase(staircase)
        nan = float("nan")
        for kind in ("quadrant", "global", "dynamic"):
            with pytest.raises(QueryError, match="NaN"):
                db.query((nan, 1.0), kind=kind)
            with pytest.raises(QueryError, match="NaN"):
                db.query_batch([(1.0, 1.0), (1.0, nan)], kind=kind)

    @given(
        points_2d(max_size=8),
        st.tuples(st.floats(-1, 9), st.floats(-1, 9)),
    )
    @settings(max_examples=30, deadline=None)
    def test_lookup_equals_from_scratch_for_quadrant(self, pts, q):
        db = SkylineDatabase(pts)
        assert db.query(q, kind="quadrant") == db.query_from_scratch(
            q, kind="quadrant"
        )

    @given(
        points_2d(max_size=6),
        st.tuples(st.floats(-1, 9), st.floats(-1, 9)),
    )
    @settings(max_examples=20, deadline=None)
    def test_exact_lookup_equals_from_scratch_for_dynamic(self, pts, q):
        db = SkylineDatabase(pts)
        assert db.query(q, kind="dynamic") == db.query_from_scratch(
            q, kind="dynamic"
        )


class TestBoundaryExactness:
    def test_query_on_bisector_keeps_both_tied_points(self):
        # Query exactly on the bisector of 0 and 10: mapped coordinates tie,
        # so both points are undominated under Definition 2 — and the plain
        # lookup path now resolves this without recomputation.
        db = SkylineDatabase([(0, 0), (10, 10)])
        assert db.query((5, 5), kind="dynamic") == (0, 1)

    def test_query_exact_alias_is_gone(self):
        # Removed after two releases as a deprecated no-op alias: query()
        # has been boundary-exact since the kernel owns tie resolution.
        db = SkylineDatabase([(0, 0), (10, 10)])
        assert not hasattr(db, "query_exact")

    def test_reflected_quadrant_on_grid_line(self):
        # Query on the grid line x=5: for mask 1 (negative x side) the
        # candidates are p[0] <= 5, so point 1 at x=5 must be included —
        # the upper cell owns the boundary on reflected axes.
        pts = [(2, 8), (5, 4), (9, 1)]
        db = SkylineDatabase(pts)
        for mask in range(4):
            q = (5.0, 4.0)
            assert db.query(q, kind="quadrant", mask=mask) == (
                db.query_from_scratch(q, kind="quadrant", mask=mask)
            )

    def test_global_on_grid_vertex(self):
        db = SkylineDatabase([(2, 8), (5, 4), (9, 1)])
        for q in [(5.0, 4.0), (2.0, 1.0), (9.0, 8.0), (5.0, 8.0)]:
            assert db.query(q, kind="global") == db.query_from_scratch(
                q, kind="global"
            )

    def test_edge_ownership_is_exposed(self):
        db = SkylineDatabase([(2, 8), (5, 4)])
        assert db.quadrant_diagram(0).edge_ownership == ("lower", "lower")
        assert db.quadrant_diagram(1).edge_ownership == ("upper", "lower")
        assert db.quadrant_diagram(3).edge_ownership == ("upper", "upper")
        assert db.global_diagram().edge_ownership == ("mixed", "mixed")
        assert db.dynamic_diagram().edge_ownership == ("mixed", "mixed")


class TestHigherDimensions:
    def test_quadrant_and_global_in_3d(self):
        pts = [(1, 1, 1), (2, 2, 2), (1, 3, 2)]
        db = SkylineDatabase(pts)
        q = (0, 0, 0)
        assert db.query(q, kind="quadrant") == quadrant_skyline(pts, q)
        assert db.query(q, kind="global") == global_skyline(pts, q)

    def test_3d_masks(self):
        pts = [(1, 1, 1), (5, 5, 5)]
        db = SkylineDatabase(pts)
        q = (3, 3, 3)
        for mask in range(8):
            assert db.query(q, kind="quadrant", mask=mask) == quadrant_skyline(
                pts, q, mask
            )

    def test_dynamic_rejects_3d(self):
        from repro.errors import DimensionalityError

        db = SkylineDatabase([(1, 1, 1)])
        with pytest.raises(DimensionalityError):
            db.query((0, 0, 0), kind="dynamic")


class TestSkybandQueries:
    def test_skyband_k1_matches_quadrant(self, staircase):
        db = SkylineDatabase(staircase)
        q = (0, 0)
        assert db.skyband(q, 1) == db.query(q, kind="quadrant")

    def test_skyband_query_kind(self, staircase):
        db = SkylineDatabase(staircase)
        q = (0, 0)
        assert db.query(q, kind="skyband", k=2) == db.skyband(q, 2)
        assert db.query_from_scratch(q, kind="skyband", k=2) == db.skyband(
            q, 2
        )
        assert db.query_batch([q, (4, 3)], kind="skyband", k=2) == [
            db.skyband(q, 2),
            db.skyband((4, 3), 2),
        ]

    def test_skyband_boundary_queries_are_exact(self, staircase):
        # The lower-side closed edge matches non-strict candidate semantics
        # for dominator counting too: on-line queries agree with scratch.
        db = SkylineDatabase(staircase)
        for q in [(2.0, 8.0), (5.0, 4.0), (5.0, 1.0), (9.0, 8.0)]:
            for k in (1, 2, 3):
                assert db.skyband(q, k) == db.query_from_scratch(
                    q, kind="skyband", k=k
                )

    def test_skyband_grows_with_k(self):
        db = SkylineDatabase([(1, 1), (2, 2), (3, 3)])
        assert db.skyband((0, 0), 2) == (0, 1)
        assert db.skyband((0, 0), 3) == (0, 1, 2)

    def test_skyband_diagrams_cached_per_k(self, staircase):
        db = SkylineDatabase(staircase)
        assert db.skyband_diagram(2) is db.skyband_diagram(2)
        assert db.skyband_diagram(1) is not db.skyband_diagram(2)

    def test_skyband_rejects_3d(self):
        from repro.errors import DimensionalityError

        db = SkylineDatabase([(1, 1, 1)])
        with pytest.raises(DimensionalityError):
            db.skyband((0, 0, 0), 2)


class TestLazyTableThroughEngine:
    """stats/health/audit must not force a vectorized store (ISSUE PR 7)."""

    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0), (5.0, 4.0)]

    def _vectorized_db(self):
        from repro.diagram.pipeline import BuildOptions

        return SkylineDatabase(
            self.POINTS, build_options=BuildOptions(executor="vectorized")
        )

    def test_attach_and_audit_leave_table_lazy(self):
        from repro.diagram.store import ConsForestTable

        db = self._vectorized_db()
        db.query((0.0, 0.0), kind="quadrant")  # builds and attaches
        assert db.audit()["quadrant:0"] == "ok"
        assert type(
            db._diagrams["quadrant:0"].store._table
        ) is ConsForestTable

    def test_health_leaves_table_lazy(self):
        from repro.diagram.store import ConsForestTable

        db = self._vectorized_db()
        db.query((0.0, 0.0), kind="quadrant")
        assert db.health()["ok"]
        assert type(
            db._diagrams["quadrant:0"].store._table
        ) is ConsForestTable


class TestRefreshSwap:
    """rebuild(refresh=True) generation swaps (ISSUE PR 7)."""

    POINTS = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0)]

    def test_refresh_swaps_in_an_equivalent_diagram(self):
        db = SkylineDatabase(self.POINTS)
        before = db.query((0.0, 0.0), kind="quadrant")
        old = db._diagrams["quadrant:0"]
        assert db.rebuild(refresh=True) == {"quadrant:0": "refreshed"}
        new = db._diagrams["quadrant:0"]
        assert new is not old  # a genuinely fresh generation
        assert new.store == old.store
        assert db.query((0.0, 0.0), kind="quadrant") == before
        assert db.health()["ok"]

    def test_refresh_covers_every_ready_key(self):
        db = SkylineDatabase(self.POINTS)
        db.query((0.0, 0.0), kind="quadrant")
        db.query((0.0, 0.0), kind="dynamic")
        outcome = db.rebuild(refresh=True)
        assert outcome == {
            "quadrant:0": "refreshed",
            "dynamic": "refreshed",
        }

    def test_failed_refresh_keeps_the_old_generation(self):
        from repro.resilience import BuildBudget

        db = SkylineDatabase(self.POINTS)
        before = db.query((0.0, 0.0), kind="quadrant")
        old = db._diagrams["quadrant:0"]
        # Choke the replacement build: the refresh must fail *aside*,
        # leaving the attached generation serving untouched.
        db.budget = BuildBudget(max_cells=1)
        assert db.rebuild(refresh=True) == {"quadrant:0": "kept"}
        assert db._diagrams["quadrant:0"] is old
        assert db.query((0.0, 0.0), kind="quadrant") == before
        health = db.health()
        assert "refresh withheld" in (
            health["builds"]["quadrant:0"].get("error") or ""
        )
