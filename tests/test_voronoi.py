"""Tests for the Voronoi/kNN substrate."""

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DimensionalityError
from repro.voronoi.diagram import VoronoiDiagram, voronoi_cell
from repro.voronoi.knn import k_nearest, nearest


class TestKnn:
    def test_nearest(self):
        assert nearest([(0, 0), (10, 10)], (2, 2)) == 0
        assert nearest([(0, 0), (10, 10)], (8, 8)) == 1

    def test_tie_prefers_lower_id(self):
        assert nearest([(0, 0), (10, 0)], (5, 0)) == 0

    def test_k_nearest_order(self):
        assert k_nearest([(0, 0), (1, 1), (9, 9)], (0, 0), 2) == (0, 1)

    def test_k_nearest_validates_k(self):
        with pytest.raises(ValueError):
            k_nearest([(0, 0)], (1, 1), 2)
        with pytest.raises(ValueError):
            k_nearest([(0, 0)], (1, 1), 0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            min_size=1,
            max_size=10,
        ),
        st.tuples(st.integers(0, 20), st.integers(0, 20)),
    )
    def test_nearest_is_k1(self, pts, q):
        assert k_nearest(pts, q, 1) == (nearest(pts, q),)


class TestVoronoiCell:
    def test_half_plane_split(self):
        cell = voronoi_cell([(0, 0), (10, 0)], 0, (0, 0, 10, 10))
        assert sorted(cell) == [
            (0.0, 0.0),
            (0.0, 10.0),
            (5.0, 0.0),
            (5.0, 10.0),
        ]

    def test_duplicate_sites_keep_full_box(self):
        cell = voronoi_cell([(5, 5), (5, 5)], 0, (0, 0, 10, 10))
        assert len(cell) == 4

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionalityError):
            voronoi_cell([(1, 2, 3)], 0, (0, 0, 1, 1))


class TestVoronoiDiagram:
    def test_cell_contains_its_site(self):
        pts = [(2, 2), (8, 2), (5, 8)]
        diagram = VoronoiDiagram(pts, bbox=(0, 0, 10, 10))
        for site, cell in enumerate(diagram.cells):
            xs = [v[0] for v in cell]
            ys = [v[1] for v in cell]
            assert min(xs) - 1e-9 <= pts[site][0] <= max(xs) + 1e-9
            assert min(ys) - 1e-9 <= pts[site][1] <= max(ys) + 1e-9

    def test_areas_tile_the_box(self):
        pts = [(2, 2), (8, 2), (5, 8), (1, 9)]
        diagram = VoronoiDiagram(pts, bbox=(0, 0, 10, 10))
        assert math.isclose(
            sum(diagram.cell_area(s) for s in range(len(pts))),
            100.0,
            rel_tol=1e-9,
        )

    def test_sampled_points_agree_with_locate(self):
        rng = random.Random(5)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(8)]
        diagram = VoronoiDiagram(pts, bbox=(0, 0, 10, 10))

        def inside(polygon, q):
            # Convex polygon CCW: q left of every edge.
            m = len(polygon)
            for k in range(m):
                x0, y0 = polygon[k]
                x1, y1 = polygon[(k + 1) % m]
                if (x1 - x0) * (q[1] - y0) - (y1 - y0) * (q[0] - x0) < -1e-7:
                    return False
            return True

        for _ in range(100):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            site = diagram.locate(q)
            assert inside(diagram.cells[site], q)

    def test_default_bbox_covers_sites(self):
        diagram = VoronoiDiagram([(0, 0), (4, 6)])
        x0, y0, x1, y1 = diagram.bbox
        assert x0 < 0 < 4 < x1
        assert y0 < 0 < 6 < y1

    def test_rejects_non_2d(self):
        with pytest.raises(DimensionalityError):
            VoronoiDiagram([(1, 2, 3)])

    def test_repr(self):
        assert "n=2" in repr(VoronoiDiagram([(0, 0), (1, 1)]))

    def test_degenerate_duplicate_site_has_zero_area(self):
        diagram = VoronoiDiagram([(5, 5), (5, 5)], bbox=(0, 0, 10, 10))
        # Duplicates share the plane; each keeps the whole box in this
        # implementation (neither bisector excludes the other).
        assert diagram.cell_area(0) == 100.0


class TestAnalogy:
    """The paper's framing: Voronoi is to kNN what the diagram is to skyline."""

    def test_same_cell_same_nearest_neighbour(self):
        rng = random.Random(9)
        pts = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(6)]
        diagram = VoronoiDiagram(pts, bbox=(0, 0, 10, 10))
        for _ in range(50):
            q = (rng.uniform(0, 10), rng.uniform(0, 10))
            assert diagram.locate(q) == nearest(pts, q)
