"""Confidence at scale: moderate-n runs of the fast constructions.

The hypothesis suites exercise tiny adversarial inputs; these tests run
the production-path algorithms at a few hundred points so size-dependent
code paths (interning, the sweep walk over thousands of vertices, the
dynamic contributor machinery on a dense bisector grid) see realistic
structure at least once per test run.
"""

import random

from repro.datasets.generators import generate
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.dynamic_subset import dynamic_subset
from repro.diagram.merge import partition_signature
from repro.diagram.quadrant_dsg import quadrant_dsg
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.quadrant_sweeping import quadrant_sweeping
from repro.skyline.queries import dynamic_skyline, quadrant_skyline


class TestQuadrantAtScale:
    def test_scanning_equals_dsg_at_n300(self):
        points = generate("independent", 300, seed=300)
        assert quadrant_scanning(points) == quadrant_dsg(points)

    def test_sweeping_partition_matches_at_n200(self):
        points = generate("anticorrelated", 200, seed=4)
        sweep = quadrant_sweeping(points)
        merged = partition_signature(quadrant_scanning(points).polyominos())
        from collections import defaultdict

        groups = defaultdict(set)
        for cell, owner in sweep.cell_partition().items():
            groups[owner].add(cell)
        assert frozenset(map(frozenset, groups.values())) == merged

    def test_sampled_queries_match_ground_truth_at_n512(self):
        points = generate("independent", 512, seed=512)
        diagram = quadrant_scanning(points)
        rng = random.Random(1)
        for _ in range(100):
            q = (rng.random(), rng.random())
            assert diagram.query(q) == quadrant_skyline(points, q)

    def test_interning_produces_shared_results_at_scale(self):
        points = generate("correlated", 300, seed=9)
        diagram = quadrant_scanning(points)
        by_value: dict[tuple[int, ...], int] = {}
        extra_instances = 0
        for _, result in diagram.cells():
            prior = by_value.setdefault(result, id(result))
            if prior != id(result):
                extra_instances += 1
        # Corner-cell tuples are not interned; everything else must share.
        assert extra_instances <= len(points)


class TestDynamicAtScale:
    def test_scanning_equals_subset_at_n40(self):
        points = generate("independent", 40, seed=40, domain=48)
        assert dynamic_scanning(points) == dynamic_subset(points)

    def test_sampled_dynamic_queries_match_ground_truth(self):
        points = generate("clustered", 32, seed=5, domain=64)
        diagram = dynamic_scanning(points)
        rng = random.Random(2)
        for _ in range(100):
            q = (rng.uniform(-1, 65), rng.uniform(-1, 65))
            assert diagram.query(q) == dynamic_skyline(points, q)

    def test_on_axis_dynamic_queries_match_ground_truth(self):
        # Queries planted exactly on bisector/point lines: the lookup
        # path resolves ties via boundary contributors, so it must agree
        # with direct evaluation even on measure-zero boundaries.
        points = generate("clustered", 32, seed=5, domain=64)
        diagram = dynamic_scanning(points)
        rng = random.Random(3)
        xs, ys = diagram.subcells.axes
        for _ in range(100):
            q = (rng.choice(xs), rng.choice(ys))
            assert diagram.query(q) == dynamic_skyline(points, q)
