"""The serving stack: snapshots, worker pool, batcher, TCP server.

The contract under test (ISSUE PR 7): many worker processes answer
query batches from one mmapped snapshot; a snapshot swap is atomic per
batch (every answer matches exactly one published generation, never a
mix); a killed worker costs retries, not wrong answers; and the asyncio
front-end coalesces concurrent singles into batches.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.errors import SerializationError, ServeError
from repro.index.serialize import save_diagram
from repro.serve.batcher import QueryBatcher
from repro.serve.pool import SnapshotWorkerPool
from repro.serve.server import SkylineServer
from repro.serve.snapshot import SnapshotManager

POINTS_A = [(2.0, 8.0), (5.0, 4.0), (9.0, 1.0), (5.0, 4.0)]
POINTS_B = [(1.0, 7.0), (3.0, 3.0), (8.0, 2.0)]
QUERIES = [(0.0, 0.0), (6.0, 5.0), (9.5, 9.5), (4.0, 0.5)]


def _snapshot(tmp_path, points, name="snapshot.bin"):
    diagram = quadrant_scanning(points)
    path = tmp_path / name
    save_diagram(diagram, str(path))
    return diagram, str(path)


def _expected(diagram):
    return [tuple(r) for r in diagram.query_batch(QUERIES)]


# ----------------------------------------------------------------------
# SnapshotManager
# ----------------------------------------------------------------------
class TestSnapshotManager:
    def test_load_publishes_a_generation(self, tmp_path):
        diagram, path = _snapshot(tmp_path, POINTS_A)
        manager = SnapshotManager(path)
        snapshot = manager.load()
        assert snapshot.diagram == diagram
        assert len(snapshot.generation) == 64  # sha256 hex
        assert manager.current is snapshot
        assert manager.stats()["swaps"] == 1

    def test_refresh_is_a_noop_on_unchanged_file(self, tmp_path):
        _, path = _snapshot(tmp_path, POINTS_A)
        manager = SnapshotManager(path)
        first = manager.load()
        assert manager.refresh() is first
        assert manager.stats()["swaps"] == 1

    def test_refresh_swaps_on_replacement(self, tmp_path):
        _, path = _snapshot(tmp_path, POINTS_A)
        manager = SnapshotManager(path)
        generation_a = manager.load().generation
        diagram_b = quadrant_scanning(POINTS_B)
        save_diagram(diagram_b, path)
        snapshot = manager.refresh()
        assert snapshot.generation != generation_a
        assert snapshot.diagram == diagram_b
        assert manager.stats()["swaps"] == 2

    def test_corrupt_replacement_keeps_old_generation(self, tmp_path):
        from repro.testing.faults import corrupt_file_byte

        _, path = _snapshot(tmp_path, POINTS_A)
        manager = SnapshotManager(path)
        first = manager.load()
        corrupt_file_byte(path, seed=7)
        assert manager.refresh() is first
        stats = manager.stats()
        assert stats["rejected"] == 1
        assert "checksum" in stats["last_error"]
        # A good file published afterwards swaps in and clears the error.
        save_diagram(quadrant_scanning(POINTS_B), path)
        assert manager.refresh() is not first
        assert manager.stats()["last_error"] is None

    def test_vanished_file_keeps_old_generation(self, tmp_path):
        import os

        _, path = _snapshot(tmp_path, POINTS_A)
        manager = SnapshotManager(path)
        first = manager.load()
        os.unlink(path)
        assert manager.refresh() is first
        assert manager.stats()["rejected"] == 1

    def test_first_load_failure_propagates(self, tmp_path):
        manager = SnapshotManager(str(tmp_path / "absent.bin"))
        with pytest.raises(SerializationError):
            manager.refresh()


# ----------------------------------------------------------------------
# SnapshotWorkerPool
# ----------------------------------------------------------------------
class TestWorkerPool:
    def test_batch_matches_direct_evaluation(self, tmp_path):
        diagram, path = _snapshot(tmp_path, POINTS_A)
        with SnapshotWorkerPool(path, workers=2) as pool:
            answers, generation = pool.query_batch(QUERIES)
            assert answers == _expected(diagram)
            assert len(generation) == 64

    def test_rejects_unloadable_snapshot_at_construction(self, tmp_path):
        with pytest.raises(SerializationError):
            SnapshotWorkerPool(str(tmp_path / "absent.bin"), workers=1)

    def test_killed_worker_never_costs_an_answer(self, tmp_path):
        diagram, path = _snapshot(tmp_path, POINTS_A)
        expected = _expected(diagram)
        with SnapshotWorkerPool(path, workers=2) as pool:
            _, generation = pool.query_batch(QUERIES)
            pool._procs[0].kill()
            pool._procs[0].join(5.0)
            for _ in range(3):
                answers, tag = pool.query_batch(QUERIES, timeout=30.0)
                assert answers == expected
                assert tag == generation
            pool.ensure_alive()
            assert pool.stats()["alive"] == 2

    def test_closed_pool_raises(self, tmp_path):
        _, path = _snapshot(tmp_path, POINTS_A)
        pool = SnapshotWorkerPool(path, workers=1)
        pool.close()
        with pytest.raises(ServeError, match="closed"):
            pool.query_batch(QUERIES)

    def test_no_mixed_generation_during_concurrent_swap(self, tmp_path):
        """Queries racing a snapshot swap see one generation per batch.

        Threads hammer the pool while the main thread republishes the
        snapshot; every (answers, generation) pair must match exactly
        one of the two published generations — any cross-pairing means
        a worker answered from a half-swapped store.
        """
        diagram_a, path = _snapshot(tmp_path, POINTS_A)
        diagram_b = quadrant_scanning(POINTS_B)
        expected = {}
        observed = []
        failures = []
        stop = threading.Event()

        with SnapshotWorkerPool(path, workers=2) as pool:
            _, generation_a = pool.query_batch(QUERIES)
            expected[generation_a] = _expected(diagram_a)

            def hammer():
                while not stop.is_set():
                    try:
                        observed.append(pool.query_batch(QUERIES))
                    except Exception as exc:  # pragma: no cover
                        failures.append(exc)
                        return

            threads = [threading.Thread(target=hammer) for _ in range(3)]
            for thread in threads:
                thread.start()
            save_diagram(diagram_b, path)
            # Wait until every worker has swapped to B.
            deadline = 100
            generation_b = None
            while deadline and generation_b is None:
                _, tag = pool.query_batch(QUERIES)
                if tag != generation_a:
                    generation_b = tag
                deadline -= 1
            stop.set()
            for thread in threads:
                thread.join(10.0)
            assert not failures, failures
            assert generation_b is not None, "swap never propagated"
            expected[generation_b] = _expected(diagram_b)
            for answers, tag in observed:
                assert tag in expected, f"unknown generation {tag}"
                assert answers == expected[tag], "mixed-generation answer"


# ----------------------------------------------------------------------
# QueryBatcher
# ----------------------------------------------------------------------
class TestQueryBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_size_flush_coalesces_a_full_batch(self):
        async def scenario():
            calls = []

            async def run_batch(queries, spec=None):
                calls.append(list(queries))
                return [tuple(int(c) for c in q) for q in queries], "gen"

            batcher = QueryBatcher(run_batch, max_batch=4, max_delay=60.0)
            results = await asyncio.gather(
                *(batcher.submit((float(i), 0.0)) for i in range(4))
            )
            assert [r for r, _ in results] == [
                (i, 0) for i in range(4)
            ]
            assert all(tag == "gen" for _, tag in results)
            return calls, batcher.stats()

        calls, stats = self._run(scenario())
        assert len(calls) == 1 and len(calls[0]) == 4
        assert stats["size_flushes"] == 1
        assert stats["timer_flushes"] == 0
        assert stats["largest_batch"] == 4

    def test_timer_flush_bounds_latency_for_small_batches(self):
        async def scenario():
            async def run_batch(queries, spec=None):
                return list(queries), "gen"

            batcher = QueryBatcher(run_batch, max_batch=64, max_delay=0.005)
            result, _ = await asyncio.wait_for(
                batcher.submit((1.0, 2.0)), timeout=5.0
            )
            assert result == (1.0, 2.0)
            return batcher.stats()

        stats = self._run(scenario())
        assert stats["timer_flushes"] == 1
        assert stats["batches"] == 1

    def test_batch_failure_rejects_every_parked_future(self):
        async def scenario():
            async def run_batch(queries, spec=None):
                raise RuntimeError("backend down")

            batcher = QueryBatcher(run_batch, max_batch=2, max_delay=60.0)
            results = await asyncio.gather(
                batcher.submit((0.0, 0.0)),
                batcher.submit((1.0, 1.0)),
                return_exceptions=True,
            )
            assert all(
                isinstance(r, RuntimeError) for r in results
            ), results

        self._run(scenario())

    def test_length_mismatch_is_an_error(self):
        async def scenario():
            async def run_batch(queries, spec=None):
                return [], "gen"  # wrong arity

            batcher = QueryBatcher(run_batch, max_batch=1)
            with pytest.raises(RuntimeError, match="results"):
                await batcher.submit((0.0, 0.0))

        self._run(scenario())

    def test_rejects_nonpositive_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            QueryBatcher(lambda queries, spec=None: None, max_batch=0)


# ----------------------------------------------------------------------
# SkylineServer (TCP round trip)
# ----------------------------------------------------------------------
class TestSkylineServer:
    def _run(self, coro):
        return asyncio.run(coro)

    async def _request(self, reader, writer, payload):
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=30.0)
        return json.loads(line)

    def test_query_health_shutdown_round_trip(self, tmp_path):
        diagram, path = _snapshot(tmp_path, POINTS_A)

        async def scenario():
            server = SkylineServer(path, workers=1, max_delay=0.001)
            host, port = await server.start()
            runner = asyncio.create_task(server.serve_until_stopped())
            reader, writer = await asyncio.open_connection(host, port)
            try:
                reply = await self._request(
                    reader, writer,
                    {"op": "query", "id": 1, "query": list(QUERIES[0])},
                )
                assert reply["id"] == 1
                assert tuple(reply["result"]) == diagram.query(QUERIES[0])
                assert len(reply["generation"]) == 64

                health = await self._request(
                    reader, writer, {"op": "health", "id": 2}
                )
                assert health["health"]["pool"]["alive"] == 1
                assert health["health"]["requests"] >= 2

                bad = await self._request(
                    reader, writer, {"op": "nope", "id": 3}
                )
                assert "unknown op" in bad["error"]

                done = await self._request(
                    reader, writer, {"op": "shutdown", "id": 4}
                )
                assert done == {"id": 4, "ok": True}
            finally:
                writer.close()
            await asyncio.wait_for(runner, timeout=30.0)

        self._run(scenario())

    def test_pipelined_queries_coalesce(self, tmp_path):
        diagram, path = _snapshot(tmp_path, POINTS_A)

        async def scenario():
            server = SkylineServer(
                path, workers=1, max_batch=8, max_delay=0.05
            )
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                count = 24
                for i in range(count):
                    query = QUERIES[i % len(QUERIES)]
                    writer.write(
                        json.dumps(
                            {"op": "query", "id": i, "query": list(query)}
                        ).encode() + b"\n"
                    )
                await writer.drain()
                replies = {}
                for _ in range(count):
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=30.0
                    )
                    reply = json.loads(line)
                    replies[reply["id"]] = tuple(reply["result"])
                writer.close()
                for i in range(count):
                    assert replies[i] == diagram.query(
                        QUERIES[i % len(QUERIES)]
                    )
                stats = server._batcher.stats()
                assert stats["queries"] == count
                # Coalescing is the point: far fewer batches than queries.
                assert stats["batches"] < count / 2, stats
            finally:
                await server.stop()

        self._run(scenario())

    def test_malformed_line_answers_error_without_dropping_connection(
        self, tmp_path
    ):
        diagram, path = _snapshot(tmp_path, POINTS_A)

        async def scenario():
            server = SkylineServer(path, workers=1, max_delay=0.001)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"{not json\n")
                await writer.drain()
                reply = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=30.0)
                )
                assert "error" in reply
                follow_up = await self._request(
                    reader, writer,
                    {"op": "query", "id": 9, "query": list(QUERIES[1])},
                )
                assert tuple(follow_up["result"]) == diagram.query(
                    QUERIES[1]
                )
                writer.close()
            finally:
                await server.stop()

        self._run(scenario())

    def test_oversized_request_line_is_capped(self, tmp_path):
        # Satellite of ISSUE PR 9: readline() must not buffer an
        # unbounded request line.  One abusive line gets a structured
        # error, is counted as rejected, and closes the connection
        # (nothing after an unframeable line can be trusted).
        _, path = _snapshot(tmp_path, POINTS_A)

        async def scenario():
            server = SkylineServer(
                path, workers=1, max_delay=0.001, max_line=256
            )
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"op": "query", "pad": "' + b"x" * 4096)
                writer.write(b'"}\n')
                await writer.drain()
                reply = json.loads(
                    await asyncio.wait_for(reader.readline(), timeout=30.0)
                )
                assert "RequestTooLarge" in reply["error"]
                assert reply["id"] is None
                # The connection is gone: EOF, not another reply.
                tail = await asyncio.wait_for(reader.read(), timeout=30.0)
                assert tail == b""
                writer.close()
                assert server.errors == 1
                assert server.metrics.rejected_count() == 1
                assert server.health()["rejected"] == 1

                # A fresh connection with a sane line still answers.
                reader2, writer2 = await asyncio.open_connection(host, port)
                reply2 = await self._request(
                    reader2, writer2,
                    {"op": "query", "id": 1, "query": list(QUERIES[0])},
                )
                assert "result" in reply2
                writer2.close()
            finally:
                await server.stop()

        self._run(scenario())

    def test_rejects_nonpositive_max_line(self, tmp_path):
        _, path = _snapshot(tmp_path, POINTS_A)
        with pytest.raises(ValueError, match="max_line"):
            SkylineServer(path, max_line=0)

    def test_box_and_diversify_requests(self, tmp_path):
        from repro.skyline.queries import diversified_select

        diagram, path = _snapshot(tmp_path, POINTS_A)
        box = ((3.0, 0.0), (9.0, 9.0))
        lo, hi = box

        async def scenario():
            server = SkylineServer(path, workers=1, max_delay=0.001)
            host, port = await server.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                q = (0.0, 0.0)
                constrained = await self._request(
                    reader, writer,
                    {"op": "query", "id": 1, "query": list(q),
                     "box": [list(lo), list(hi)]},
                )
                assert tuple(constrained["result"]) == (
                    diagram.kernel.query_restricted(q, lo, hi)
                )
                diversified = await self._request(
                    reader, writer,
                    {"op": "query", "id": 2, "query": list(q),
                     "diversify": 1},
                )
                assert tuple(diversified["result"]) == diversified_select(
                    POINTS_A, diagram.query(q), 1
                )
                combined = await self._request(
                    reader, writer,
                    {"op": "query", "id": 3, "query": list(q),
                     "box": [list(lo), list(hi)], "diversify": 1},
                )
                assert tuple(combined["result"]) == diversified_select(
                    POINTS_A, diagram.kernel.query_restricted(q, lo, hi), 1
                )
                # Specced queries coalesce into their own batches.
                assert server._batcher.stats()["spec_batches"] >= 3

                # A malformed box is a per-request error: counted as
                # rejected, connection intact.
                bad = await self._request(
                    reader, writer,
                    {"op": "query", "id": 4, "query": list(q),
                     "box": [[9.0, 9.0], [0.0, 0.0]]},
                )
                assert "error" in bad
                assert server.metrics.rejected_count() == 1
                follow_up = await self._request(
                    reader, writer,
                    {"op": "query", "id": 5, "query": list(q)},
                )
                assert tuple(follow_up["result"]) == diagram.query(q)
                writer.close()
            finally:
                await server.stop()

        self._run(scenario())


class TestBatcherSpecGroups:
    def test_specs_flush_as_separate_batches(self):
        async def scenario():
            seen = []

            async def run_batch(queries, spec=None):
                seen.append((tuple(queries), spec))
                return [(0,) for _ in queries], "gen"

            batcher = QueryBatcher(run_batch, max_batch=64, max_delay=60.0)
            plain = [
                asyncio.ensure_future(batcher.submit((float(i), 0.0)))
                for i in range(3)
            ]
            spec = ((((1.0, 1.0), (2.0, 2.0)), None))
            specced = [
                asyncio.ensure_future(
                    batcher.submit((float(i), 1.0), spec=spec)
                )
                for i in range(2)
            ]
            await batcher.drain()
            await asyncio.gather(*plain, *specced)
            assert len(seen) == 2  # one batch per spec group
            by_spec = {s: qs for qs, s in seen}
            assert len(by_spec[None]) == 3
            assert len(by_spec[spec]) == 2
            stats = batcher.stats()
            assert stats["batches"] == 2
            assert stats["spec_batches"] == 1

        asyncio.run(scenario())
