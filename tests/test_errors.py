"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AuditError,
    AuthenticationError,
    BudgetExceededError,
    DatasetError,
    DimensionalityError,
    ProtocolError,
    QueryError,
    SerializationError,
    SkylineDiagramError,
)

ALL_ERRORS = [
    AuditError,
    AuthenticationError,
    BudgetExceededError,
    DatasetError,
    DimensionalityError,
    ProtocolError,
    QueryError,
    SerializationError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_all_derive_from_base(error):
    assert issubclass(error, SkylineDiagramError)
    assert issubclass(error, Exception)


def test_one_except_clause_catches_library_failures():
    with pytest.raises(SkylineDiagramError):
        raise DatasetError("bad input")


def test_errors_carry_messages():
    try:
        raise QueryError("query has 3 dimensions")
    except SkylineDiagramError as exc:
        assert "3 dimensions" in str(exc)


def test_budget_error_carries_progress():
    from repro.resilience import BuildBudget

    budget = BuildBudget(max_cells=5)
    error = BudgetExceededError("out of cells", budget=budget)
    assert error.budget is budget
    assert error.progress is None
    assert error.partial is None
