"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AuthenticationError,
    DatasetError,
    DimensionalityError,
    ProtocolError,
    QueryError,
    SerializationError,
    SkylineDiagramError,
)

ALL_ERRORS = [
    AuthenticationError,
    DatasetError,
    DimensionalityError,
    ProtocolError,
    QueryError,
    SerializationError,
]


@pytest.mark.parametrize("error", ALL_ERRORS)
def test_all_derive_from_base(error):
    assert issubclass(error, SkylineDiagramError)
    assert issubclass(error, Exception)


def test_one_except_clause_catches_library_failures():
    with pytest.raises(SkylineDiagramError):
        raise DatasetError("bad input")


def test_errors_carry_messages():
    try:
        raise QueryError("query has 3 dimensions")
    except SkylineDiagramError as exc:
        assert "3 dimensions" in str(exc)
