"""Documentation-rot protection: the docs' Python snippets must run.

Fenced ``python`` code blocks in README.md and docs/ALGORITHMS.md are
extracted and executed; claims the documents state as code comments are
re-asserted where they are checkable.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks(path: Path):
    return _FENCE.findall(path.read_text())


class TestReadme:
    def test_has_python_snippets(self):
        assert len(_blocks(ROOT / "README.md")) >= 1

    def test_quickstart_snippet_runs(self):
        for block in _blocks(ROOT / "README.md"):
            exec(compile(block, "<README.md>", "exec"), {})

    def test_quickstart_claims(self):
        from repro import quadrant_scanning

        diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
        assert diagram.query((1, 2)) == (0, 1)  # the "-> (0, 1)" comment

    def test_mentioned_files_exist(self):
        text = (ROOT / "README.md").read_text()
        for name in re.findall(r"`([a-z_]+\.py)`", text):
            assert (ROOT / "examples" / name).exists(), name
        for doc in ("DESIGN.md", "EXPERIMENTS.md", "TRACEABILITY.md"):
            assert doc in text
            assert (ROOT / doc).exists()


class TestAlgorithmsWalkthrough:
    def test_worked_example_snippet_is_consistent(self):
        # The document's dataset, layers, links, and ASCII picture.
        from repro.diagram import quadrant_scanning
        from repro.dsg.graph import direct_dominance_links
        from repro.skyline.layers import skyline_layers
        from repro.viz.ascii_art import ascii_diagram

        points = [(2, 8), (5, 4), (9, 1), (6, 6), (8, 5)]
        assert skyline_layers(points) == [(0, 1, 2), (3, 4)]
        assert direct_dominance_links(points) == [[], [3, 4], [], [], []]
        art = ascii_diagram(quadrant_scanning(points), legend=False)
        doc = (ROOT / "docs" / "ALGORITHMS.md").read_text()
        for line in art.splitlines():
            assert line in doc, f"ASCII row {line!r} missing from docs"

    def test_theorem1_worked_identity(self):
        # Sky(K) = Sky(L) + Sky(I) − Sky(M) on the worked dataset.
        from repro._util import multiset_add_sub
        from repro.diagram import quadrant_scanning

        diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1), (6, 6), (8, 5)])
        k = diagram.result_at((2, 0))
        right = diagram.result_at((3, 0))
        up = diagram.result_at((2, 1))
        up_right = diagram.result_at((3, 1))
        assert k == multiset_add_sub(right, up, up_right)

    def test_traceability_mentions_every_test_file(self):
        text = (ROOT / "TRACEABILITY.md").read_text()
        core_suites = [
            "test_quadrant_diagrams.py",
            "test_sweeping.py",
            "test_global_dynamic.py",
            "test_highdim.py",
            "test_dsg.py",
            "test_skyband.py",
            "test_maintenance.py",
            "test_order_k.py",
        ]
        for suite in core_suites:
            assert suite in text, suite


class TestExperimentsDocument:
    def test_every_registered_experiment_is_recorded(self):
        from repro.bench.experiments import EXPERIMENTS

        text = (ROOT / "EXPERIMENTS.md").read_text()
        for name in EXPERIMENTS:
            assert f"| {name} |" in text or f"## {name}" in text, name
