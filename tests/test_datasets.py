"""Tests for the workload generators and substituted real datasets."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datasets.generators import (
    anticorrelated,
    clustered,
    correlated,
    generate,
    independent,
    quantize,
)
from repro.datasets.real import hotels, load_real, nba_like
from repro.errors import DatasetError


def _pearson(points):
    xs = np.array([p[0] for p in points])
    ys = np.array([p[1] for p in points])
    return float(np.corrcoef(xs, ys)[0, 1])


class TestGenerators:
    @pytest.mark.parametrize(
        "maker", [independent, correlated, anticorrelated, clustered]
    )
    def test_shapes_and_range(self, maker):
        pts = maker(50, dim=3, seed=1)
        assert len(pts) == 50
        assert all(len(p) == 3 for p in pts)
        assert all(0.0 <= x <= 1.0 for p in pts for x in p)

    @pytest.mark.parametrize(
        "maker", [independent, correlated, anticorrelated, clustered]
    )
    def test_deterministic_under_seed(self, maker):
        assert maker(20, seed=7) == maker(20, seed=7)
        assert maker(20, seed=7) != maker(20, seed=8)

    def test_correlated_has_positive_correlation(self):
        assert _pearson(correlated(500, seed=2)) > 0.5

    def test_anticorrelated_has_negative_correlation(self):
        assert _pearson(anticorrelated(500, seed=2)) < -0.3

    def test_independent_has_weak_correlation(self):
        assert abs(_pearson(independent(800, seed=2))) < 0.15

    def test_skyline_sizes_rank_as_expected(self):
        from repro.skyline.algorithms import skyline_brute

        n = 300
        corr = len(skyline_brute(correlated(n, seed=3)))
        inde = len(skyline_brute(independent(n, seed=3)))
        anti = len(skyline_brute(anticorrelated(n, seed=3)))
        assert corr <= inde <= anti

    def test_integer_domain(self):
        pts = independent(100, seed=4, domain=16)
        values = {x for p in pts for x in p}
        assert values <= set(float(v) for v in range(16))

    def test_domain_validation(self):
        with pytest.raises(DatasetError):
            independent(10, domain=0)

    def test_size_validation(self):
        with pytest.raises(DatasetError):
            independent(0)
        with pytest.raises(DatasetError):
            independent(5, dim=0)

    def test_clusters_validation(self):
        with pytest.raises(DatasetError):
            clustered(10, clusters=0)


class TestGenerateDispatch:
    @pytest.mark.parametrize(
        "name", ["independent", "correlated", "anticorrelated", "clustered"]
    )
    def test_known_names(self, name):
        assert len(generate(name, 10, seed=1)) == 10

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown distribution"):
            generate("zipf", 10)

    @given(st.integers(1, 40), st.integers(0, 5))
    def test_matches_direct_call(self, n, seed):
        assert generate("independent", n, seed=seed) == independent(
            n, seed=seed
        )


class TestQuantize:
    def test_snaps_to_integer_grid(self):
        pts = quantize(independent(60, seed=5), 8)
        assert all(x == int(x) and 0 <= x < 8 for p in pts for x in p)

    def test_empty(self):
        assert quantize([], 4) == []

    def test_constant_axis(self):
        assert quantize([(1.0, 5.0), (2.0, 5.0)], 4) == [
            (0.0, 0.0),
            (3.0, 0.0),
        ]

    def test_validation(self):
        with pytest.raises(DatasetError):
            quantize([(1.0, 2.0)], 0)


class TestRealSubstitutes:
    def test_nba_shape_and_determinism(self):
        a = nba_like(100)
        assert len(a) == 100
        assert a == nba_like(100)

    def test_nba_is_negated_counts(self):
        ds = nba_like(200)
        assert all(x <= 0 for p in ds for x in p)

    def test_nba_stats_are_correlated(self):
        assert _pearson(list(nba_like(800))) > 0.3

    def test_nba_validation(self):
        with pytest.raises(DatasetError):
            nba_like(0)
        with pytest.raises(DatasetError):
            nba_like(5, dim=0)

    def test_hotels_anticorrelated(self):
        assert _pearson(list(hotels(500))) < -0.5

    def test_hotels_domain(self):
        ds = hotels(300, domain=50)
        assert all(0 <= x < 50 for p in ds for x in p)

    def test_hotels_validation(self):
        with pytest.raises(DatasetError):
            hotels(0)
        with pytest.raises(DatasetError):
            hotels(5, domain=1)

    def test_load_real_dispatch(self):
        assert load_real("nba", n=10).dim == 2
        assert load_real("hotels", n=10).dim == 2
        with pytest.raises(DatasetError, match="unknown real dataset"):
            load_real("census")
