"""QuerySpec: the composable plan space and its new query kinds.

The contract under test (ISSUE PR 9): every query is a validated,
frozen :class:`~repro.query.QuerySpec`; per-kind handlers in a registry
own planning and validation; the ``constrained`` (closed-box) and
``diversified`` (max-min selection) kinds compose with masks and
skyband widths; answers byte-agree with from-scratch evaluation on
every tier of the degradation ladder; and rejected requests are
counted, not silently dropped.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.errors import DimensionalityError, QueryError
from repro.index.engine import SkylineDatabase
from repro.query import KINDS, QuerySpec, handler_for, registered_kinds
from repro.query.spec import box_filter, check_box, restrict_coords
from repro.resilience import BuildBudget
from repro.skyline.queries import (
    constrained_skyband,
    diversified_select,
    quadrant_skyline,
)

POINTS = [
    (1.0, 8.0), (3.0, 5.0), (5.0, 5.0),
    (7.0, 2.0), (2.0, 2.0), (5.0, 5.0),  # duplicate on purpose
]
BOX = ((2.0, 2.0), (6.0, 6.0))  # faces on data coordinates on purpose
QUERIES = [
    (0.0, 0.0),
    (2.0, 2.0),   # exactly on a box corner AND a data point
    (6.0, 5.0),   # on the hi face
    (4.0, 9.0),
    (9.5, 9.5),
]


# ----------------------------------------------------------------------
# The spec itself: validation, normalization, canonical keys
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_registry_serves_every_kind(self):
        assert registered_kinds() == KINDS
        assert set(KINDS) == {
            "quadrant", "global", "dynamic", "skyband",
            "constrained", "diversified",
        }
        for kind in KINDS:
            assert handler_for(kind).kind == kind

    def test_unknown_kind(self):
        with pytest.raises(QueryError, match="unknown query kind"):
            handler_for("voronoi")
        db = SkylineDatabase(POINTS)
        with pytest.raises(QueryError, match="unknown query kind"):
            db.query(QUERIES[0], kind="voronoi")

    def test_plain_kinds_reject_box_with_pointer(self):
        for kind in ("quadrant", "global", "dynamic", "skyband"):
            with pytest.raises(QueryError, match="use kind='constrained'"):
                QuerySpec(kind=kind, box=BOX).validated(2)

    def test_plain_kinds_reject_diversify_with_pointer(self):
        for kind in ("quadrant", "global", "dynamic", "skyband"):
            with pytest.raises(QueryError, match="use kind='diversified'"):
                QuerySpec(kind=kind, diversify=2).validated(2)

    def test_constrained_requires_box(self):
        with pytest.raises(QueryError, match="requires a .lo, hi. box"):
            QuerySpec(kind="constrained").validated(2)

    def test_diversified_requires_count(self):
        with pytest.raises(QueryError, match="requires a diversify count"):
            QuerySpec(kind="diversified").validated(2)

    @pytest.mark.parametrize(
        "box",
        [
            ((3.0, 0.0), (1.0, 9.0)),          # lo > hi on one axis
            ((0.0,), (1.0,)),                   # wrong dimensionality
            ((0.0, 0.0, 0.0), (1.0, 1.0, 1.0)),
            ((float("nan"), 0.0), (1.0, 1.0)),  # NaN corner
            (1.0, 2.0),                         # corners are not points
            ((0.0, 0.0),),                      # not a (lo, hi) pair
        ],
    )
    def test_malformed_boxes(self, box):
        with pytest.raises(QueryError):
            QuerySpec(kind="constrained", box=box).validated(2)

    def test_degenerate_box_is_legal(self):
        spec = QuerySpec(
            kind="constrained", box=((3.0, 5.0), (3.0, 5.0))
        ).validated(2)
        assert spec.box == ((3.0, 5.0), (3.0, 5.0))

    def test_bad_mask_k_diversify(self):
        with pytest.raises(QueryError, match="mask"):
            QuerySpec(kind="quadrant", mask=4).validated(2)
        with pytest.raises(QueryError, match="mask"):
            QuerySpec(kind="quadrant", mask=-1).validated(2)
        with pytest.raises(QueryError, match="k must be"):
            QuerySpec(kind="skyband", k=0).validated(2)
        with pytest.raises(QueryError, match="diversify"):
            QuerySpec(kind="diversified", k=2, diversify=0).validated(2)

    def test_band_with_reflected_mask_is_rejected(self):
        # Skyband diagrams exist for the first quadrant only.
        with pytest.raises(QueryError, match="requires mask=0"):
            QuerySpec(kind="constrained", mask=1, k=2, box=BOX).validated(2)

    def test_plain_kinds_normalize_ignored_fields(self):
        # Historical behavior, preserved: quadrant ignores k, global and
        # skyband ignore the mask — normalized, not errors.
        assert QuerySpec(kind="quadrant", k=5).validated(2).k == 1
        spec = QuerySpec(kind="global", mask=3, k=7).validated(2)
        assert (spec.mask, spec.k) == (0, 1)
        assert QuerySpec(kind="skyband", mask=2, k=2).validated(2).mask == 0

    def test_cache_key_is_canonical(self):
        a = QuerySpec(kind="constrained", box=BOX, k=2).validated(2)
        b = QuerySpec(
            kind="constrained", box=(list(BOX[0]), list(BOX[1])), k=2
        ).validated(2)
        assert a.cache_key() == b.cache_key()
        c = QuerySpec(kind="constrained", box=BOX, k=3).validated(2)
        assert a.cache_key() != c.cache_key()
        assert a.cache_key() != QuerySpec(kind="skyband", k=2).cache_key()

    def test_spec_is_frozen_and_hashable(self):
        spec = QuerySpec(kind="constrained", box=BOX).validated(2)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.k = 3
        assert hash(spec) == hash(
            QuerySpec(kind="constrained", box=BOX).validated(2)
        )

    def test_of_passes_existing_spec_through(self):
        spec = QuerySpec(kind="skyband", k=2)
        assert QuerySpec.of(spec) is spec
        assert QuerySpec.of("skyband", k=2) == spec

    def test_restrict_and_filter_helpers(self):
        # Normal axes clamp up to lo; reflected axes clamp down to hi.
        assert restrict_coords((0.0, 9.0), BOX, mask=0) == (2.0, 9.0)
        assert restrict_coords((9.0, 9.0), BOX, mask=1) == (6.0, 9.0)
        # NaN must survive the clamp so the kernel's typed check fires.
        adjusted = restrict_coords((float("nan"), 0.0), BOX, mask=0)
        assert math.isnan(adjusted[0])
        # The filter is one-sided: it drops only far-face violations
        # (the near side is absorbed into restrict_coords).
        pts = [(1.0, 3.0), (3.0, 3.0), (7.0, 3.0)]
        assert box_filter(pts, (0, 1, 2), BOX, mask=0) == (0, 1)
        assert box_filter(pts, (0, 1, 2), BOX, mask=1) == (1, 2)
        assert check_box(BOX, 2) == BOX


# ----------------------------------------------------------------------
# Tier parity: diagram == partial/scratch ladder == from-scratch oracle
# ----------------------------------------------------------------------
def _dbs():
    healthy = SkylineDatabase(POINTS)
    degraded = SkylineDatabase(POINTS, budget=BuildBudget(max_cells=1))
    return healthy, degraded


class TestTierParity:
    def test_constrained_every_mask(self):
        healthy, degraded = _dbs()
        for db in (healthy, degraded):
            for mask in range(4):
                for q in QUERIES:
                    expected = db.query_from_scratch(
                        q, kind="constrained", mask=mask, box=BOX
                    )
                    assert db.query(
                        q, kind="constrained", mask=mask, box=BOX
                    ) == expected, (mask, q)
                    assert expected == constrained_skyband(
                        POINTS, q, 1, mask, BOX
                    )

    def test_constrained_skyband_widths(self):
        healthy, degraded = _dbs()
        for db in (healthy, degraded):
            for k in (1, 2, 3):
                for q in QUERIES:
                    assert db.query(
                        q, kind="constrained", k=k, box=BOX
                    ) == db.query_from_scratch(
                        q, kind="constrained", k=k, box=BOX
                    ), (k, q)

    def test_diversified(self):
        healthy, degraded = _dbs()
        for db in (healthy, degraded):
            for k in (1, 2):
                for m in (1, 2, 3):
                    for q in QUERIES:
                        got = db.query(
                            q, kind="diversified", k=k, diversify=m
                        )
                        assert got == db.query_from_scratch(
                            q, kind="diversified", k=k, diversify=m
                        ), (k, m, q)
                        assert len(got) <= m

    def test_diversified_selects_max_min_subset(self):
        db = SkylineDatabase(POINTS)
        q = (0.0, 0.0)
        band = db.query(q, kind="skyband", k=3)
        got = db.query(q, kind="diversified", k=3, diversify=2)
        assert got == diversified_select(POINTS, band, 2)
        assert set(got) <= set(band)

    def test_combined_box_band_diversify(self):
        healthy, degraded = _dbs()
        for db in (healthy, degraded):
            for q in QUERIES:
                kwargs = dict(kind="constrained", k=2, box=BOX, diversify=2)
                assert db.query(q, **kwargs) == db.query_from_scratch(
                    q, **kwargs
                ), q

    def test_batch_equals_singles_for_spec_kinds(self):
        healthy, degraded = _dbs()
        for db in (healthy, degraded):
            for kwargs in (
                dict(kind="constrained", box=BOX),
                dict(kind="constrained", mask=3, box=BOX),
                dict(kind="constrained", k=2, box=BOX, diversify=2),
                dict(kind="diversified", k=2, diversify=2),
            ):
                assert db.query_batch(QUERIES, **kwargs) == [
                    db.query(q, **kwargs) for q in QUERIES
                ], kwargs

    def test_spec_object_equals_keyword_form(self):
        db = SkylineDatabase(POINTS)
        spec = QuerySpec(kind="constrained", k=2, box=BOX, diversify=2)
        for q in QUERIES:
            assert db.query(q, spec=spec) == db.query(
                q, kind="constrained", k=2, box=BOX, diversify=2
            )
        assert db.query_batch(QUERIES, spec=spec) == db.query_batch(
            QUERIES, kind="constrained", k=2, box=BOX, diversify=2
        )
        assert db.query_many(QUERIES, spec=spec) == db.query_batch(
            QUERIES, spec=spec
        )

    def test_tier_reporting(self):
        healthy, degraded = _dbs()
        a = healthy.query_annotated(QUERIES[0], kind="constrained", box=BOX)
        assert a.served_from == "diagram"
        assert a.query_report.tier == "diagram"
        b = degraded.query_annotated(QUERIES[0], kind="constrained", box=BOX)
        assert b.served_from != "diagram"
        assert b.result == a.result

    def test_full_span_box_degenerates_to_plain_quadrant(self):
        db = SkylineDatabase(POINTS)
        span = ((1.0, 2.0), (7.0, 8.0))  # exact dataset extent, closed
        for q in QUERIES:
            assert db.query(q, kind="constrained", box=span) == db.query(
                q, kind="quadrant"
            ), q
            assert db.query(q, kind="quadrant") == quadrant_skyline(
                POINTS, q
            )

    def test_empty_box_answers_empty(self):
        db = SkylineDatabase(POINTS)
        nowhere = ((100.0, 100.0), (200.0, 200.0))
        for q in QUERIES:
            assert db.query(q, kind="constrained", box=nowhere) == ()


# ----------------------------------------------------------------------
# Scratch stays dimension-permissive; the diagram path does not
# ----------------------------------------------------------------------
class TestScratchDimensionality:
    POINTS_3D = [(1.0, 2.0, 3.0), (3.0, 1.0, 2.0), (2.0, 3.0, 1.0)]

    def test_dynamic_3d_scratch_works_diagram_refuses(self):
        db = SkylineDatabase(self.POINTS_3D)
        q = (2.0, 2.0, 2.0)
        assert db.query_from_scratch(q, kind="dynamic") != ()
        with pytest.raises(DimensionalityError):
            db.query(q, kind="dynamic")

    def test_constrained_3d_scratch_matches_oracle(self):
        db = SkylineDatabase(self.POINTS_3D)
        box = ((1.0, 1.0, 1.0), (3.0, 3.0, 3.0))
        q = (0.0, 0.0, 0.0)
        for mask in (0, 5):
            assert db.query_from_scratch(
                q, kind="constrained", mask=mask, box=box
            ) == constrained_skyband(self.POINTS_3D, q, 1, mask, box)


# ----------------------------------------------------------------------
# Rejected requests are counted
# ----------------------------------------------------------------------
class TestRejectionMetrics:
    def test_query_errors_increment_the_counter(self):
        db = SkylineDatabase(POINTS)
        assert db.metrics.rejected_count() == 0
        for bad in (
            lambda: db.query(QUERIES[0], kind="voronoi"),
            lambda: db.query(QUERIES[0], kind="quadrant", box=BOX),
            lambda: db.query(QUERIES[0], kind="constrained"),
            lambda: db.query_batch(QUERIES, kind="quadrant", mask=9),
            lambda: db.query_from_scratch(
                QUERIES[0], kind="constrained",
                box=((5.0, 5.0), (1.0, 1.0)),
            ),
        ):
            with pytest.raises(QueryError):
                bad()
        assert db.metrics.rejected_count() == 5
        assert db.health()["rejected"] == 5

    def test_successful_queries_do_not_count(self):
        db = SkylineDatabase(POINTS)
        db.query(QUERIES[0], kind="constrained", box=BOX)
        db.query_batch(QUERIES, kind="diversified", diversify=2)
        assert db.metrics.rejected_count() == 0
        assert "rejected_requests" not in db.metrics.snapshot()["counters"]

    def test_rejections_survive_in_snapshot_counters(self):
        db = SkylineDatabase(POINTS)
        with pytest.raises(QueryError):
            db.query(QUERIES[0], kind="skyband", k=0)
        assert db.metrics.snapshot()["counters"]["rejected_requests"] == 1
