"""Grid backends: conformance, conversion, maintenance, serving, mmap life.

The PR-10 surface in one place: the ``GridBackend`` protocol behind
``ResultStore`` (dense / rle / quad), backend choice threaded through
builds, maintenance, serialization, the query planner's ``approx`` tier,
engine memory accounting, batched update union re-scans, the CLI flags,
and the serve-side conversion — plus the mmap-lifetime regressions for
stores loaded via ``map_diagram``.
"""

import random

import numpy as np
import pytest

from repro.diagram.maintenance import apply_ops, delete_point, insert_point
from repro.diagram.pipeline import BuildOptions
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.store import (
    BACKENDS,
    DenseBackend,
    RLEBackend,
    ResultStore,
)
from repro.index.engine import SkylineDatabase
from repro.index.serialize import (
    diagram_to_binary_bytes,
    load_diagram,
    map_diagram,
    save_diagram,
)


def _points(n=24, seed=3, domain=40):
    rng = random.Random(seed)
    return [
        (float(rng.randint(0, domain)), float(rng.randint(0, domain)))
        for _ in range(n)
    ]


POINTS = _points()


@pytest.fixture(params=["dense", "rle"])
def exact_backend(request):
    return request.param


class TestBackendConformance:
    """Every backend answers the same grid through the same interface."""

    def test_rle_is_fingerprint_identical_to_dense(self):
        dense = quadrant_scanning(POINTS)
        rle = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        assert rle.store.backend_kind == "rle"
        assert rle.store.fingerprint() == dense.store.fingerprint()
        assert rle == dense

    def test_vectorized_native_rle_matches_serial(self):
        serial = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        vector = quadrant_scanning(
            POINTS,
            build_options=BuildOptions(
                backend="rle", executor="vectorized", chunk_rows=2
            ),
        )
        assert vector.store.backend_kind == "rle"
        assert vector.store.fingerprint() == serial.store.fingerprint()

    def test_row_views_match_dense(self, exact_backend):
        dense = quadrant_scanning(POINTS)
        other = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend=exact_backend)
        )
        sx, _ = dense.store.shape
        for r in range(sx):
            np.testing.assert_array_equal(
                other.store.row_view(r), dense.store.row_view(r)
            )

    def test_queries_match_across_backends(self):
        dense = quadrant_scanning(POINTS)
        queries = [(5.0, 5.0), (0.0, 40.0), (33.0, 17.0), (40.0, 40.0)]
        for kind in ("rle",):
            other = quadrant_scanning(
                POINTS, build_options=BuildOptions(backend=kind)
            )
            for q in queries:
                assert other.query(q) == dense.query(q)

    def test_flip_matches_dense_flip(self, exact_backend):
        dense = quadrant_scanning(POINTS)
        other = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend=exact_backend)
        )
        flipped_dense = dense.store.flip((0, 1))
        flipped_other = other.store.flip((0, 1))
        assert (
            flipped_other.backend.to_dense()
            == flipped_dense.backend.to_dense()
        ).all()

    def test_rle_compresses_the_dynamic_grid(self):
        # The dynamic diagram's subcell grid is ~n^2 per axis while its
        # region count grows far slower, so rows are long constant runs
        # there — the case the RLE backend exists for.  (The quadrant
        # diagram in rank space averages ~2 cells per region, so RLE is
        # roughly break-even on it; see docs/PERFORMANCE.md.)
        from repro.diagram.dynamic_scanning import dynamic_scanning

        rng = random.Random(0)
        pts = [
            (rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(18)
        ]
        dense = dynamic_scanning(pts).store
        rle = dense.convert("rle")
        assert rle.backend.nbytes() < dense.backend.nbytes() / 4
        assert rle.fingerprint() == dense.fingerprint()

    def test_quad_error_is_measured_and_bounded(self):
        eps = 0.1
        dense = quadrant_scanning(POINTS)
        quad = quadrant_scanning(
            POINTS,
            build_options=BuildOptions(backend="quad", quad_error=eps),
        )
        store = quad.store
        assert store.backend_kind == "quad"
        sx, sy = dense.store.shape
        wrong = sum(
            int(
                np.count_nonzero(
                    dense.store.row_view(r) != store.row_view(r)
                )
            )
            for r in range(sx)
        )
        measured = wrong / (sx * sy)
        assert measured <= store.approx_error + 1e-12 <= eps + 1e-12

    def test_exact_backends_report_no_error(self, exact_backend):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend=exact_backend)
        )
        assert diagram.store.approx_error is None

    def test_build_report_names_backend_and_bytes(self):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        report = diagram.build_report
        assert report.backend == "rle"
        assert report.store_nbytes == diagram.store.nbytes > 0


class TestConversion:
    def test_round_trip_preserves_fingerprint(self):
        dense = quadrant_scanning(POINTS).store
        rle = dense.convert("rle")
        back = rle.convert("dense")
        assert rle.fingerprint() == dense.fingerprint()
        assert back.fingerprint() == dense.fingerprint()

    def test_convert_to_same_kind_is_identity(self):
        store = quadrant_scanning(POINTS).store
        assert store.convert("dense") is store

    def test_convert_shares_the_table(self):
        store = quadrant_scanning(POINTS).store
        rle = store.convert("rle")
        assert rle._table is store._table

    def test_unknown_backend_rejected(self):
        store = quadrant_scanning(POINTS).store
        with pytest.raises(ValueError, match="unknown grid backend"):
            store.convert("sparse")
        with pytest.raises(ValueError, match="backend must be one of"):
            BuildOptions(backend="sparse")
        assert set(BACKENDS) == {"dense", "rle", "quad"}

    def test_quad_conversion_respects_max_error(self):
        store = quadrant_scanning(POINTS).store
        quad = store.convert("quad", max_error=0.2)
        assert quad.approx_error <= 0.2
        exact = store.convert("quad", max_error=0.0)
        assert exact.approx_error == 0.0
        assert (exact.backend.to_dense() == store.ids).all()


class TestSerializeV4:
    def test_dense_payload_stays_v3(self):
        _, version = diagram_to_binary_bytes(quadrant_scanning(POINTS))
        assert version == 3

    def test_rle_payload_is_v4(self):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        _, version = diagram_to_binary_bytes(diagram)
        assert version == 4

    @pytest.mark.parametrize("backend", ["rle", "quad"])
    def test_save_load_round_trip(self, tmp_path, backend):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend=backend)
        )
        path = tmp_path / "d.bin"
        save_diagram(diagram, str(path))
        loaded = load_diagram(str(path))
        assert loaded.store.backend_kind == backend
        assert loaded.store.fingerprint() == diagram.store.fingerprint()

    def test_mapped_rle_store_is_zero_copy(self, tmp_path):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        path = tmp_path / "d.bin"
        save_diagram(diagram, str(path))
        mapped, _sha = map_diagram(str(path))
        store = mapped.store
        assert store.backend_kind == "rle"
        assert store._mmap is not None
        # The run arrays are views into the mapping, not copies.
        assert not store.backend.run_vals.flags.owndata
        assert store.fingerprint() == diagram.store.fingerprint()


class TestMmapLifetime:
    """Regressions: operating on a mapped store must not kill the mapping."""

    @pytest.fixture
    def mapped(self, tmp_path):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        save_diagram(diagram, str(tmp_path / "d.bin"))
        mapped, _sha = map_diagram(str(tmp_path / "d.bin"))
        return mapped

    def test_flip_leaves_the_mapping_alive(self, mapped):
        fingerprint = mapped.store.fingerprint()
        flipped = mapped.store.flip((0,))
        assert flipped.flip((0,)).fingerprint() == fingerprint
        assert mapped.store._mmap is not None
        assert mapped.store.fingerprint() == fingerprint

    def test_audit_leaves_the_mapping_alive(self, mapped):
        assert mapped.store.audit() == mapped.store.fingerprint()
        assert mapped.store._mmap is not None

    def test_convert_leaves_the_source_mapping_alive(self, mapped):
        fingerprint = mapped.store.fingerprint()
        dense = mapped.store.convert("dense")
        assert dense.fingerprint() == fingerprint
        # The source still serves from the mapping afterwards.
        assert mapped.store._mmap is not None
        assert mapped.store.row_view(0).size == mapped.store.shape[1]

    def test_maintenance_on_mapped_store(self, mapped):
        updated = insert_point(mapped, (3.0, 3.0))
        assert updated.store.backend_kind == "rle"
        pts = list(mapped.grid.dataset) + [(3.0, 3.0)]
        fresh = quadrant_scanning(
            pts, build_options=BuildOptions(backend="rle")
        )
        assert updated.store.fingerprint() == fresh.store.fingerprint()


class TestMaintenanceBackends:
    def test_rle_diagram_is_maintained_natively(self):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        pts = list(POINTS)
        diagram = insert_point(diagram, (7.0, 11.0))
        pts.append((7.0, 11.0))
        assert diagram.store.backend_kind == "rle"
        # Inserts never drop a grid column, so they take the direct
        # run-splicing path, not densify-and-recompress.
        assert diagram.build_report.backend_fallback is None
        fresh = quadrant_scanning(
            pts, build_options=BuildOptions(backend="rle")
        )
        assert diagram.store.fingerprint() == fresh.store.fingerprint()

    def test_rle_delete_dropping_a_column_records_densify(self):
        # Deleting the only point on its x-coordinate shrinks the grid,
        # which the run splicer cannot express — the report must record
        # the honest densify fallback, and the result still matches a
        # fresh build byte-for-byte.
        pts = [(1.0, 5.0), (3.0, 2.0), (6.0, 8.0), (9.0, 1.0)]
        diagram = quadrant_scanning(
            pts, build_options=BuildOptions(backend="rle")
        )
        updated = delete_point(diagram, 2)
        assert updated.store.backend_kind == "rle"
        assert updated.build_report.backend_fallback == "densify"
        fresh = quadrant_scanning(
            [p for i, p in enumerate(pts) if i != 2],
            build_options=BuildOptions(backend="rle"),
        )
        assert updated.store.fingerprint() == fresh.store.fingerprint()

    def test_quad_diagram_falls_back_to_densify(self):
        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="quad", quad_error=0.1)
        )
        updated = insert_point(diagram, (6.0, 6.0))
        assert updated.store.backend_kind == "quad"
        assert updated.build_report.backend_fallback == "densify"

    def test_apply_ops_matches_sequential_application(self):
        for backend in ("dense", "rle"):
            options = BuildOptions(backend=backend)
            diagram = quadrant_scanning(POINTS, build_options=options)
            ops = [
                ("insert", (4.0, 9.0)),
                ("delete", 5),
                ("insert", (9.0, 4.0)),
            ]
            batched = apply_ops(diagram, ops, build_options=options)
            serial = diagram
            serial = insert_point(serial, (4.0, 9.0), build_options=options)
            serial = delete_point(serial, 5, build_options=options)
            serial = insert_point(serial, (9.0, 4.0), build_options=options)
            assert (
                batched.store.fingerprint() == serial.store.fingerprint()
            ), backend
            assert batched.store.backend_kind == backend

    def test_apply_ops_cancels_insert_delete_pairs(self):
        diagram = quadrant_scanning(POINTS)
        n = len(POINTS)
        unchanged = apply_ops(
            diagram, [("insert", (1.0, 1.0)), ("delete", n)]
        )
        assert unchanged is diagram


class TestEngineAccounting:
    def test_health_reports_per_diagram_memory(self):
        db = SkylineDatabase(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        db.query((5.0, 5.0))
        memory = db.health()["memory"]
        assert memory
        for entry in memory.values():
            assert entry["backend"] == "rle"
            assert entry["store_nbytes"] > 0

    def test_multi_op_flush_is_one_union_scan(self):
        db = SkylineDatabase(POINTS)
        # Attach the 2-D quadrant diagram so the batch maintains it.
        db.query((5.0, 5.0), kind="quadrant")
        db.apply_update("insert", (2.0, 13.0), flush=False)
        db.apply_update("insert", (13.0, 2.0), flush=False)
        db.apply_update("delete", 4, flush=False)
        db.flush_updates()
        stats = db.health()["updates"]
        assert stats["union_scans"] == 1
        assert stats["union_ops"] == 3
        # A single-op flush takes the splice fast path, not the union.
        db.apply_update("insert", (3.0, 3.0), flush=True)
        stats = db.health()["updates"]
        assert stats["union_scans"] == 1

    def test_quad_answers_ride_the_approx_tier(self):
        db = SkylineDatabase(
            POINTS, build_options=BuildOptions(backend="quad", quad_error=0.2)
        )
        answer = db.query_annotated((10.0, 10.0))
        assert answer.served_from == "approx"
        assert 0.0 <= answer.error <= 0.2

    def test_exact_answers_carry_no_error(self):
        db = SkylineDatabase(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        answer = db.query_annotated((10.0, 10.0))
        assert answer.served_from == "diagram"
        assert answer.error is None


class TestServeBackend:
    def test_snapshot_manager_converts_on_load(self, tmp_path):
        from repro.serve.snapshot import SnapshotManager

        diagram = quadrant_scanning(POINTS)
        path = tmp_path / "snap.bin"
        save_diagram(diagram, str(path))
        manager = SnapshotManager(str(path), backend="rle")
        snapshot = manager.load()
        store = snapshot.diagram.store
        assert store.backend_kind == "rle"
        # The table still rides the mapping; the keepalive came along.
        assert store._mmap is not None
        assert snapshot.diagram.query((5.0, 5.0)) == diagram.query((5.0, 5.0))

    def test_snapshot_manager_default_serves_as_stored(self, tmp_path):
        from repro.serve.snapshot import SnapshotManager

        diagram = quadrant_scanning(
            POINTS, build_options=BuildOptions(backend="rle")
        )
        path = tmp_path / "snap.bin"
        save_diagram(diagram, str(path))
        snapshot = SnapshotManager(str(path)).load()
        assert snapshot.diagram.store.backend_kind == "rle"


class TestCLIBackend:
    def test_build_with_backend_flag(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "pts.csv"
        csv.write_text("2,8\n5,4\n9,1\n7,6\n")
        out = tmp_path / "d.bin"
        assert (
            main(
                [
                    "build", str(csv), str(out),
                    "--format", "binary", "--backend", "rle",
                ]
            )
            == 0
        )
        assert load_diagram(str(out)).store.backend_kind == "rle"

    def test_stats_reports_backend_and_bytes(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "pts.csv"
        csv.write_text("2,8\n5,4\n9,1\n7,6\n")
        out = tmp_path / "d.bin"
        main(["build", str(csv), str(out), "--format", "binary",
              "--backend", "rle"])
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        output = capsys.readouterr().out
        assert "backend: rle" in output
        assert "store_nbytes:" in output

    def test_update_batches_multiple_ops(self, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "pts.csv"
        csv.write_text("2,8\n5,4\n9,1\n7,6\n")
        out = tmp_path / "d.bin"
        main(["build", str(csv), str(out), "--format", "binary"])
        capsys.readouterr()
        assert (
            main(
                [
                    "update", str(out),
                    "--op", "insert:3,3", "--op", "insert:6,2", "--verify",
                ]
            )
            == 0
        )
        assert "batched 2 ops" in capsys.readouterr().out


class TestBackendPrimitives:
    def test_rle_from_dense_round_trips(self):
        rng = np.random.default_rng(0)
        ids = np.repeat(
            rng.integers(0, 5, size=(6, 7)), 3, axis=1
        ).astype(np.int32)
        rle = RLEBackend.from_dense(ids)
        assert (rle.to_dense() == ids).all()
        dense = DenseBackend(ids)
        assert rle.nbytes() < dense.nbytes()

    def test_store_requires_known_backend(self):
        ids = np.zeros((2, 2), dtype=np.int32)
        store = ResultStore((2, 2), DenseBackend(ids), [()])
        assert store.backend_kind == "dense"
        assert store.nbytes > 0
