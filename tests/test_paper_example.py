"""The paper's Figure 1 running example, reconstructed and verified.

The exact coordinates in the paper's Table (Fig. 1a) are corrupted in the
available text, but Section I states the query outcomes precisely for
``q = (10, 80)``:

* quadrant skyline (first quadrant): ``{p3, p8, p10}``;
* second quadrant: ``{p6}``; third: empty; fourth: ``{p11}``;
* global skyline: ``{p3, p6, p8, p10, p11}``;
* dynamic skyline: ``{p6, p11}`` (via the mapped points t6, t11).

This module fixes a hotel dataset consistent with every one of those
statements and pins the whole pipeline to them.  Ids 0..10 correspond to
the paper's p1..p11.
"""

import pytest

from repro.diagram import (
    dynamic_scanning,
    global_diagram,
    quadrant_baseline,
    quadrant_dsg,
    quadrant_scanning,
    quadrant_sweeping,
)
from repro.index.engine import SkylineDatabase
from repro.skyline.mapping import map_to_query
from repro.skyline.queries import (
    dynamic_skyline,
    global_skyline,
    quadrant_skyline,
)

QUERY = (10.0, 80.0)
HOTELS = [
    (2, 98),  # p1
    (17, 105),  # p2
    (16, 100),  # p3
    (20, 103),  # p4
    (26, 94),  # p5
    (4, 90),  # p6
    (24, 73),  # p7
    (19, 95),  # p8
    (23, 74),  # p9
    (24, 91),  # p10
    (22, 75),  # p11
]

P3, P6, P8, P10, P11 = 2, 5, 7, 9, 10


class TestFigure1DirectEvaluation:
    def test_first_quadrant_skyline(self):
        assert quadrant_skyline(HOTELS, QUERY, mask=0) == (P3, P8, P10)

    def test_second_quadrant_skyline(self):
        assert quadrant_skyline(HOTELS, QUERY, mask=0b01) == (P6,)

    def test_third_quadrant_is_empty(self):
        assert quadrant_skyline(HOTELS, QUERY, mask=0b11) == ()

    def test_fourth_quadrant_skyline(self):
        assert quadrant_skyline(HOTELS, QUERY, mask=0b10) == (P11,)

    def test_global_skyline_is_the_union(self):
        assert global_skyline(HOTELS, QUERY) == (P3, P6, P8, P10, P11)

    def test_dynamic_skyline_via_mapped_points(self):
        # "It is easy to see that t6 and t11 are skyline in the mapped
        # space, which means p6 and p11 are the dynamic skyline."
        assert dynamic_skyline(HOTELS, QUERY) == (P6, P11)

    def test_t6_and_t11_dominate_the_mapped_space(self):
        from repro.geometry.dominance import dominates

        mapped = map_to_query(HOTELS, QUERY)
        for i, t in enumerate(mapped):
            if i in (P6, P11):
                continue
            assert dominates(mapped[P6], t) or dominates(mapped[P11], t)

    def test_dynamic_subset_of_global(self):
        assert set(dynamic_skyline(HOTELS, QUERY)) <= set(
            global_skyline(HOTELS, QUERY)
        )


class TestFigure1ThroughDiagrams:
    @pytest.mark.parametrize(
        "build", [quadrant_baseline, quadrant_dsg, quadrant_scanning]
    )
    def test_quadrant_diagram_answers_figure1(self, build):
        assert build(HOTELS).query(QUERY) == (P3, P8, P10)

    def test_sweeping_answers_figure1(self):
        assert quadrant_sweeping(HOTELS).query(QUERY) == (P3, P8, P10)

    def test_global_diagram_answers_figure1(self):
        assert global_diagram(HOTELS).query(QUERY) == (
            P3,
            P6,
            P8,
            P10,
            P11,
        )

    def test_dynamic_diagram_answers_figure1(self):
        assert dynamic_scanning(HOTELS).query(QUERY) == (P6, P11)

    def test_database_answers_figure1(self):
        db = SkylineDatabase(HOTELS)
        assert db.query(QUERY, kind="quadrant") == (P3, P8, P10)
        assert db.query(QUERY, kind="global") == (P3, P6, P8, P10, P11)
        assert db.query(QUERY, kind="dynamic") == (P6, P11)

    def test_figure3_shaded_region_analogue(self):
        # Fig. 3 highlights a polyomino whose queries share one result;
        # verify the polyomino containing q answers uniformly.
        diagram = quadrant_scanning(HOTELS)
        cell = diagram.grid.locate(QUERY)
        for poly in diagram.polyominos():
            if cell in poly.cells:
                for other in poly.cells:
                    assert diagram.result_at(other) == (P3, P8, P10)
                break
        else:  # pragma: no cover - would mean merging lost a cell
            pytest.fail("query cell not found in any polyomino")
