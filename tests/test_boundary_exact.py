"""Boundary exactness: lookup == direct evaluation on measure-zero inputs.

These property tests plant queries *exactly* on the structures where the
point-location fast path historically disagreed with direct evaluation:
grid vertices, grid edges, and (for the dynamic diagram) bisector lines.
For every query kind and every quadrant mask the diagram lookup must now
return the same ids as ``query_from_scratch`` — no recompute fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.subcell import SubcellGrid
from repro.index.engine import SkylineDatabase

from tests.conftest import points_2d

KINDS = ("quadrant", "global", "dynamic", "skyband")


def _boundary_queries(db: SkylineDatabase, limit: int = 12):
    """Queries on grid vertices, edges, and dynamic bisector lines."""
    xs, ys = SubcellGrid(db.dataset).axes  # point lines AND bisectors
    queries = []
    # Vertices (line crossings) — includes bisector/bisector crossings.
    queries += [(x, y) for x in xs for y in ys]
    # Edges: one coordinate on a line, the other strictly between lines.
    off_x = (xs[0] + xs[-1]) / 2.0 + 0.25
    off_y = (ys[0] + ys[-1]) / 2.0 + 0.25
    queries += [(x, off_y) for x in xs]
    queries += [(off_x, y) for y in ys]
    # The data points themselves sit on grid vertices by construction.
    queries += [tuple(map(float, p)) for p in db.dataset]
    return queries[:limit] + queries[-limit:]


class TestLookupEqualsScratchOnBoundaries:
    @given(points_2d(max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_quadrant_all_masks(self, pts):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            for mask in range(4):
                assert db.query(q, kind="quadrant", mask=mask) == (
                    db.query_from_scratch(q, kind="quadrant", mask=mask)
                ), (pts, q, mask)

    @given(points_2d(max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_global(self, pts):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            assert db.query(q, kind="global") == db.query_from_scratch(
                q, kind="global"
            ), (pts, q)

    @given(points_2d(max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_dynamic_on_bisectors(self, pts):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            assert db.query(q, kind="dynamic") == db.query_from_scratch(
                q, kind="dynamic"
            ), (pts, q)

    @given(points_2d(max_size=5), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_skyband(self, pts, k):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            assert db.query(q, kind="skyband", k=k) == (
                db.query_from_scratch(q, kind="skyband", k=k)
            ), (pts, q, k)

    @given(points_2d(max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_per_query_on_boundaries(self, pts):
        db = SkylineDatabase(pts)
        queries = _boundary_queries(db)
        for kind in ("quadrant", "global", "dynamic"):
            assert db.query_batch(queries, kind=kind) == [
                db.query(q, kind=kind) for q in queries
            ], (pts, kind)
        for mask in range(4):
            assert db.query_batch(queries, kind="quadrant", mask=mask) == [
                db.query(q, kind="quadrant", mask=mask) for q in queries
            ], (pts, mask)


def _boundary_boxes(db: SkylineDatabase):
    """Constraint boxes whose faces sit exactly on grid lines."""
    xs, ys = SubcellGrid(db.dataset).axes
    full = ((xs[0], ys[0]), (xs[-1], ys[-1]))
    half = ((xs[len(xs) // 2], ys[0]), (xs[-1], ys[len(ys) // 2]))
    line = ((xs[0], ys[0]), (xs[0], ys[-1]))  # degenerate: zero width
    return [
        tuple(tuple(float(c) for c in corner) for corner in box)
        for box in (full, half, line)
    ]


def _brute_constrained(points, query, k, mask, box):
    """Independent O(n^2) oracle for the constrained k-skyband."""
    lo, hi = box
    dim = len(query)
    cands = []
    for i, p in enumerate(points):
        ok = all(lo[d] <= p[d] <= hi[d] for d in range(dim)) and all(
            p[d] <= query[d] if mask >> d & 1 else p[d] >= query[d]
            for d in range(dim)
        )
        if ok:
            cands.append((i, tuple(abs(p[d] - query[d]) for d in range(dim))))
    kept = []
    for i, mi in cands:
        dominators = sum(
            1
            for _, mj in cands
            if mj != mi and all(a <= b for a, b in zip(mj, mi))
        )
        if dominators < k:
            kept.append(i)
    return tuple(kept)


class TestConstrainedDiversifiedBoundaries:
    """Every mask orientation x k in {1,2,3}, on measure-zero queries.

    Box faces coincide with grid lines and data coordinates, and the
    queries sit on vertices/edges/data points, so every closed-boundary
    decision (box face, quadrant edge, skyband tie) is exercised at
    once.  The engine path covers the combinations its diagrams admit
    (any mask at k=1, any k at mask 0); the from-scratch path is pinned
    against an independent brute-force oracle for *all* mask x k
    combinations, reflected skybands included.
    """

    @given(points_2d(max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_constrained_every_mask_and_k(self, pts):
        db = SkylineDatabase(pts)
        boxes = _boundary_boxes(db)[:2]
        for q in _boundary_queries(db, limit=4):
            for box in boxes:
                for mask in range(4):
                    for k in (1, 2, 3):
                        expected = _brute_constrained(
                            db.dataset, q, k, mask, box
                        )
                        assert db.query_from_scratch(
                            q, kind="constrained", mask=mask, k=k, box=box
                        ) == expected, (pts, q, mask, k, box)
                        if k == 1 or mask == 0:
                            assert db.query(
                                q, kind="constrained",
                                mask=mask, k=k, box=box,
                            ) == expected, (pts, q, mask, k, box)

    @given(points_2d(max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_degenerate_box_on_boundaries(self, pts):
        # A zero-width box lying exactly on a grid line: the closed
        # semantics must keep points *on* the line, on every mask.
        db = SkylineDatabase(pts)
        box = _boundary_boxes(db)[2]
        for q in _boundary_queries(db, limit=6):
            for mask in range(4):
                assert db.query(
                    q, kind="constrained", mask=mask, box=box
                ) == db.query_from_scratch(
                    q, kind="constrained", mask=mask, box=box
                ), (pts, q, mask)

    @given(points_2d(max_size=5), st.integers(1, 3))
    @settings(max_examples=10, deadline=None)
    def test_diversified_on_boundaries(self, pts, m):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db, limit=6):
            for k in (1, 2, 3):
                assert db.query(
                    q, kind="diversified", k=k, diversify=m
                ) == db.query_from_scratch(
                    q, kind="diversified", k=k, diversify=m
                ), (pts, q, k, m)

    @given(points_2d(max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_spec_batch_matches_per_query_on_boundaries(self, pts):
        db = SkylineDatabase(pts)
        queries = _boundary_queries(db, limit=6)
        box = _boundary_boxes(db)[1]
        for kwargs in (
            dict(kind="constrained", box=box),
            dict(kind="constrained", mask=3, box=box),
            dict(kind="constrained", k=2, box=box, diversify=2),
            dict(kind="diversified", k=2, diversify=2),
        ):
            assert db.query_batch(queries, **kwargs) == [
                db.query(q, **kwargs) for q in queries
            ], (pts, kwargs)


class TestBatchEdgeCases:
    @pytest.mark.parametrize("kind", KINDS)
    def test_empty_batch(self, kind):
        db = SkylineDatabase([(1.0, 2.0), (2.0, 1.0)])
        assert db.query_batch([], kind=kind, k=2) == []
        empty = np.empty((0, 2), dtype=np.float64)
        assert db.query_batch(empty, kind=kind, k=2) == []

    @pytest.mark.parametrize("kind", KINDS)
    def test_single_point_dataset(self, kind):
        db = SkylineDatabase([(3.0, 3.0)])
        queries = [
            (0.0, 0.0),
            (3.0, 3.0),  # exactly on the point / its grid vertex
            (3.0, 0.0),  # on one grid line
            (6.0, 6.0),  # across the (degenerate) bisector structure
        ]
        assert db.query_batch(queries, kind=kind, k=1) == [
            db.query_from_scratch(q, kind=kind, k=1) for q in queries
        ]

    def test_negative_zero_query(self):
        # -0.0 == 0.0 must land on the boundary, not beside it.
        db = SkylineDatabase([(0.0, 0.0), (4.0, 4.0)])
        q = (-0.0, 2.0)
        for kind in ("quadrant", "global", "dynamic"):
            assert db.query(q, kind=kind) == db.query_from_scratch(
                q, kind=kind
            )
