"""Boundary exactness: lookup == direct evaluation on measure-zero inputs.

These property tests plant queries *exactly* on the structures where the
point-location fast path historically disagreed with direct evaluation:
grid vertices, grid edges, and (for the dynamic diagram) bisector lines.
For every query kind and every quadrant mask the diagram lookup must now
return the same ids as ``query_from_scratch`` — no recompute fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.subcell import SubcellGrid
from repro.index.engine import SkylineDatabase

from tests.conftest import points_2d

KINDS = ("quadrant", "global", "dynamic", "skyband")


def _boundary_queries(db: SkylineDatabase, limit: int = 12):
    """Queries on grid vertices, edges, and dynamic bisector lines."""
    xs, ys = SubcellGrid(db.dataset).axes  # point lines AND bisectors
    queries = []
    # Vertices (line crossings) — includes bisector/bisector crossings.
    queries += [(x, y) for x in xs for y in ys]
    # Edges: one coordinate on a line, the other strictly between lines.
    off_x = (xs[0] + xs[-1]) / 2.0 + 0.25
    off_y = (ys[0] + ys[-1]) / 2.0 + 0.25
    queries += [(x, off_y) for x in xs]
    queries += [(off_x, y) for y in ys]
    # The data points themselves sit on grid vertices by construction.
    queries += [tuple(map(float, p)) for p in db.dataset]
    return queries[:limit] + queries[-limit:]


class TestLookupEqualsScratchOnBoundaries:
    @given(points_2d(max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_quadrant_all_masks(self, pts):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            for mask in range(4):
                assert db.query(q, kind="quadrant", mask=mask) == (
                    db.query_from_scratch(q, kind="quadrant", mask=mask)
                ), (pts, q, mask)

    @given(points_2d(max_size=6))
    @settings(max_examples=20, deadline=None)
    def test_global(self, pts):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            assert db.query(q, kind="global") == db.query_from_scratch(
                q, kind="global"
            ), (pts, q)

    @given(points_2d(max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_dynamic_on_bisectors(self, pts):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            assert db.query(q, kind="dynamic") == db.query_from_scratch(
                q, kind="dynamic"
            ), (pts, q)

    @given(points_2d(max_size=5), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_skyband(self, pts, k):
        db = SkylineDatabase(pts)
        for q in _boundary_queries(db):
            assert db.query(q, kind="skyband", k=k) == (
                db.query_from_scratch(q, kind="skyband", k=k)
            ), (pts, q, k)

    @given(points_2d(max_size=5))
    @settings(max_examples=15, deadline=None)
    def test_batch_matches_per_query_on_boundaries(self, pts):
        db = SkylineDatabase(pts)
        queries = _boundary_queries(db)
        for kind in ("quadrant", "global", "dynamic"):
            assert db.query_batch(queries, kind=kind) == [
                db.query(q, kind=kind) for q in queries
            ], (pts, kind)
        for mask in range(4):
            assert db.query_batch(queries, kind="quadrant", mask=mask) == [
                db.query(q, kind="quadrant", mask=mask) for q in queries
            ], (pts, mask)


class TestBatchEdgeCases:
    @pytest.mark.parametrize("kind", KINDS)
    def test_empty_batch(self, kind):
        db = SkylineDatabase([(1.0, 2.0), (2.0, 1.0)])
        assert db.query_batch([], kind=kind, k=2) == []
        empty = np.empty((0, 2), dtype=np.float64)
        assert db.query_batch(empty, kind=kind, k=2) == []

    @pytest.mark.parametrize("kind", KINDS)
    def test_single_point_dataset(self, kind):
        db = SkylineDatabase([(3.0, 3.0)])
        queries = [
            (0.0, 0.0),
            (3.0, 3.0),  # exactly on the point / its grid vertex
            (3.0, 0.0),  # on one grid line
            (6.0, 6.0),  # across the (degenerate) bisector structure
        ]
        assert db.query_batch(queries, kind=kind, k=1) == [
            db.query_from_scratch(q, kind=kind, k=1) for q in queries
        ]

    def test_negative_zero_query(self):
        # -0.0 == 0.0 must land on the boundary, not beside it.
        db = SkylineDatabase([(0.0, 0.0), (4.0, 4.0)])
        q = (-0.0, 2.0)
        for kind in ("quadrant", "global", "dynamic"):
            assert db.query(q, kind=kind) == db.query_from_scratch(
                q, kind=kind
            )
