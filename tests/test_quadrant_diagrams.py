"""Cross-validation of the four quadrant-diagram construction algorithms.

The strongest correctness statements in the suite:

* baseline (Alg. 1), DSG (Alg. 2) and scanning (Alg. 3) produce *identical*
  diagrams on arbitrary inputs, including ties and duplicates;
* every cell's stored result equals a from-scratch quadrant skyline of an
  interior query point (the diagram's defining property);
* the saturating multiset identity of Theorem 1 holds cell-by-cell.
"""

import pytest
from hypothesis import given, settings

from repro._util import multiset_add_sub
from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.diagram.quadrant_dsg import quadrant_dsg
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.dsg.graph import DirectedSkylineGraph
from repro.errors import DimensionalityError
from repro.skyline.queries import quadrant_skyline

from tests.conftest import distinct_points_2d, points_2d

ALGORITHMS = [quadrant_baseline, quadrant_dsg, quadrant_scanning]


@pytest.fixture(params=ALGORITHMS, ids=["baseline", "dsg", "scanning"])
def algorithm(request):
    return request.param


class TestSmallExamples:
    def test_single_point(self, algorithm):
        diagram = algorithm([(5, 5)])
        assert diagram.result_at((0, 0)) == (0,)
        assert diagram.result_at((1, 0)) == ()
        assert diagram.result_at((0, 1)) == ()
        assert diagram.result_at((1, 1)) == ()

    def test_staircase(self, algorithm, staircase):
        diagram = algorithm(staircase)
        assert diagram.result_at((0, 0)) == (0, 1, 2)
        assert diagram.result_at((1, 0)) == (1, 2)
        assert diagram.result_at((2, 0)) == (2,)
        assert diagram.result_at((3, 3)) == ()

    def test_dominated_point_never_alone(self, algorithm):
        # p1 is dominated by p0 wherever both are candidates.
        diagram = algorithm([(1, 1), (2, 2)])
        assert diagram.result_at((0, 0)) == (0,)
        assert diagram.result_at((1, 1)) == (1,)
        assert diagram.result_at((1, 0)) == (1,)

    def test_duplicate_points_reported_together(self, algorithm):
        diagram = algorithm([(3, 3), (3, 3)])
        assert diagram.result_at((0, 0)) == (0, 1)

    def test_rejects_higher_dimensions(self, algorithm):
        with pytest.raises(DimensionalityError):
            algorithm([(1, 2, 3)])

    def test_metadata(self, algorithm):
        diagram = algorithm([(1, 1)])
        assert diagram.kind == "quadrant"
        assert diagram.mask == 0
        assert diagram.dim == 2


class TestQueryInterface:
    def test_query_locates_cells(self, staircase):
        diagram = quadrant_scanning(staircase)
        assert diagram.query((0, 0)) == (0, 1, 2)
        assert diagram.query((3, 2)) == (1,)
        assert diagram.query((2.5, 0.5)) == (1, 2)
        assert diagram.query((100, 100)) == ()

    def test_query_on_grid_line_uses_closed_semantics(self, staircase):
        diagram = quadrant_scanning(staircase)
        # Query exactly on p1's lines: p1 itself is a candidate.
        assert 1 in diagram.query((5, 4))

    def test_query_points(self, staircase):
        diagram = quadrant_scanning(staircase)
        assert diagram.query_points((6, 0)) == [(9.0, 1.0)]


class TestCrossValidation:
    @given(points_2d(max_size=14))
    @settings(max_examples=60)
    def test_three_algorithms_agree(self, pts):
        reference = quadrant_baseline(pts)
        assert quadrant_dsg(pts) == reference
        assert quadrant_scanning(pts) == reference

    @given(distinct_points_2d(max_size=10))
    def test_agreement_in_general_position(self, pts):
        reference = quadrant_baseline(pts)
        assert quadrant_dsg(pts) == reference
        assert quadrant_scanning(pts) == reference

    @given(points_2d(max_size=10))
    @settings(max_examples=40)
    def test_cells_match_from_scratch_evaluation(self, pts):
        diagram = quadrant_scanning(pts)
        for cell, result in diagram.cells():
            representative = diagram.grid.representative(cell)
            assert result == quadrant_skyline(pts, representative)

    @given(points_2d(max_size=10))
    @settings(max_examples=40)
    def test_dsg_with_full_links_agrees(self, pts):
        full = DirectedSkylineGraph(pts, links="full")
        assert quadrant_dsg(pts, dsg=full) == quadrant_baseline(pts)


class TestTheorem1:
    @given(points_2d(min_size=1, max_size=12))
    @settings(max_examples=60)
    def test_multiset_identity_holds_cellwise(self, pts):
        """Theorem 1, generalized to ties via saturating subtraction."""
        diagram = quadrant_baseline(pts)
        sx, sy = diagram.grid.shape
        empty = ()

        def sky(i, j):
            if i >= sx or j >= sy:
                return empty
            return diagram.result_at((i, j))

        for i in range(sx):
            for j in range(sy):
                corner = diagram.grid.corner_points((i + 1, j + 1))
                if corner:
                    assert sky(i, j) == corner
                else:
                    assert sky(i, j) == multiset_add_sub(
                        sky(i + 1, j), sky(i, j + 1), sky(i + 1, j + 1)
                    )

    def test_corner_cell_result_is_the_corner_point(self):
        diagram = quadrant_scanning([(1, 1), (5, 5)])
        # Cell (1, 1) has p1=(5,5) on its upper-right corner.
        assert diagram.result_at((1, 1)) == (1,)


class TestDiagramStructure:
    @given(points_2d(min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_top_and_right_borders_are_empty(self, pts):
        diagram = quadrant_scanning(pts)
        sx, sy = diagram.grid.shape
        for i in range(sx):
            assert diagram.result_at((i, sy - 1)) == ()
        for j in range(sy):
            assert diagram.result_at((sx - 1, j)) == ()

    @given(points_2d(min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_origin_cell_is_the_full_skyline(self, pts):
        from repro.skyline.algorithms import skyline_brute

        diagram = quadrant_scanning(pts)
        assert diagram.result_at((0, 0)) == skyline_brute(pts)

    @given(points_2d(min_size=1, max_size=10))
    @settings(max_examples=40)
    def test_results_shrink_moving_up_right(self, pts):
        """Candidates only disappear moving right; results never grow in
        the sense of gaining a point that was already a non-candidate."""
        diagram = quadrant_scanning(pts)
        sx, sy = diagram.grid.shape
        ranks = diagram.grid.ranks
        for i in range(sx):
            for j in range(sy):
                for pid in diagram.result_at((i, j)):
                    rx, ry = ranks[pid]
                    assert rx > i and ry > j

    def test_equality_semantics(self, staircase):
        a = quadrant_scanning(staircase)
        b = quadrant_baseline(staircase)
        assert a == b
        assert a != quadrant_scanning([(1, 1)])
        assert a != "not a diagram"

    def test_result_count_validation(self, staircase):
        from repro.diagram.base import SkylineDiagram
        from repro.geometry.grid import Grid

        grid = Grid(staircase)
        with pytest.raises(ValueError, match="cell results"):
            SkylineDiagram(grid, {(0, 0): ()})

    def test_kind_validation(self, staircase):
        from repro.diagram.base import SkylineDiagram
        from repro.geometry.grid import Grid

        grid = Grid([(1, 1)])
        with pytest.raises(ValueError, match="kind"):
            SkylineDiagram(grid, {c: () for c in grid.cells()}, kind="bogus")

    def test_repr_mentions_algorithm(self, staircase):
        assert "scanning" in repr(quadrant_scanning(staircase))


class TestInterningAblation:
    @given(points_2d(max_size=12))
    @settings(max_examples=40)
    def test_interned_and_plain_agree(self, pts):
        assert quadrant_scanning(pts, intern_results=False) == (
            quadrant_scanning(pts)
        )

    def test_interning_shares_tuples(self, staircase):
        diagram = quadrant_scanning(staircase)
        empties = [
            result for _, result in diagram.cells() if result == ()
        ]
        assert all(e is empties[0] for e in empties)
