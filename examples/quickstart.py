"""Quickstart: build a skyline diagram and answer queries in real time.

Run with:  python examples/quickstart.py
"""

from repro import (
    SkylineDatabase,
    quadrant_scanning,
    quadrant_sweeping,
    skyline,
)
from repro.datasets.generators import independent
from repro.viz.ascii_art import ascii_diagram


def main() -> None:
    # A small 2-D dataset: minimize both attributes.
    points = independent(12, seed=7, domain=20)
    print(f"dataset: {points}\n")

    # The plain skyline (Definition 1).
    print(f"skyline ids: {list(skyline(points))}\n")

    # Build the quadrant skyline diagram with the O(n^3) scanning algorithm:
    # every region answers "what is the skyline among points up-right of q?"
    diagram = quadrant_scanning(points)
    print(diagram)
    print(ascii_diagram(diagram, legend=False))
    print()

    # Answer queries by point location - no skyline recomputation.
    for query in [(0, 0), (10, 10), (19, 2)]:
        print(f"quadrant skyline at {query}: {list(diagram.query(query))}")
    print()

    # The O(n^2) sweeping algorithm builds the same regions geometry-first.
    sweep = quadrant_sweeping(points)
    print(f"sweeping found {sweep.num_regions} regions "
          f"(cell merge found {len(diagram.polyominos())})")
    print()

    # One-stop shop: SkylineDatabase builds diagrams lazily per query kind.
    db = SkylineDatabase(points)
    q = (9.5, 9.5)
    for kind in ("quadrant", "global", "dynamic"):
        print(f"{kind:>8} skyline at {q}: {list(db.query(q, kind=kind))}")


if __name__ == "__main__":
    main()
