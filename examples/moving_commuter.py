"""Continuous skyline for a moving query (related work [7], [10], [24]).

A commuter drives across town; the set of "similar" hotels (the dynamic
skyline around their position) changes only when they cross a bisector of
the precomputed diagram.  The timeline below is exact — no resampling, no
velocity assumptions — which is precisely what the skyline diagram adds
over the safe-zone techniques that handle a single dynamic attribute.

Run with:  python examples/moving_commuter.py
"""

from repro.applications.continuous import continuous_skyline
from repro.datasets.generators import clustered
from repro.diagram import dynamic_scanning


def main() -> None:
    points = clustered(10, seed=21, clusters=3, domain=40)
    diagram = dynamic_scanning(points)
    print(
        f"dynamic diagram over {len(points)} points: "
        f"{diagram.subcells.num_subcells} subcells, "
        f"{len(diagram.distinct_results())} distinct results"
    )

    start, end = (2.0, 2.0), (38.0, 30.0)
    timeline = continuous_skyline(diagram, start, end)
    print(f"\ndriving {start} -> {end}: {len(timeline)} result changes\n")
    for entry in timeline:
        names = ", ".join(f"p{i}" for i in entry.result)
        print(
            f"  t in [{entry.t_enter:.3f}, {entry.t_exit:.3f}] : "
            f"{{{names}}}"
        )

    # Sanity: the timeline is exactly what dense re-evaluation would find.
    from repro.skyline.queries import dynamic_skyline

    for entry in timeline:
        mid = (entry.t_enter + entry.t_exit) / 2
        probe = tuple(s + mid * (e - s) for s, e in zip(start, end))
        assert entry.result == dynamic_skyline(points, probe)
    print("\ntimeline verified against from-scratch evaluation")


if __name__ == "__main__":
    main()
