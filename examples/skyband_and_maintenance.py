"""Extensions: k-skyband diagrams and incremental maintenance.

The paper's analogy continues past k = 1: like k-th order Voronoi diagrams
for kNN, a k-skyband diagram precomputes "top-k-ish" skyline queries.  And
because a point only influences cells below-left of itself, the diagram
can absorb inserts and deletes without a full rebuild.

Run with:  python examples/skyband_and_maintenance.py
"""

import time

from repro.diagram import (
    delete_point,
    insert_point,
    quadrant_scanning,
    skyband_sweep,
)
from repro.datasets.generators import independent


def main() -> None:
    points = independent(60, seed=17, domain=40)

    # --- k-skyband diagrams ------------------------------------------------
    query = (5.0, 5.0)
    for k in (1, 2, 3):
        diagram = skyband_sweep(points, k)
        result = diagram.query(query)
        print(
            f"k={k}: {len(diagram.distinct_results())} distinct results; "
            f"{k}-skyband at {query} has {len(result)} points"
        )
    print()

    # --- incremental maintenance -------------------------------------------
    diagram = quadrant_scanning(points)

    newcomer = (3.0, 2.0)
    t0 = time.perf_counter()
    updated = insert_point(diagram, newcomer)
    t_insert = time.perf_counter() - t0

    t0 = time.perf_counter()
    rebuilt = quadrant_scanning(list(points) + [newcomer])
    t_rebuild = time.perf_counter() - t0

    assert updated == rebuilt
    print(
        f"insert of {newcomer}: incremental {t_insert * 1e3:.1f} ms vs "
        f"rebuild {t_rebuild * 1e3:.1f} ms "
        f"({t_rebuild / t_insert:.1f}x faster), results identical"
    )

    t0 = time.perf_counter()
    shrunk = delete_point(updated, len(points))
    t_delete = time.perf_counter() - t0
    assert shrunk == diagram
    print(
        f"delete of the same point: {t_delete * 1e3:.1f} ms, "
        f"diagram restored exactly"
    )


if __name__ == "__main__":
    main()
