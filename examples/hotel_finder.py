"""The paper's running example: similar-hotel retrieval (Fig. 1).

A hotel manager wants all hotels "similar" to a hypothetical position
(distance to downtown, price).  The three query semantics answer different
questions:

* quadrant  - competitors that are farther AND pricier (first quadrant);
* global    - competitors undominated within each of the four quadrants;
* dynamic   - competitors closest to the query in the |distance| sense.

Run with:  python examples/hotel_finder.py
"""

from repro import SkylineDatabase
from repro.datasets.real import hotels
from repro.viz.svg import render_svg


def main() -> None:
    dataset = hotels(n=40, seed=11, domain=50)
    print(f"{len(dataset)} hotels over (distance to downtown, price)")

    db = SkylineDatabase(dataset, precompute=["quadrant", "global"])
    query = (20.0, 20.0)  # the manager's hypothetical hotel

    quadrant = db.query(query, kind="quadrant")
    global_ = db.query(query, kind="global")
    dynamic = db.query(query, kind="dynamic")

    print(f"\nquery hotel q = {query}")
    print(f"quadrant skyline (farther & pricier competitors): {list(quadrant)}")
    print(f"global skyline  (per-quadrant undominated):       {list(global_)}")
    print(f"dynamic skyline (most similar overall):           {list(dynamic)}")

    # Dynamic is always a subset of global (Sec. III of the paper).
    assert set(dynamic) <= set(global_)

    print("\nper-hotel detail of the dynamic skyline:")
    for hotel_id in dynamic:
        distance, price = dataset[hotel_id]
        print(
            f"  {dataset.name_of(hotel_id)}: distance={distance:.0f}, "
            f"price={price:.0f}"
        )

    # How robust is the answer? The polyomino containing q is the exact
    # region over which this result holds (the paper's "safe zone").
    diagram = db.quadrant_diagram()
    cell = diagram.grid.locate(query)
    for poly in diagram.polyominos():
        if cell in poly.cells:
            min_i, min_j, max_i, max_j = poly.bounding_box()
            print(
                f"\nthe quadrant answer is constant over a polyomino of "
                f"{poly.size} cells (lattice bbox {min_i},{min_j} .. "
                f"{max_i},{max_j})"
            )
            break

    svg_path = "hotel_diagram.svg"
    with open(svg_path, "w") as handle:
        handle.write(render_svg(diagram, show_points=True))
    print(f"wrote the full skyline diagram to {svg_path}")


if __name__ == "__main__":
    main()
