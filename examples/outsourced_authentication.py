"""Authenticated outsourced skyline queries (paper Sec. I, application 2).

The data owner precomputes the skyline diagram, signs a Merkle tree over
its polyominos, and hands both to an untrusted cloud server.  Clients get
each answer with a verification object and detect any tampering.

Run with:  python examples/outsourced_authentication.py
"""

from repro.applications.authentication import (
    AuthenticatedSkylineClient,
    AuthenticatedSkylineServer,
    DiagramSigner,
    VerificationObject,
)
from repro.datasets.generators import anticorrelated
from repro.diagram import quadrant_scanning
from repro.errors import AuthenticationError


def main() -> None:
    # --- data owner ----------------------------------------------------
    points = anticorrelated(30, seed=4, domain=40)
    diagram = quadrant_scanning(points)
    key = b"owner-signing-key"
    signer = DiagramSigner(diagram, key)
    print(
        f"owner: built a diagram with {len(signer.polyominos)} polyominos, "
        f"Merkle root {signer.tree.root.hex()[:16]}..."
    )

    # --- untrusted server ----------------------------------------------
    server = AuthenticatedSkylineServer(signer)

    # --- client ----------------------------------------------------------
    client = AuthenticatedSkylineClient(
        diagram.grid.axes, signer.signed_root(), key
    )
    query = (15.0, 15.0)
    vo = server.answer(query)
    result = client.verify(query, vo)
    print(f"client: verified skyline at {query} -> {list(result)}")
    print(f"        proof path length: {len(vo.path)} hashes")

    # --- a malicious server ----------------------------------------------
    forged = VerificationObject(
        result=tuple(list(vo.result)[:-1]),  # drop one skyline point
        cells=vo.cells,
        leaf_index=vo.leaf_index,
        path=vo.path,
    )
    try:
        client.verify(query, forged)
    except AuthenticationError as exc:
        print(f"client: tampered answer rejected ({exc})")


if __name__ == "__main__":
    main()
