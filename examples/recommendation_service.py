"""A mini recommendation service built on the skyline diagram.

Pulls the library's service-layer pieces together:

* a :class:`PolyominoCache` materializes full records once per region,
* ``why_not`` explains missing favourites with a minimal query move,
* the region adjacency graph quantifies answer sensitivity.

Run with:  python examples/recommendation_service.py
"""

from repro.applications.caching import PolyominoCache
from repro.applications.why_not import why_not
from repro.datasets.real import hotels
from repro.datasets.workloads import clustered_queries
from repro.diagram import quadrant_scanning
from repro.diagram.statistics import diagram_statistics
from repro.diagram.topology import neighbouring_results, region_adjacency


def main() -> None:
    dataset = hotels(n=80, seed=23, domain=60)
    diagram = quadrant_scanning(dataset)
    stats = diagram_statistics(diagram)
    print(
        f"service over {stats.num_points} hotels: {stats.num_regions} "
        f"regions, {stats.compression_ratio:.1f} cells/region"
    )

    # --- serve a clustered query workload through the cache ---------------
    fetch_count = 0

    def fetch_records(ids):
        nonlocal fetch_count
        fetch_count += 1
        return [
            {
                "hotel": dataset.name_of(i),
                "distance": dataset[i][0],
                "price": dataset[i][1],
            }
            for i in ids
        ]

    cache = PolyominoCache(diagram, fetch_records, capacity=64)
    queries = clustered_queries(500, (0, 0, 60, 60), seed=1)
    for q in queries:
        cache.get(q)
    print(
        f"served {len(queries)} queries with {fetch_count} record fetches "
        f"(hit rate {cache.hit_rate:.0%})"
    )

    # --- why-not explanation ----------------------------------------------
    query = queries[0]
    answered = diagram.query(query)
    missing = next(i for i in range(len(dataset)) if i not in answered)
    explanation = why_not(diagram, query, missing)
    print(
        f"\nwhy is {dataset.name_of(missing)} missing at "
        f"({query[0]:.1f}, {query[1]:.1f})? move the query "
        f"{explanation.distance:.2f} units and it appears"
    )

    # --- sensitivity ---------------------------------------------------------
    graph = region_adjacency(diagram)
    neighbours = neighbouring_results(diagram, query, graph=graph)
    print(
        f"a tiny perturbation of that query can produce "
        f"{len(neighbours)} other answers"
    )


if __name__ == "__main__":
    main()
