"""The title analogy: Voronoi is to kNN what the skyline diagram is to
skyline queries (paper Figs. 2 and 3).

Both structures partition the plane into regions of constant query result,
turning an O(n)-ish per-query computation into point location.

Run with:  python examples/voronoi_counterpart.py
"""

import random
import time

from repro.datasets.generators import independent
from repro.diagram import quadrant_scanning
from repro.skyline.queries import quadrant_skyline
from repro.voronoi.diagram import VoronoiDiagram
from repro.voronoi.knn import nearest


def main() -> None:
    points = independent(60, seed=13)
    rng = random.Random(0)
    queries = [(rng.random(), rng.random()) for _ in range(2000)]

    # --- the Voronoi side -------------------------------------------------
    voronoi = VoronoiDiagram(points, bbox=(0, 0, 1, 1))
    t0 = time.perf_counter()
    knn_answers = [voronoi.locate(q) for q in queries]
    t_voronoi = time.perf_counter() - t0
    print(
        f"Voronoi diagram: {len(voronoi.cells)} cells; "
        f"{len(queries)} NN queries in {t_voronoi * 1e3:.1f} ms"
    )

    # --- the skyline side -------------------------------------------------
    diagram = quadrant_scanning(points)
    t0 = time.perf_counter()
    lookup_answers = [diagram.query(q) for q in queries]
    t_lookup = time.perf_counter() - t0

    t0 = time.perf_counter()
    scratch_answers = [quadrant_skyline(points, q) for q in queries]
    t_scratch = time.perf_counter() - t0

    assert lookup_answers == scratch_answers
    assert knn_answers == [nearest(points, q) for q in queries]

    print(
        f"skyline diagram: {len(diagram.polyominos())} polyominos; "
        f"{len(queries)} skyline queries in {t_lookup * 1e3:.1f} ms "
        f"(from scratch: {t_scratch * 1e3:.1f} ms, "
        f"{t_scratch / t_lookup:.0f}x slower)"
    )
    print(
        "\nsame deal on both sides: precompute the partition once, then "
        "answer every query by point location."
    )

    # --- and the k-th order analogy -----------------------------------------
    from repro.diagram.skyband import skyband_sweep
    from repro.voronoi.order_k import OrderKVoronoi

    small = points[:15]
    order2 = OrderKVoronoi(small, 2, (0, 0, 1, 1))
    skyband2 = skyband_sweep(small, 2)
    print(
        f"\norder-2 Voronoi: {len(order2.cells)} convex cells "
        f"(constant 2NN set) | 2-skyband diagram: "
        f"{len(skyband2.polyominos())} polyominos (constant 2-skyband)"
    )


if __name__ == "__main__":
    main()
