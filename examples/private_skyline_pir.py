"""Private skyline queries with two-server XOR PIR (paper Sec. I, app. 3).

The diagram is flattened into a cell-record database replicated on two
non-colluding servers; the client retrieves its cell's record without
either server learning which cell was asked.

Run with:  python examples/private_skyline_pir.py
"""

from repro.applications.pir import (
    PirServer,
    PrivateSkylineClient,
    diagram_database,
)
from repro.datasets.generators import independent
from repro.diagram import quadrant_scanning


def main() -> None:
    points = independent(25, seed=9, domain=30)
    diagram = quadrant_scanning(points)

    database = diagram_database(diagram)
    record_bytes = len(database[0])
    print(
        f"flattened the diagram into {len(database)} records of "
        f"{record_bytes} bytes each"
    )

    server_a = PirServer(database)
    server_b = PirServer(database)
    client = PrivateSkylineClient(diagram.grid.axes, diagram.grid.shape)

    for query in [(3.0, 3.0), (15.0, 4.0), (28.0, 28.0)]:
        index = client.cell_index(query)
        selector_a, selector_b = client._pir.selectors(index)
        ones_a = sum(bin(b).count("1") for b in selector_a)
        result = client.query(query, server_a, server_b)
        print(
            f"query {query}: cell record #{index} retrieved privately "
            f"(server A saw a random {ones_a}-bit selector) -> "
            f"skyline {list(result)}"
        )
        assert result == diagram.query(query)

    print("\nall private answers matched the public diagram lookups")


if __name__ == "__main__":
    main()
