"""Query workload generators for benchmarking and examples.

The paper evaluates *construction*; a deployed diagram also needs query
workloads.  Three standard shapes, all seeded and deterministic:

* uniform queries over a bounding box,
* clustered queries (hot spots, the common case for location services),
* trajectories (a moving query sampled along a path — the continuous
  skyline scenario).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.geometry.point import Point

Box = tuple[float, float, float, float]  # (min_x, min_y, max_x, max_y)


def _validate_box(box: Box) -> Box:
    x0, y0, x1, y1 = (float(v) for v in box)
    if not (x0 < x1 and y0 < y1):
        raise DatasetError(f"degenerate bounding box {box}")
    return (x0, y0, x1, y1)


def uniform_queries(n: int, box: Box, seed: int = 0) -> list[Point]:
    """n query points uniform over the box.

    >>> qs = uniform_queries(3, (0, 0, 1, 1), seed=1)
    >>> len(qs), all(0 <= x <= 1 for q in qs for x in q)
    (3, True)
    """
    if n < 1:
        raise DatasetError(f"need at least one query, got {n}")
    x0, y0, x1, y1 = _validate_box(box)
    rng = np.random.default_rng(seed)
    xs = rng.uniform(x0, x1, n)
    ys = rng.uniform(y0, y1, n)
    return [(float(x), float(y)) for x, y in zip(xs, ys)]


def clustered_queries(
    n: int,
    box: Box,
    seed: int = 0,
    hotspots: int = 3,
    spread: float = 0.05,
) -> list[Point]:
    """n queries drawn from Gaussian hot spots inside the box.

    ``spread`` is relative to the box extent; samples are clipped to the
    box so every query stays in-domain.
    """
    if n < 1:
        raise DatasetError(f"need at least one query, got {n}")
    if hotspots < 1:
        raise DatasetError(f"need at least one hotspot, got {hotspots}")
    x0, y0, x1, y1 = _validate_box(box)
    rng = np.random.default_rng(seed)
    centers_x = rng.uniform(x0, x1, hotspots)
    centers_y = rng.uniform(y0, y1, hotspots)
    choice = rng.integers(0, hotspots, n)
    xs = rng.normal(centers_x[choice], (x1 - x0) * spread)
    ys = rng.normal(centers_y[choice], (y1 - y0) * spread)
    xs = np.clip(xs, x0, x1)
    ys = np.clip(ys, y0, y1)
    return [(float(x), float(y)) for x, y in zip(xs, ys)]


def trajectory_queries(
    start: Point, end: Point, steps: int
) -> list[Point]:
    """Evenly spaced samples along a straight trajectory, endpoints included.

    >>> trajectory_queries((0, 0), (4, 2), 3)
    [(0.0, 0.0), (2.0, 1.0), (4.0, 2.0)]
    """
    if steps < 2:
        raise DatasetError(f"a trajectory needs >= 2 steps, got {steps}")
    sx, sy = float(start[0]), float(start[1])
    ex, ey = float(end[0]), float(end[1])
    out: list[Point] = []
    for k in range(steps):
        t = k / (steps - 1)
        out.append((sx + t * (ex - sx), sy + t * (ey - sy)))
    return out


def workload(
    kind: str, n: int, box: Box, seed: int = 0
) -> list[Point]:
    """Dispatch by workload name (``uniform`` or ``clustered``).

    >>> len(workload("clustered", 5, (0, 0, 1, 1)))
    5
    """
    if kind == "uniform":
        return uniform_queries(n, box, seed=seed)
    if kind == "clustered":
        return clustered_queries(n, box, seed=seed)
    raise DatasetError(f"unknown workload kind {kind!r}")
