"""Synthetic workload generators (Börzsönyi et al., the paper's [1]).

The three canonical skyline benchmark distributions:

* **independent** — uniform per dimension; skyline size Θ(log^{d-1} n).
* **correlated**  — points near the main diagonal; tiny skylines (a point
  good in one dimension is good in the others).
* **anticorrelated** — points near the anti-diagonal hyperplane; huge
  skylines (a point good in one dimension is bad in another).

plus a clustered mixture.  All generators are deterministic under ``seed``
and return plain tuples.  ``quantize`` maps any dataset onto an integer
domain of size ``s`` per axis — the knob behind the paper's
``O(min(s, n^2))`` limited-domain analyses (experiment E2/E5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.geometry.point import Point

_DISTRIBUTIONS = ("independent", "correlated", "anticorrelated", "clustered")


def _finish(array: np.ndarray, domain: int | None) -> list[Point]:
    array = np.clip(array, 0.0, 1.0)
    if domain is not None:
        if domain < 1:
            raise DatasetError(f"domain size must be >= 1, got {domain}")
        array = np.floor(array * domain)
        array = np.minimum(array, domain - 1)
    return [tuple(float(x) for x in row) for row in array]


def independent(
    n: int, dim: int = 2, seed: int = 0, domain: int | None = None
) -> list[Point]:
    """Uniform points in the unit hypercube (INDE).

    >>> pts = independent(4, seed=1)
    >>> len(pts), len(pts[0])
    (4, 2)
    """
    _validate(n, dim)
    rng = np.random.default_rng(seed)
    return _finish(rng.random((n, dim)), domain)


def correlated(
    n: int,
    dim: int = 2,
    seed: int = 0,
    domain: int | None = None,
    spread: float = 0.1,
) -> list[Point]:
    """Points concentrated around the main diagonal (CORR).

    Each point is a diagonal position plus small Gaussian per-axis noise;
    ``spread`` controls how tightly the cloud hugs the diagonal.
    """
    _validate(n, dim)
    rng = np.random.default_rng(seed)
    base = rng.random((n, 1))
    noise = rng.normal(0.0, spread, (n, dim))
    return _finish(base + noise, domain)


def anticorrelated(
    n: int,
    dim: int = 2,
    seed: int = 0,
    domain: int | None = None,
    spread: float = 0.05,
) -> list[Point]:
    """Points concentrated around the anti-diagonal hyperplane (ANTI).

    Points are drawn on the plane where coordinates sum to ``dim / 2`` and
    perturbed slightly, producing the large skylines that stress-test
    skyline algorithms.
    """
    _validate(n, dim)
    rng = np.random.default_rng(seed)
    raw = rng.random((n, dim))
    # Shift every point so its coordinates sum to dim/2, then jitter.
    shift = (dim / 2.0 - raw.sum(axis=1, keepdims=True)) / dim
    noise = rng.normal(0.0, spread, (n, dim))
    return _finish(raw + shift + noise, domain)


def clustered(
    n: int,
    dim: int = 2,
    seed: int = 0,
    domain: int | None = None,
    clusters: int = 5,
    spread: float = 0.05,
) -> list[Point]:
    """A mixture of Gaussian clusters with uniform centers."""
    _validate(n, dim)
    if clusters < 1:
        raise DatasetError(f"need at least one cluster, got {clusters}")
    rng = np.random.default_rng(seed)
    centers = rng.random((clusters, dim))
    assignment = rng.integers(0, clusters, n)
    noise = rng.normal(0.0, spread, (n, dim))
    return _finish(centers[assignment] + noise, domain)


def quantize(points: list[Point], domain: int) -> list[Point]:
    """Snap points onto an integer grid of ``domain`` values per axis.

    Values are normalized by the dataset's own bounds first:

    >>> quantize([(0.0, 0.5), (0.999, 0.2)], 10)
    [(0.0, 9.0), (9.0, 0.0)]
    """
    if domain < 1:
        raise DatasetError(f"domain size must be >= 1, got {domain}")
    if not points:
        return []
    lo = [min(p[d] for p in points) for d in range(len(points[0]))]
    hi = [max(p[d] for p in points) for d in range(len(points[0]))]
    out: list[Point] = []
    for p in points:
        row = []
        for d, x in enumerate(p):
            extent = hi[d] - lo[d]
            unit = (x - lo[d]) / extent if extent > 0 else 0.0
            row.append(min(float(domain - 1), np.floor(unit * domain)))
        out.append(tuple(row))
    return out


def generate(
    distribution: str,
    n: int,
    dim: int = 2,
    seed: int = 0,
    domain: int | None = None,
) -> list[Point]:
    """Dispatch by distribution name (the benchmark harness entry point).

    >>> len(generate("anticorrelated", 8, seed=3))
    8
    """
    if distribution not in _DISTRIBUTIONS:
        raise DatasetError(
            f"unknown distribution {distribution!r}; "
            f"expected one of {_DISTRIBUTIONS}"
        )
    maker = {
        "independent": independent,
        "correlated": correlated,
        "anticorrelated": anticorrelated,
        "clustered": clustered,
    }[distribution]
    return maker(n, dim=dim, seed=seed, domain=domain)


def _validate(n: int, dim: int) -> None:
    if n < 1:
        raise DatasetError(f"need at least one point, got n={n}")
    if dim < 1:
        raise DatasetError(f"need at least one dimension, got dim={dim}")
