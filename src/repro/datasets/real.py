"""Substituted "real" datasets (see DESIGN.md, substitutions table).

The paper evaluates on real datasets alongside the synthetic ones; without
network access we ship deterministic generators whose marginal shapes match
the usual suspects in the skyline literature:

* :func:`nba_like` — an NBA-players-style table: per-season counting stats
  (points, rebounds, assists, steals) that are positively correlated with a
  heavy-tailed star population.  Correlated, integer-domained, ~small
  skyline — the structure that makes real data easy for skyline algorithms.
* :func:`hotels` — the paper's running example: price vs distance to
  downtown, anti-correlated (closer hotels charge more), integer domains.

Both are seeded and reproducible; sizes default to laptop-friendly scales.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.geometry.point import Dataset, Point


def nba_like(n: int = 2000, dim: int = 2, seed: int = 2018) -> Dataset:
    """Deterministic NBA-style counting stats (lower = better by negation).

    Stats are generated from a latent per-player "skill" with multiplicative
    noise, then *negated* so the library's min-order convention makes star
    players the skyline.  Dimensions beyond the first four cycle through the
    same recipe with fresh noise.

    >>> ds = nba_like(100)
    >>> len(ds), ds.dim
    (100, 2)
    """
    if n < 1:
        raise DatasetError(f"need at least one player, got n={n}")
    if dim < 1:
        raise DatasetError(f"need at least one stat, got dim={dim}")
    rng = np.random.default_rng(seed)
    skill = rng.lognormal(mean=0.0, sigma=0.6, size=n)
    scales = [25.0, 10.0, 8.0, 2.5]  # points, rebounds, assists, steals
    columns = []
    for d in range(dim):
        scale = scales[d % len(scales)]
        noise = rng.lognormal(mean=0.0, sigma=0.35, size=n)
        stat = np.rint(skill * noise * scale).clip(0, None)
        columns.append(-stat)  # negate: min-order skyline = best players
    rows = np.stack(columns, axis=1)
    return Dataset([tuple(float(x) for x in row) for row in rows])


def hotels(n: int = 200, seed: int = 42, domain: int = 100) -> Dataset:
    """The running example: (distance to downtown, price), anti-correlated.

    Hotels close to downtown are expensive; both attributes are integers in
    ``[0, domain)``.  Minimizing both matches the paper's Figure 1.

    >>> ds = hotels(50)
    >>> len(ds), ds.dim
    (50, 2)
    """
    if n < 1:
        raise DatasetError(f"need at least one hotel, got n={n}")
    if domain < 2:
        raise DatasetError(f"domain must be >= 2, got {domain}")
    rng = np.random.default_rng(seed)
    distance = rng.random(n)
    base_price = 1.0 - distance  # closer -> pricier
    price = np.clip(base_price + rng.normal(0.0, 0.15, n), 0.0, 1.0)
    pts: list[Point] = []
    for d, p in zip(distance, price):
        pts.append(
            (
                float(min(domain - 1, int(d * domain))),
                float(min(domain - 1, int(p * domain))),
            )
        )
    return Dataset(pts)


def load_real(name: str, **kwargs) -> Dataset:
    """Load a substituted real dataset by name (``"nba"`` or ``"hotels"``).

    >>> load_real("hotels", n=10).dim
    2
    """
    loaders = {"nba": nba_like, "hotels": hotels}
    if name not in loaders:
        raise DatasetError(
            f"unknown real dataset {name!r}; expected one of "
            f"{tuple(loaders)}"
        )
    return loaders[name](**kwargs)
