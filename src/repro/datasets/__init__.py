"""Workload generators: synthetic distributions and substituted real data."""

from repro.datasets.generators import (
    anticorrelated,
    clustered,
    correlated,
    generate,
    independent,
    quantize,
)
from repro.datasets.real import hotels, load_real, nba_like
from repro.datasets.workloads import (
    clustered_queries,
    trajectory_queries,
    uniform_queries,
    workload,
)

__all__ = [
    "anticorrelated",
    "clustered",
    "clustered_queries",
    "correlated",
    "generate",
    "hotels",
    "independent",
    "load_real",
    "nba_like",
    "quantize",
    "trajectory_queries",
    "uniform_queries",
    "workload",
]
