"""Fault injection and chaos drills for the resilient serving layer."""

from repro.testing.faults import (
    SteppingClock,
    cancel_build_after,
    corrupt_file_byte,
    crash_build_after,
    flip_store_bit,
    io_errors_on_save,
    truncate_file,
)

__all__ = [
    "SteppingClock",
    "cancel_build_after",
    "corrupt_file_byte",
    "crash_build_after",
    "flip_store_bit",
    "io_errors_on_save",
    "truncate_file",
]
