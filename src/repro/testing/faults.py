"""Fault injectors for the resilience drills.

Each injector targets one seam the serving layer is supposed to survive:

* :func:`cancel_build_after` / :func:`crash_build_after` — kill a diagram
  construction at its n-th cooperative budget checkpoint (the same hook
  every builder already calls), simulating mid-build cancellation or an
  algorithm bug;
* :func:`flip_store_bit` — silently corrupt an attached diagram's result
  store in memory (a flipped cell id or a tampered interned result), the
  corruption :meth:`~repro.diagram.store.ResultStore.audit` must catch;
* :func:`SteppingClock` — an injectable monotonic clock for budget and
  backoff drills, including skew (backward jumps);
* :func:`io_errors_on_save` — make the atomic rename fail, verifying a
  crashed save never clobbers the previous file;
* :func:`truncate_file` / :func:`corrupt_file_byte` — damage a saved
  diagram on disk the envelope checksum must detect.

Injectors restore all patched state on exit; they are context managers
where the fault must cover a region and plain functions where it is a
single mutation.
"""

from __future__ import annotations

import contextlib
import os
import random

import numpy as np

from repro.errors import BudgetExceededError
from repro.index import serialize as _serialize
from repro.resilience import BudgetMeter, set_checkpoint_hook


@contextlib.contextmanager
def cancel_build_after(checkpoints: int = 1):
    """Raise ``BudgetExceededError`` at the n-th build checkpoint.

    Simulates an operator cancelling a runaway build: constructors see an
    ordinary budget exhaustion (with whatever partial progress they
    salvage) even when no budget was configured.
    """
    seen = {"count": 0}

    def hook(meter: BudgetMeter) -> None:
        seen["count"] += 1
        if seen["count"] >= checkpoints:
            raise BudgetExceededError(
                f"injected cancellation at checkpoint {seen['count']}",
                budget=meter.budget,
                progress=meter.progress(),
            )

    previous = set_checkpoint_hook(hook)
    try:
        yield seen
    finally:
        set_checkpoint_hook(previous)


@contextlib.contextmanager
def crash_build_after(checkpoints: int = 1, message: str = "injected crash"):
    """Raise a non-budget ``RuntimeError`` at the n-th build checkpoint.

    Unlike :func:`cancel_build_after` this models an algorithm bug, so
    the ladder must treat it as a build failure (no partial tier).
    """
    seen = {"count": 0}

    def hook(meter: BudgetMeter) -> None:
        seen["count"] += 1
        if seen["count"] >= checkpoints:
            raise RuntimeError(message)

    previous = set_checkpoint_hook(hook)
    try:
        yield seen
    finally:
        set_checkpoint_hook(previous)


def flip_store_bit(store, seed: int = 0) -> str:
    """Silently corrupt one entry of a result store, in place.

    Two corruption modes, chosen by the seed: remap one cell to a
    different (valid) interned result — undetectable structurally, caught
    by the content fingerprint — or tamper an interned tuple with an
    out-of-range member, which the structural audit flags.  Returns a
    description of what was damaged.
    """
    rng = random.Random(seed)
    distinct = store.distinct_count
    if distinct > 1 and rng.random() < 0.5:
        flat = rng.randrange(store.num_cells)
        index = np.unravel_index(flat, store.shape)
        old = int(store.ids[index])
        store.ids[index] = (old + 1 + rng.randrange(distinct - 1)) % distinct
        return f"cell {tuple(int(i) for i in index)} id {old} -> " f"{int(store.ids[index])}"
    victim = rng.randrange(distinct)
    store.table[victim] = store.table[victim] + (10**6,)
    store._intern = None  # keep the lazy interned view consistent
    return f"table entry {victim} grew an out-of-range member"


class SteppingClock:
    """A deterministic, manually advanced monotonic clock.

    Passed as ``clock=`` to :class:`~repro.index.engine.SkylineDatabase`
    or :meth:`~repro.resilience.BuildBudget.start` so budget and backoff
    tests control time — including skew, which real monotonic clocks
    forbid but broken virtualized ones exhibit.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def skew(self, seconds: float) -> None:
        """Jump the clock by ``seconds`` (negative = backward skew)."""
        self.now += seconds


@contextlib.contextmanager
def io_errors_on_save(message: str = "injected IO error"):
    """Make :func:`~repro.index.serialize.save_diagram`'s rename fail.

    The failure lands after the temp file is fully written — the worst
    moment — so the drill verifies the destination file is untouched and
    no temp file leaks.
    """

    def broken_replace(src: str, dst: str) -> None:
        raise OSError(message)

    previous = _serialize._replace
    _serialize._replace = broken_replace
    try:
        yield
    finally:
        _serialize._replace = previous


def truncate_file(path: str, keep: int) -> None:
    """Truncate a file to its first ``keep`` bytes (simulated torn write)."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(min(keep, size))


def corrupt_file_byte(path: str, seed: int = 0) -> int:
    """Flip one bit of one byte of a file; returns the damaged offset.

    Skips the header line so the damage lands in the checksummed payload
    (header damage is a different failure mode, tested separately).
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    start = blob.find(b"\n") + 1
    if start <= 0 or start >= len(blob):
        start = 0
    offset = start + random.Random(seed).randrange(len(blob) - start)
    damaged = blob[:offset] + bytes([blob[offset] ^ 0x20]) + blob[offset + 1 :]
    with open(path, "wb") as handle:
        handle.write(damaged)
    return offset
