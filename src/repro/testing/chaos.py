"""Chaos drills: inject faults, assert the serving layer never lies.

Each scenario arranges one failure mode from `repro.testing.faults` around
a small adversarial dataset (reusing the differential verifier's
generators) and asserts the serving-layer contract:

* **cancelled-build** — a build killed mid-construction: every query must
  equal from-scratch evaluation, zero answers may claim the ``diagram``
  tier, and a forced rebuild recovers full service;
* **tight-budget** — admission control refuses the build: same contract,
  reached through the budget path;
* **bitflip** — an attached store is corrupted in memory: ``db.audit()``
  must flag and evict it, ``db.health()`` must report it, and the very
  next query must be correct again (self-healing rebuild);
* **corrupt-file** — a saved diagram is truncated, bit-flipped or
  version-bumped on disk: ``load_diagram`` must raise
  :class:`~repro.errors.SerializationError` (with a salvage report for
  envelope damage), never return a diagram built from damaged bytes;
* **atomic-save** — the save's rename fails: the previous file must
  survive byte-for-byte and still load;
* **clock-skew** — the monotonic clock jumps: backoff bookkeeping must
  degrade gracefully (never crash, never serve wrong answers) and
  recover once time moves forward;
* **stale-maintenance** — incremental maintenance skips an update: the
  per-step audits stay green (the stale diagram is internally
  consistent!) but a differential cross-check against a from-scratch
  rebuild must expose the drift, while the fully-applied control arm
  matches the rebuild exactly;
* **parallel-consistency** — the same dataset is built serially and with
  a sharded row executor: the ResultStores must be byte-identical and
  the budget accounting must agree;
* **vectorized-executor** — the same dataset is built serially and with
  the numpy delta-recurrence engine: store fingerprints must be
  byte-identical, a budget wall at a row block must still yield a
  truthful partial diagram, and a constructor with no vectorized
  kernel must report the executor that actually ran;
* **kill-worker** — a snapshot-serving worker process is SIGKILLed
  mid-load: every later batch must still answer exactly (same snapshot
  generation), and the pool must respawn back to full strength;
* **corrupt-snapshot** — the snapshot file a pool is serving is damaged
  in place: workers must keep the verified old generation (every answer
  matches exactly one published generation, never a mix) until a good
  replacement file swaps in;
* **query-during-update** — reader threads batch-query while updates
  stream in: every answer must match a from-scratch oracle over the
  dataset of the generation that served it (the atomic-swap contract —
  no batch ever mixes generations);
* **crash-mid-update** — an injected cancellation kills the incremental
  re-scan partway: the old generation keeps serving exactly (annotated
  with the pending depth), the journal survives, and a later replay is
  byte-identical to a fresh build;
* **update-budget-exhausted** — the update budget is impossible: flushes
  fail and back off honestly while stale-but-exact answers flow, and
  once the budget lifts the *query path itself* applies the journal in
  the background.

``run_chaos(..., build_options=...)`` (CLI: ``--parallel N``) reruns the
whole campaign with every database build going through the given
executor, proving the fault-handling contract holds under sharding too.

Driven by ``python -m repro chaos --cases N --seed S`` and by
``tests/test_faults.py``; fully deterministic in the seed.
"""

from __future__ import annotations

import os
import random
import tempfile
from dataclasses import dataclass, field

from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.maintenance import insert_point
from repro.diagram.pipeline import BuildOptions
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.verify import _generate_points, _generate_queries
from repro.errors import BudgetExceededError, SerializationError
from repro.index.engine import SkylineDatabase
from repro.index.serialize import load_diagram, save_diagram
from repro.query.metrics import MetricsRegistry
from repro.resilience import BuildBudget, CoverageMiss
from repro.serve.pool import SnapshotWorkerPool
from repro.testing import faults

_KINDS = ("quadrant", "global", "dynamic", "skyband")


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` campaign."""

    seed: int
    cases: int = 0
    by_scenario: dict[str, int] = field(default_factory=dict)
    failures: list[dict] = field(default_factory=list)
    metrics: dict | None = None  # MetricsRegistry.snapshot() of the campaign

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURES"
        counts = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.by_scenario.items())
        )
        lines = [
            f"chaos [{status}]: {self.cases} cases (seed={self.seed}): "
            f"{counts}"
        ]
        for failure in self.failures[:5]:
            lines.append(
                f"  {failure['scenario']} case {failure['case']} "
                f"(seed={failure['seed']}): {failure['error']}"
            )
        if len(self.failures) > 5:
            lines.append(f"  ... and {len(self.failures) - 5} more")
        if self.metrics is not None:
            tiers = self.metrics.get("tiers", {})
            lines.append(
                "  query tiers: "
                + "  ".join(f"{t}={n}" for t, n in sorted(tiers.items()))
            )
        return "\n".join(lines)


def _assert_ladder_exact(
    db: SkylineDatabase,
    points,
    rng: random.Random,
    kinds=_KINDS,
    forbid_tier: str | None = None,
) -> None:
    """Every ladder answer equals from-scratch evaluation."""
    for query in _generate_queries(rng, points, limit=4):
        for kind in kinds:
            k = 2 if kind == "skyband" else 1
            answer = db.query_annotated(query, kind=kind, k=k)
            expected = db.query_from_scratch(query, kind=kind, k=k)
            assert answer.result == expected, (
                f"{kind} query {query} served wrong answer from tier "
                f"{answer.served_from!r}: {answer.result} != {expected}"
            )
            if forbid_tier is not None:
                assert answer.served_from != forbid_tier, (
                    f"{kind} query {query} claimed the {forbid_tier!r} tier "
                    "while it was supposed to be unavailable"
                )


def _scenario_cancelled_build(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    # Cancel at the very first checkpoint: tiny datasets finish in two,
    # and this drill requires that *no* build completes.
    served_before = metrics.tier_counts()["diagram"] if metrics else 0
    with faults.cancel_build_after(1):
        db = SkylineDatabase(points, build_options=options, metrics=metrics)
        _assert_ladder_exact(db, points, rng, forbid_tier="diagram")
        health = db.health()
        assert health["tiers"]["diagram"] == served_before, health
        assert not health["ok"], "health claims ok while every build fails"
    outcome = db.rebuild(force=True)
    assert outcome and all(v == "ready" for v in outcome.values()), outcome
    answer = db.query_annotated((0.0, 0.0), kind="quadrant")
    assert answer.served_from == "diagram", answer
    assert db.health()["ok"]


def _scenario_tight_budget(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    budget = BuildBudget(max_cells=rng.choice([1, 2, 5]))
    db = SkylineDatabase(
        points, budget=budget, build_options=options, metrics=metrics
    )
    _assert_ladder_exact(db, points, rng)
    health = db.health()
    for key, entry in health["builds"].items():
        assert entry["status"] in ("ready", "degraded"), (key, entry)
        if entry["status"] == "degraded":
            assert "budget exceeded" in entry["error"], entry
    # Lifting the budget and forcing a rebuild restores full service.
    db.budget = None
    outcome = db.rebuild(force=True)
    assert all(v == "ready" for v in outcome.values()), outcome


def _scenario_bitflip(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    db = SkylineDatabase(points, build_options=options, metrics=metrics)
    kind = rng.choice(("quadrant", "global", "dynamic"))
    key = "quadrant:0" if kind == "quadrant" else kind
    query = _generate_queries(rng, points, limit=1)[0]
    primed = db.query_annotated(query, kind=kind)
    assert primed.served_from == "diagram"
    faults.flip_store_bit(db._diagrams[key].store, seed=rng.randrange(2**31))
    outcome = db.audit()
    assert outcome[key].startswith("corrupt"), outcome
    health = db.health()
    assert key in health["degraded"], health
    assert health["last_audit"][key].startswith("corrupt"), health
    # The evicted diagram is rebuilt transparently; answers stay exact.
    _assert_ladder_exact(db, points, rng, kinds=(kind,))
    assert db.audit()[key] == "ok"


def _scenario_corrupt_file(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    db = SkylineDatabase(points, build_options=options, metrics=metrics)
    kind = rng.choice(("quadrant", "dynamic", "skyband"))
    if kind == "quadrant":
        diagram = db.quadrant_diagram()
    elif kind == "dynamic":
        diagram = db.dynamic_diagram()
    else:
        diagram = db.skyband_diagram(k=2)
    path = os.path.join(workdir, "diagram.json")
    save_diagram(diagram, path)
    mode = rng.choice(("truncate", "bitflip", "version"))
    if mode == "truncate":
        # Keep at least the header prefix: shorter truncations degrade to
        # the bare-v1 path, a different (also covered) failure mode.
        prefix = len(b"repro.skyline-diagram/")
        faults.truncate_file(
            path, rng.randrange(prefix, os.path.getsize(path))
        )
    elif mode == "bitflip":
        faults.corrupt_file_byte(path, seed=rng.randrange(2**31))
    else:
        with open(path, "rb") as handle:
            blob = handle.read()
        with open(path, "wb") as handle:
            handle.write(
                blob.replace(b"repro.skyline-diagram/3", b"repro.skyline-diagram/9", 1)
            )
    try:
        load_diagram(path)
    except SerializationError as exc:
        if mode in ("truncate", "version"):
            assert getattr(exc, "salvage", None) is not None, (
                f"{mode} damage should carry a salvage report: {exc}"
            )
    else:
        raise AssertionError(f"{mode} damage loaded without an error")


def _scenario_atomic_save(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    diagram = quadrant_scanning(points, build_options=options)
    path = os.path.join(workdir, "diagram.json")
    save_diagram(diagram, path)
    with open(path, "rb") as handle:
        original = handle.read()
    with faults.io_errors_on_save():
        try:
            save_diagram(diagram, path)
        except OSError:
            pass
        else:
            raise AssertionError("injected IO error did not surface")
    with open(path, "rb") as handle:
        assert handle.read() == original, "failed save damaged the old file"
    leftovers = [
        name for name in os.listdir(workdir) if name.endswith(".tmp")
    ]
    assert not leftovers, f"failed save leaked temp files: {leftovers}"
    reloaded = load_diagram(path)
    assert reloaded.store == diagram.store


def _scenario_clock_skew(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    clock = faults.SteppingClock()
    db = SkylineDatabase(
        points,
        budget=BuildBudget(max_cells=1),
        clock=clock,
        build_options=options,
        metrics=metrics,
    )
    _assert_ladder_exact(db, points, rng, kinds=("quadrant",))
    health = db.health()
    assert health["builds"]["quadrant:0"]["status"] == "degraded", health
    clock.skew(-rng.uniform(100.0, 10_000.0))
    assert db.rebuild()["quadrant:0"] == "backoff"
    _assert_ladder_exact(db, points, rng, kinds=("quadrant",))
    assert db.health()["builds"]["quadrant:0"]["retry_in"] >= 0.0
    clock.advance(1_000_000.0)
    db.budget = None
    assert db.rebuild()["quadrant:0"] == "ready"
    assert db.health()["ok"]


def _scenario_stale_maintenance(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    while len(points) < 3:
        points = points + [(float(len(points)), float(len(points)))]
    full = quadrant_scanning(points)
    start = max(1, len(points) // 2)

    # Control arm: every update applied, audited after each step, must
    # match the from-scratch rebuild exactly.
    applied = quadrant_scanning(points[:start])
    for p in points[start:]:
        applied = insert_point(applied, p)
        applied.audit()
    assert applied.store == full.store, "maintenance drifted from rebuild"

    # Stale arm: one update is lost.  The diagram stays internally
    # consistent (audits pass!) — only the differential rebuild
    # cross-check exposes the drift, which is exactly why the stateful
    # suite keeps both checks.
    skipped = rng.randrange(start, len(points))
    stale = quadrant_scanning(points[:start])
    for index in range(start, len(points)):
        if index == skipped:
            continue
        stale = insert_point(stale, points[index])
    stale.audit()
    assert len(stale.grid.dataset) != len(points) or stale.store != full.store, (
        "stale maintenance was indistinguishable from a full rebuild"
    )


def _scenario_parallel_consistency(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    points = _generate_points(rng, max_points)
    chunked = BuildOptions(chunk_rows=rng.choice((1, 2, 3)))
    for build in (quadrant_scanning, dynamic_scanning):
        serial = build(points)
        sharded = build(points, build_options=chunked)
        assert serial.store == sharded.store, (
            f"{build.__name__} chunked build diverged from serial"
        )
        assert sharded.build_report.checkpoints == (
            serial.build_report.checkpoints
        ), (serial.build_report, sharded.build_report)
        if rng.random() < 0.3:
            pooled = build(
                points, build_options=BuildOptions(executor="process", workers=2)
            )
            assert serial.store == pooled.store, (
                f"{build.__name__} process build diverged from serial"
            )


def _scenario_vectorized_executor(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    """The vectorized engine under chaos: byte identity, budgets, fallback.

    Fuzzes the array engine against the serial one on random degenerate
    datasets and random block sizes (byte-identical fingerprints, not
    just semantic equality), drives it into a budget wall to confirm the
    partial-diagram contract holds at row-block granularity, and checks
    the honest fallback: a constructor with no vectorized kernel must
    report the executor that actually ran.
    """
    points = _generate_points(rng, max_points)
    vector = BuildOptions(
        executor="vectorized", chunk_rows=rng.choice((None, 1, 2, 3))
    )
    serial = quadrant_scanning(points)
    vectorized = quadrant_scanning(points, build_options=vector)
    assert vectorized.build_report.executor == "vectorized", (
        vectorized.build_report
    )
    assert serial.store.fingerprint() == vectorized.store.fingerprint(), (
        "vectorized build is not byte-identical to serial"
    )
    fallback = dynamic_scanning(points, build_options=vector)
    assert fallback.build_report.executor == "serial", (
        "dynamic scanning cannot vectorize and must report what ran"
    )
    budget = BuildBudget(max_cells=1)
    try:
        quadrant_scanning(points, budget=budget, build_options=vector)
    except BudgetExceededError as exc:
        if exc.partial is not None:
            for query in _generate_queries(rng, points):
                try:
                    answer = exc.partial.query(query)
                except CoverageMiss:
                    continue
                assert answer == serial.query(query), (
                    "vectorized partial diverged from the full diagram"
                )
    else:
        raise AssertionError("max_cells=1 budget did not interrupt the build")


def _scenario_kill_worker(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    """SIGKILL a serving worker mid-load: answers survive, pool heals.

    The pool's transport is per-worker pipes precisely so a kill cannot
    strand a shared lock; this drill enforces the resulting contract —
    every batch after the kill still answers exactly (from the same
    generation), and ``ensure_alive`` restores full strength.
    """
    points = _generate_points(rng, max_points)
    diagram = quadrant_scanning(points, build_options=options)
    path = os.path.join(workdir, "snapshot.bin")
    save_diagram(diagram, path)
    queries = [tuple(q) for q in _generate_queries(rng, points, limit=4)]
    expected = [tuple(r) for r in diagram.query_batch(queries)]
    with SnapshotWorkerPool(path, workers=2) as pool:
        answers, generation = pool.query_batch(queries, timeout=30.0)
        assert answers == expected, "pool diverged from direct evaluation"
        victim = rng.randrange(2)
        pool._procs[victim].kill()
        pool._procs[victim].join(5.0)
        for _ in range(2):
            answers, tag = pool.query_batch(queries, timeout=30.0)
            assert answers == expected, "answers drifted after worker kill"
            assert tag == generation, "generation changed without a swap"
        pool.ensure_alive()
        assert pool.stats()["alive"] == 2, pool.stats()
        answers, _ = pool.query_batch(queries, timeout=30.0)
        assert answers == expected, "respawned worker answered wrong"


def _scenario_corrupt_snapshot(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    """Damage the live snapshot under a serving pool: old generation holds.

    Workers re-verify the file before every swap, so in-place damage
    must be *rejected* (the mapped generation keeps answering, batches
    never mix generations) and a good republished file must then swap
    in — observable through the generation tag every answer carries.
    """
    points = _generate_points(rng, max_points)
    diagram_a = quadrant_scanning(points, build_options=options)
    extra = tuple(
        max(p[d] for p in points) + 1.0 + d for d in range(len(points[0]))
    )
    diagram_b = quadrant_scanning(points + [extra], build_options=options)
    queries = [tuple(q) for q in _generate_queries(rng, points, limit=4)]
    expected_a = [tuple(r) for r in diagram_a.query_batch(queries)]
    expected_b = [tuple(r) for r in diagram_b.query_batch(queries)]
    path = os.path.join(workdir, "snapshot.bin")
    save_diagram(diagram_a, path)
    with SnapshotWorkerPool(path, workers=2) as pool:
        # Prime both round-robin workers so each holds generation A
        # before the damage lands.
        for _ in range(2):
            answers, generation_a = pool.query_batch(queries, timeout=30.0)
            assert answers == expected_a
        faults.corrupt_file_byte(path, seed=rng.randrange(2**31))
        for _ in range(3):
            answers, tag = pool.query_batch(queries, timeout=30.0)
            assert (answers, tag) == (expected_a, generation_a), (
                "a corrupt replacement leaked into the serving path"
            )
        save_diagram(diagram_b, path)
        swapped = None
        for _ in range(8):  # every worker swaps at its next batch boundary
            answers, tag = pool.query_batch(queries, timeout=30.0)
            # The invariant under swap: each answer matches *one*
            # complete published generation, never a mix of two.
            if tag == generation_a:
                assert answers == expected_a, "mixed-generation answer"
            else:
                assert answers == expected_b, "mixed-generation answer"
                swapped = tag
        assert swapped is not None, "republished snapshot never swapped in"


def _random_updates(rng, db, steps: int, record) -> None:
    """Apply ``steps`` random inserts/deletes, recording each generation."""
    for _ in range(steps):
        if rng.random() < 0.7 or len(db.dataset) <= 2:
            value = tuple(
                rng.uniform(0.0, 10.0) for _ in range(db.dataset.dim)
            )
            db.apply_update("insert", value)
        else:
            db.apply_update("delete", rng.randrange(len(db.dataset)))
        record(db)


def _scenario_query_during_update(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    """Concurrent readers under a live update stream: no mixed generations.

    Reader threads batch-query while the main thread applies updates.
    Every answer names the generation that served it; cross-checking each
    answer against a from-scratch oracle over *that generation's*
    dataset proves a batch never mixes an old diagram with a new dataset
    (or vice versa) — the atomic-swap contract, observed from outside.
    """
    import threading

    from repro.skyline.queries import quadrant_skyline
    from repro.geometry.point import Dataset

    points = _generate_points(rng, max_points)
    db = SkylineDatabase(
        points,
        precompute=["quadrant"],
        build_options=options,
        metrics=metrics,
    )
    datasets = {db.generation["sha"]: db.dataset}

    def record(database):
        datasets[database.generation["sha"]] = database.dataset

    queries = [tuple(q) for q in _generate_queries(rng, points, limit=3)]
    stop = threading.Event()
    observed: list[tuple[str, tuple, tuple]] = []
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            while not stop.is_set():
                answers = db.query_batch_annotated(queries, kind="quadrant")
                for query, answer in zip(queries, answers):
                    observed.append(
                        (
                            answer.query_report.generation,
                            query,
                            tuple(answer.result),
                        )
                    )
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        _random_updates(rng, db, steps=4, record=record)
    finally:
        stop.set()
        for thread in threads:
            thread.join()
    assert not errors, f"reader crashed during updates: {errors[0]!r}"
    assert observed, "readers never got an answer in"
    for sha, query, result in observed:
        dataset = datasets.get(sha)
        assert dataset is not None, f"answer from unpublished generation {sha}"
        assert result == quadrant_skyline(dataset, query, 0), (
            f"generation {sha[:12]} answer for {query} does not match its "
            "own dataset — a mixed-generation answer leaked"
        )


def _scenario_crash_mid_update(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    """A crash mid-re-scan: old generation serves on, journal replayable.

    An injected cancellation kills the incremental re-scan partway
    through.  The contract: the swap never happens (readers keep the old,
    fully consistent generation; answers stay exact and are annotated
    with the pending depth), the journal survives intact, and replaying
    it once the fault clears produces a store byte-identical to a fresh
    build over the updated dataset.
    """
    points = _generate_points(rng, max_points)
    db = SkylineDatabase(
        points,
        precompute=["quadrant"],
        clock=faults.SteppingClock(),  # backoff can't expire mid-drill
        build_options=options,
        metrics=metrics,
    )
    before = db.generation
    extra = tuple(rng.uniform(0.0, 10.0) for _ in range(db.dataset.dim))
    with faults.cancel_build_after(1):
        outcome = db.apply_update("insert", extra)
    assert outcome["applied"] == 0 and outcome["pending"] == 1, outcome
    assert db.generation == before, "a crashed apply swapped generations"
    assert len(db.dataset) == len(points), "dataset mutated by crashed apply"
    # Old generation keeps serving — exact for its dataset, stale-marked.
    query = tuple(_generate_queries(rng, points, limit=1)[0])
    answer = db.query_annotated(query, kind="quadrant")
    assert answer.result == db.query_from_scratch(query, kind="quadrant")
    assert answer.query_report.pending_updates == 1, answer.query_report
    health = db.health()
    assert health["updates"]["pending"] == 1, health["updates"]
    assert "error" in health["updates"], health["updates"]
    # The journal replays once the fault is gone: byte-identical result.
    replay = db.flush_updates(force=True)
    assert replay["applied"] == 1, replay
    fresh = quadrant_scanning(list(points) + [extra])
    assert (
        db._diagrams["quadrant:0"].store.fingerprint()
        == fresh.store.fingerprint()
    ), "replayed journal diverged from a fresh build"
    assert db.pending_updates == 0


def _scenario_update_budget_exhausted(
    rng, max_points, workdir, options=None, metrics=None
) -> None:
    """Budget-starved updates: honest degradation, background completion.

    With an impossible budget the flush fails and backs off; queries keep
    serving the old generation exactly, annotated stale.  Once the budget
    lifts and the backoff expires (deterministic clock), the *query path
    itself* retries the journal — background completion needs no explicit
    flush call — and the maintained store is byte-identical to fresh.
    """
    points = _generate_points(rng, max_points)
    clock = faults.SteppingClock()
    db = SkylineDatabase(
        points,
        precompute=["quadrant"],
        clock=clock,
        build_options=options,
        metrics=metrics,
    )
    db.budget = BuildBudget(max_cells=1)
    extra = tuple(rng.uniform(0.0, 10.0) for _ in range(db.dataset.dim))
    outcome = db.apply_update("insert", extra)
    assert outcome["applied"] == 0, outcome
    assert "BudgetExceededError" in outcome["error"], outcome
    # During backoff: stale but exact, honestly annotated everywhere.
    query = tuple(_generate_queries(rng, points, limit=1)[0])
    answer = db.query_annotated(query, kind="quadrant")
    assert answer.result == db.query_from_scratch(query, kind="quadrant")
    assert answer.query_report.pending_updates == 1
    assert db.flush_updates().get("backoff", 0.0) > 0.0, (
        "flush ignored the retry backoff"
    )
    # Budget lifts, backoff expires: the next query applies the journal.
    db.budget = None
    clock.advance(3600.0)
    seq_before = db.generation["seq"]
    healed = db.query_annotated(query, kind="quadrant")
    assert healed.query_report.pending_updates == 0, healed.query_report
    assert db.generation["seq"] == seq_before + 1
    fresh = quadrant_scanning(list(points) + [extra])
    assert (
        db._diagrams["quadrant:0"].store.fingerprint()
        == fresh.store.fingerprint()
    ), "background-applied update diverged from a fresh build"


_SCENARIOS = (
    ("cancelled-build", _scenario_cancelled_build),
    ("tight-budget", _scenario_tight_budget),
    ("bitflip", _scenario_bitflip),
    ("corrupt-file", _scenario_corrupt_file),
    ("atomic-save", _scenario_atomic_save),
    ("clock-skew", _scenario_clock_skew),
    ("stale-maintenance", _scenario_stale_maintenance),
    ("parallel-consistency", _scenario_parallel_consistency),
    ("vectorized-executor", _scenario_vectorized_executor),
    ("kill-worker", _scenario_kill_worker),
    ("corrupt-snapshot", _scenario_corrupt_snapshot),
    ("query-during-update", _scenario_query_during_update),
    ("crash-mid-update", _scenario_crash_mid_update),
    ("update-budget-exhausted", _scenario_update_budget_exhausted),
)


def run_chaos(
    cases: int = 200,
    seed: int = 0,
    max_points: int = 7,
    build_options: BuildOptions | None = None,
    metrics: MetricsRegistry | None = None,
) -> ChaosReport:
    """Run ``cases`` fault-injection drills round-robin over the scenarios.

    Deterministic in ``seed``; each case gets its own derived RNG and a
    fresh scratch directory.  Failures are collected (not fail-fast) so
    one report shows every scenario that broke.  ``build_options``
    threads a row executor through every database construction, reusing
    the same drills to exercise the sharded build paths.  One shared
    :class:`~repro.query.metrics.MetricsRegistry` (pass your own via
    ``metrics``) collects the query-runtime telemetry of every database
    the drills construct; its snapshot is attached as
    ``report.metrics`` and printed by ``repro stats --chaos``.

    >>> run_chaos(cases=8, seed=0).ok
    True
    """
    rng = random.Random(seed)
    registry = metrics if metrics is not None else MetricsRegistry()
    report = ChaosReport(seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as root:
        for case in range(cases):
            name, scenario = _SCENARIOS[case % len(_SCENARIOS)]
            case_seed = rng.randrange(2**63)
            workdir = os.path.join(root, f"case-{case}")
            os.mkdir(workdir)
            report.cases += 1
            report.by_scenario[name] = report.by_scenario.get(name, 0) + 1
            try:
                scenario(
                    random.Random(case_seed),
                    max_points,
                    workdir,
                    options=build_options,
                    metrics=registry,
                )
            except Exception as exc:  # collected, not fatal: report them all
                report.failures.append(
                    {
                        "scenario": name,
                        "case": case,
                        "seed": case_seed,
                        "error": f"{type(exc).__name__}: {exc}",
                    }
                )
    report.metrics = registry.snapshot()
    return report
