"""Small shared helpers used across the library.

These are internal utilities (note the module's leading underscore); the
public API re-exports nothing from here.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def multiset_add_sub(
    a: Sequence[int], b: Sequence[int], c: Sequence[int]
) -> tuple[int, ...]:
    """Return the multiset ``a + b - c`` as a sorted tuple of ids.

    All three inputs must be sorted tuples/lists of integers.  This is the
    multiset operation of Theorem 1 in the paper:
    ``Sky(C_{i,j}) = Sky(C_{i+1,j}) + Sky(C_{i,j+1}) - Sky(C_{i+1,j+1})``.

    The subtraction saturates at zero (an id subtracted more often than it was
    added simply disappears), which matches the paper's multiset semantics.

    >>> multiset_add_sub((1, 2), (2, 3), (2,))
    (1, 2, 3)
    >>> multiset_add_sub((1,), (1,), (1,))
    (1,)
    """
    # Merge a and b (both sorted) then cancel against c with a single sweep.
    merged: list[int] = []
    ia = ib = 0
    na, nb = len(a), len(b)
    while ia < na and ib < nb:
        if a[ia] <= b[ib]:
            merged.append(a[ia])
            ia += 1
        else:
            merged.append(b[ib])
            ib += 1
    if ia < na:
        merged.extend(a[ia:])
    if ib < nb:
        merged.extend(b[ib:])

    result: list[int] = []
    ic = 0
    nc = len(c)
    for item in merged:
        while ic < nc and c[ic] < item:
            ic += 1
        if ic < nc and c[ic] == item:
            ic += 1
        else:
            result.append(item)
    return tuple(result)


def dedupe_sorted(items: Iterable[int]) -> tuple[int, ...]:
    """Collapse consecutive duplicates in an already-sorted iterable.

    >>> dedupe_sorted((1, 1, 2, 3, 3))
    (1, 2, 3)
    """
    out: list[int] = []
    last: int | None = None
    for item in items:
        if item != last:
            out.append(item)
            last = item
    return tuple(out)


def pairs_upper(n: int) -> Iterable[tuple[int, int]]:
    """Yield all index pairs ``(i, j)`` with ``0 <= i < j < n``.

    >>> list(pairs_upper(3))
    [(0, 1), (0, 2), (1, 2)]
    """
    for i in range(n):
        for j in range(i + 1, n):
            yield (i, j)
