"""Skyline computation substrate: classic algorithms, layers, direct queries."""

from repro.skyline.algorithms import (
    skyline,
    skyline_bnl,
    skyline_brute,
    skyline_dnc,
    skyline_sfs,
    skyline_sort_2d,
)
from repro.skyline.layers import skyline_layers, skyline_layers_2d
from repro.skyline.mapping import map_to_query
from repro.skyline.queries import (
    dynamic_skyline,
    global_skyline,
    quadrant_skyband,
    quadrant_skyline,
)

__all__ = [
    "dynamic_skyline",
    "global_skyline",
    "map_to_query",
    "quadrant_skyband",
    "quadrant_skyline",
    "skyline",
    "skyline_bnl",
    "skyline_brute",
    "skyline_dnc",
    "skyline_layers",
    "skyline_layers_2d",
    "skyline_sfs",
    "skyline_sort_2d",
]
