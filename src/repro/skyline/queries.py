"""Direct (from-scratch) evaluation of the three skyline query semantics.

These functions answer one query without any precomputed diagram.  They are
the ground truth every diagram algorithm is validated against, and the
"recompute per query" baseline in the query-latency experiment (E8).

Boundary convention: a point lying exactly on one of the query's separating
hyperplanes belongs to *every* quadrant it borders (the non-strict
``|p[i] - q[i]| >= 0`` reading of Definition 3), which matches how the grid
assigns boundary queries to cells.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.geometry.dominance import dominates
from repro.geometry.point import Dataset
from repro.skyline.algorithms import _coords, skyline
from repro.skyline.mapping import map_point_to_query


def quadrant_skyline(
    points, query: Sequence[float], mask: int = 0
) -> tuple[int, ...]:
    """Skyline of the points inside one quadrant of the query (Definition 3).

    ``mask`` selects the quadrant: bit ``i`` set means the negative side of
    dimension ``i``.  The default ``mask=0`` is the paper's "first quadrant".

    >>> pts = [(12, 90), (4, 90), (12, 70)]
    >>> quadrant_skyline(pts, (10, 80))   # first quadrant: only p0 qualifies
    (0,)
    """
    pts = _coords(points)
    query = tuple(float(c) for c in query)
    dim = len(query)
    candidates: list[int] = []
    mapped: list[tuple[float, ...]] = []
    for i, p in enumerate(pts):
        in_quadrant = True
        for d in range(dim):
            diff = p[d] - query[d]
            if mask & (1 << d):
                if diff > 0:
                    in_quadrant = False
                    break
            elif diff < 0:
                in_quadrant = False
                break
        if in_quadrant:
            candidates.append(i)
            mapped.append(map_point_to_query(p, query))
    local = skyline(mapped)
    return tuple(candidates[k] for k in local)


def global_skyline(points, query: Sequence[float]) -> tuple[int, ...]:
    """Global skyline: union of the quadrant skylines of all 2^d quadrants.

    >>> pts = [(12, 90), (4, 90), (12, 70), (4, 70)]
    >>> global_skyline(pts, (10, 80))
    (0, 1, 2, 3)
    """
    pts = _coords(points)
    query = tuple(float(c) for c in query)
    dim = len(query)
    result: set[int] = set()
    for mask in range(1 << dim):
        result.update(quadrant_skyline(pts, query, mask))
    return tuple(sorted(result))


def dynamic_skyline(points, query: Sequence[float]) -> tuple[int, ...]:
    """Dynamic skyline (Definition 2): skyline of the mapped points.

    Always a subset of the global skyline, since mapped points can dominate
    across quadrants.

    >>> pts = [(12, 90), (8, 92), (4, 72)]
    >>> dynamic_skyline(pts, (10, 80))
    (0, 2)
    """
    pts = _coords(points)
    query = tuple(float(c) for c in query)
    mapped = [map_point_to_query(p, query) for p in pts]
    return skyline(mapped)


def global_skyline_among(
    points, candidate_ids: Sequence[int], query: Sequence[float]
) -> tuple[int, ...]:
    """Global skyline restricted to a candidate subset of point ids.

    Valid whenever ``candidate_ids`` is a superset of the true global
    skyline of ``query``: every candidate outside the true result is
    dominated, within its own quadrant, by a true member — which is itself
    a candidate — so the restricted evaluation filters it out and the
    result over the subset equals the result over all points.  Used for
    exact boundary resolution of global-diagram lookups, where candidates
    come from the cells adjacent to the query's grid line.
    """
    pts = points.points if isinstance(points, Dataset) else points
    candidate_ids = list(candidate_ids)
    subset = [pts[i] for i in candidate_ids]
    query = tuple(float(c) for c in query)
    result: set[int] = set()
    for mask in range(1 << len(query)):
        result.update(
            candidate_ids[k] for k in quadrant_skyline(subset, query, mask)
        )
    return tuple(sorted(result))


def dynamic_skyline_among(
    points, candidate_ids: Sequence[int], query: Sequence[float]
) -> tuple[int, ...]:
    """Dynamic skyline restricted to a candidate subset of point ids.

    Used by the subset and scanning algorithms for the dynamic diagram: when
    ``candidate_ids`` is known to contain the true dynamic skyline, the
    result over the subset equals the result over all points.
    """
    pts = points.points if isinstance(points, Dataset) else points
    query = tuple(float(c) for c in query)
    mapped = [map_point_to_query(pts[i], query) for i in candidate_ids]
    local = skyline(mapped)
    return tuple(sorted(candidate_ids[k] for k in local))


def quadrant_skyband(
    points, query: Sequence[float], k: int, mask: int = 0
) -> tuple[int, ...]:
    """The k-skyband of one quadrant: candidates with < k dominators.

    The k-skyband generalizes the skyline the way the k-th order Voronoi
    diagram generalizes the Voronoi diagram: ``k=1`` is exactly
    :func:`quadrant_skyline`; larger k keeps every point dominated by
    fewer than k candidates of the same quadrant.

    >>> pts = [(1, 1), (2, 2), (3, 3)]
    >>> quadrant_skyband(pts, (0, 0), 2)
    (0, 1)
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = _coords(points)
    query = tuple(float(c) for c in query)
    dim = len(query)
    candidates: list[int] = []
    mapped: list[tuple[float, ...]] = []
    for i, p in enumerate(pts):
        in_quadrant = True
        for d in range(dim):
            diff = p[d] - query[d]
            if mask & (1 << d):
                if diff > 0:
                    in_quadrant = False
                    break
            elif diff < 0:
                in_quadrant = False
                break
        if in_quadrant:
            candidates.append(i)
            mapped.append(map_point_to_query(p, query))
    result = []
    for a, pid in enumerate(candidates):
        dominators = sum(
            1 for b in range(len(candidates)) if dominates(mapped[b], mapped[a])
        )
        if dominators < k:
            result.append(pid)
    return tuple(result)


def constrained_skyband(
    points,
    query: Sequence[float],
    k: int = 1,
    mask: int = 0,
    box: tuple[Sequence[float], Sequence[float]] | None = None,
) -> tuple[int, ...]:
    """Quadrant k-skyband restricted to a closed axis-aligned box.

    Candidates must lie in the query's quadrant *and* inside
    ``box = (lo, hi)`` (closed on every face: ``lo_d <= p_d <= hi_d``).
    Dominator counts are taken among that candidate set, so ``k=1`` is
    the constrained skyline of SNIPPETS' ``skyline_constrained``.  With
    ``box=None`` this degenerates to :func:`quadrant_skyband`.

    This is the ground-truth oracle for the ``constrained`` query kind;
    the diagram path must byte-agree with it.

    >>> pts = [(1, 4), (2, 2), (4, 1)]
    >>> constrained_skyband(pts, (0, 0), box=((2, 0), (9, 9)))
    (1, 2)
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    pts = _coords(points)
    query = tuple(float(c) for c in query)
    dim = len(query)
    if box is None:
        lo = hi = None
    else:
        lo = tuple(float(c) for c in box[0])
        hi = tuple(float(c) for c in box[1])
    candidates: list[int] = []
    mapped: list[tuple[float, ...]] = []
    for i, p in enumerate(pts):
        keep = True
        for d in range(dim):
            if lo is not None and hi is not None and not lo[d] <= p[d] <= hi[d]:
                keep = False
                break
            diff = p[d] - query[d]
            if mask & (1 << d):
                if diff > 0:
                    keep = False
                    break
            elif diff < 0:
                keep = False
                break
        if keep:
            candidates.append(i)
            mapped.append(map_point_to_query(p, query))
    result = []
    for a, pid in enumerate(candidates):
        dominators = sum(
            1 for b in range(len(candidates)) if dominates(mapped[b], mapped[a])
        )
        if dominators < k:
            result.append(pid)
    return tuple(result)


def diversified_select(
    points, candidate_ids: Sequence[int], limit: int
) -> tuple[int, ...]:
    """Pick at most ``limit`` candidates by greedy max-min diversification.

    Diversity is measured in value space (squared Euclidean distance
    between the points themselves).  Fully deterministic: the seed is
    the lowest candidate id, each round adds the candidate maximizing
    its distance to the nearest already-selected point, and distance
    ties break toward the lower id.  Candidate sets of size ``<= limit``
    are returned whole.  Output is a sorted id tuple.

    Both the diagram tier and the scratch oracle call this same
    function on their (identical) skyband results, so diversified
    answers byte-agree across tiers by construction.

    >>> diversified_select([(0, 0), (1, 1), (9, 9)], (0, 1, 2), 2)
    (0, 2)
    """
    limit = int(limit)
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    ids = sorted(int(i) for i in candidate_ids)
    if len(ids) <= limit:
        return tuple(ids)
    pts = _coords(points)

    def sq_dist(a: tuple[float, ...], b: tuple[float, ...]) -> float:
        return sum((a[d] - b[d]) ** 2 for d in range(len(a)))

    selected = [ids[0]]
    rest = ids[1:]
    # Min squared distance from each remaining candidate to the selection.
    gap = {i: sq_dist(pts[i], pts[ids[0]]) for i in rest}
    while len(selected) < limit:
        best = max(rest, key=lambda i: (gap[i], -i))
        selected.append(best)
        rest.remove(best)
        for i in rest:
            d = sq_dist(pts[i], pts[best])
            if d < gap[i]:
                gap[i] = d
    return tuple(sorted(selected))


def is_skyline_member(points, query: Sequence[float], target: int) -> bool:
    """True iff point ``target`` is in the dynamic skyline of ``query``.

    Cheaper membership test used by the reverse-skyline application: checks
    whether any point dynamically dominates the target.
    """
    pts = _coords(points)
    query = tuple(float(c) for c in query)
    t = map_point_to_query(pts[target], query)
    for i, p in enumerate(pts):
        if i == target:
            continue
        if dominates(map_point_to_query(p, query), t):
            return False
    return True
