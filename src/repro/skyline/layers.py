"""Skyline layers (the onion peeling of [15], Sec. IV.B of the paper).

Layer 1 is the skyline of the dataset; layer k is the skyline of what remains
after peeling layers 1..k-1.  Layers drive the directed skyline graph.

Two implementations are provided and cross-tested:

* :func:`skyline_layers` — peeling with the generic skyline routine; works in
  any dimensionality, O(L * n log n) for 2-D inputs.
* :func:`skyline_layers_2d` — single O(n log n) sweep using the fact that the
  per-layer minimum y values form an ascending sequence (a patience-sorting
  argument); duplicates are placed on the layer of their first copy.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.skyline.algorithms import _coords, skyline


def skyline_layers(points) -> list[tuple[int, ...]]:
    """Peel skyline layers in any dimensionality.

    >>> skyline_layers([(1, 1), (2, 2), (3, 3)])
    [(0,), (1,), (2,)]
    """
    pts = _coords(points)
    alive = list(range(len(pts)))
    layers: list[tuple[int, ...]] = []
    while alive:
        local = skyline([pts[i] for i in alive])
        layer = tuple(alive[k] for k in local)
        layers.append(layer)
        layer_set = set(layer)
        alive = [i for i in alive if i not in layer_set]
    return layers


def skyline_layers_2d(points) -> list[tuple[int, ...]]:
    """O(n log n) layer assignment for 2-D points.

    A point's layer is one plus the deepest layer containing a strict
    dominator (the height of the point in the dominance DAG), which equals
    its peeling layer.  Scanning in lexicographic order, the minimum y seen
    per layer is ascending, so the deepest dominating layer is found by
    binary search.  The only subtlety is exact duplicates, which must land on
    the layer of their first copy rather than one below it.
    """
    pts = _coords(points)
    if pts and len(pts[0]) != 2:
        raise ValueError("skyline_layers_2d requires 2-D points")
    order = sorted(range(len(pts)), key=lambda i: pts[i])
    min_y: list[float] = []  # ascending: min y assigned to each layer so far
    first_x: list[float] = []  # x of the point that set the current min y
    layer_of = [0] * len(pts)
    for i in order:
        x, y = pts[i]
        # Deepest layer whose min y is <= y holds a candidate dominator.
        k = bisect_right(min_y, y) - 1
        if k >= 0 and min_y[k] == y and first_x[k] == x:
            # The only layer-k points at height y are exact duplicates of
            # this point; the true strict dominator sits one layer shallower.
            k -= 1
        layer = k + 1
        layer_of[i] = layer
        if layer == len(min_y):
            min_y.append(y)
            first_x.append(x)
        elif y < min_y[layer]:
            min_y[layer] = y
            first_x[layer] = x
    layers: list[list[int]] = [[] for _ in range(len(min_y))]
    for i, layer in enumerate(layer_of):
        layers[layer].append(i)
    return [tuple(layer) for layer in layers]
