"""The dynamic-skyline mapping (Section III of the paper).

Computing the dynamic skyline for a query ``q`` is equivalent to computing a
traditional skyline after mapping every point to the first quadrant with
``q`` as origin, ``t[i] = |p[i] - q[i]|``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.geometry.point import Dataset, Point


def map_point_to_query(p: Sequence[float], query: Sequence[float]) -> Point:
    """Map one point: component-wise absolute distance to the query.

    >>> map_point_to_query((4, 90), (10, 80))
    (6.0, 10.0)
    """
    return tuple(abs(float(a) - float(c)) for a, c in zip(p, query, strict=True))


def map_to_query(points, query: Sequence[float]) -> list[Point]:
    """Map every point of a dataset to the query's first quadrant."""
    pts = points.points if isinstance(points, Dataset) else points
    return [map_point_to_query(p, query) for p in pts]
