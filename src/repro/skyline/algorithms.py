"""Classic skyline (maxima/Pareto) algorithms under the min-order convention.

Every function takes a sequence of points (or a :class:`Dataset`) and returns
the skyline as a sorted tuple of point ids.  Duplicate points never dominate
each other, so every copy of a skyline point is reported — this canonical
output lets algorithms be compared with ``==`` in tests.

Algorithms
----------
``skyline_brute``     O(n^2 d), any d — the ground truth for tests.
``skyline_sort_2d``   O(n log n), 2-D sort-and-scan (used inside Algorithm 1).
``skyline_dnc``       divide and conquer, any d (Kung-style practical variant).
``skyline_bnl``       block-nested-loops (Börzsönyi et al.), any d.
``skyline_sfs``       sort-filter-skyline (presorted, no eviction), any d.
``skyline``           dispatcher picking the best available algorithm.
"""

from __future__ import annotations

from repro.geometry.dominance import dominates
from repro.geometry.point import Dataset


def _coords(points) -> list[tuple[float, ...]]:
    if isinstance(points, Dataset):
        return list(points.points)
    return [tuple(float(x) for x in p) for p in points]


def skyline_brute(points) -> tuple[int, ...]:
    """Quadratic ground-truth skyline: keep ids not dominated by any point.

    >>> skyline_brute([(1, 3), (2, 2), (3, 1), (3, 3)])
    (0, 1, 2)
    """
    pts = _coords(points)
    result = [
        i
        for i, p in enumerate(pts)
        if not any(dominates(q, p) for q in pts)
    ]
    return tuple(result)


def skyline_sort_2d(points) -> tuple[int, ...]:
    """O(n log n) two-dimensional skyline via sort and min-y scan.

    Points are sorted lexicographically; scanning left to right, a point is
    on the skyline iff its y is below everything seen so far (or it is an
    exact duplicate of the current best, which cannot be dominated).

    >>> skyline_sort_2d([(1, 3), (2, 2), (3, 1), (3, 3)])
    (0, 1, 2)
    """
    pts = _coords(points)
    if pts and len(pts[0]) != 2:
        raise ValueError("skyline_sort_2d requires 2-D points")
    order = sorted(range(len(pts)), key=lambda i: pts[i])
    best_y = float("inf")
    best_coords: tuple[float, float] | None = None
    result: list[int] = []
    for i in order:
        x, y = pts[i]
        if y < best_y:
            best_y = y
            best_coords = (x, y)
            result.append(i)
        elif best_coords == (x, y):
            # Exact duplicate of the current staircase corner.
            result.append(i)
    result.sort()
    return tuple(result)


def skyline_dnc(points) -> tuple[int, ...]:
    """Divide-and-conquer skyline for any dimensionality.

    Points are sorted lexicographically and split in half; after recursing,
    right-half survivors are filtered against left-half survivors.  The full
    lexicographic sort guarantees no left point is ever dominated by a right
    point (a right point that weakly precedes a left point coordinate-wise
    would also precede it lexicographically).
    """
    pts = _coords(points)
    order = sorted(range(len(pts)), key=lambda i: pts[i])

    def solve(ids: list[int]) -> list[int]:
        if len(ids) <= 4:
            return [
                i
                for i in ids
                if not any(j != i and dominates(pts[j], pts[i]) for j in ids)
            ]
        mid = len(ids) // 2
        left = solve(ids[:mid])
        right = solve(ids[mid:])
        survivors = [
            r
            for r in right
            if not any(dominates(pts[lf], pts[r]) for lf in left)
        ]
        return left + survivors

    return tuple(sorted(solve(order)))


def skyline_bnl(points, window_size: int | None = None) -> tuple[int, ...]:
    """Block-nested-loops skyline (Börzsönyi et al.) for any dimensionality.

    Maintains a window of incomparable candidates; every input point is
    compared against the window, evicting dominated members.  The optional
    ``window_size`` caps the window to emulate the memory-bounded variant:
    overflowing points are set aside and processed in further passes.
    """
    pts = _coords(points)
    remaining = list(range(len(pts)))
    confirmed: list[int] = []
    while remaining:
        window: list[int] = []
        entered_at: dict[int, int] = {}
        overflow: list[int] = []
        first_overflow: int | None = None
        for order, i in enumerate(remaining):
            p = pts[i]
            dominated = False
            survivors: list[int] = []
            for w in window:
                if dominates(pts[w], p):
                    dominated = True
                    survivors = window  # unchanged
                    break
                if not dominates(p, pts[w]):
                    survivors.append(w)
            if dominated:
                continue
            window = survivors
            if window_size is not None and len(window) >= window_size:
                overflow.append(i)
                if first_overflow is None:
                    first_overflow = order
            else:
                window.append(i)
                entered_at[i] = order
        # A window member is only guaranteed globally undominated if it was
        # compared against every point of this pass — i.e. it entered the
        # window before the first point overflowed.  Later entrants never met
        # the overflow points, so they go back into the next pass.
        if first_overflow is None:
            confirmed.extend(window)
            remaining = []
        else:
            safe = [w for w in window if entered_at[w] < first_overflow]
            confirmed.extend(safe)
            carry = [w for w in window if entered_at[w] >= first_overflow]
            # Overflow points still need to beat confirmed points next pass.
            remaining = [
                i
                for i in carry + overflow
                if not any(dominates(pts[c], pts[i]) for c in confirmed)
            ]
    return tuple(sorted(confirmed))


def skyline_sfs(points) -> tuple[int, ...]:
    """Sort-filter-skyline (Chomicki et al.) for any dimensionality.

    Points are presorted by a monotone scoring function (the coordinate
    sum): a point can only be dominated by points that precede it in this
    order, so a single pass with a window of confirmed skyline points
    suffices — no eviction, unlike BNL.

    >>> skyline_sfs([(1, 3), (2, 2), (3, 1), (3, 3)])
    (0, 1, 2)
    """
    pts = _coords(points)
    order = sorted(range(len(pts)), key=lambda i: (sum(pts[i]), pts[i]))
    window: list[int] = []
    for i in order:
        p = pts[i]
        if not any(dominates(pts[w], p) for w in window):
            window.append(i)
    return tuple(sorted(window))


def skyline(points) -> tuple[int, ...]:
    """Compute the skyline with the best algorithm for the dimensionality."""
    pts = _coords(points)
    if not pts:
        return ()
    if len(pts[0]) == 2:
        return skyline_sort_2d(pts)
    return skyline_dnc(pts)
