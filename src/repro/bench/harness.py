"""Timing and table-formatting utilities for the experiment suite.

The pytest-benchmark files under ``benchmarks/`` give statistically careful
per-call numbers; this harness powers the *paper-style* tables — one row
per parameter setting, one column per algorithm — that EXPERIMENTS.md
records and ``python -m repro.bench`` regenerates.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any


def time_call(fn: Callable[[], Any], repeats: int = 1) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def throughput(
    fn: Callable[[], Any], items: int, repeats: int = 3
) -> float:
    """Items per second of ``fn``, using best-of-``repeats`` timing."""
    best = time_call(fn, repeats=repeats)
    return items / best if best > 0 else float("inf")


def env_metadata() -> dict[str, Any]:
    """Provenance for benchmark envelopes: interpreter, libs, hardware.

    Recorded with every BENCH JSON so a number can be traced to the
    environment that produced it.  ``numba`` is ``None`` when the
    optional JIT is not installed — the vectorized executor's kernel
    then runs as pure numpy, and the envelope says so.
    """
    import os
    import platform

    import numpy

    try:
        import numba

        numba_version: str | None = numba.__version__
    except Exception:
        numba_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "numba": numba_version,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
    }


def save_json(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write a benchmark result payload as indented JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


@dataclass
class Table:
    """A paper-style results table.

    >>> t = Table("demo", ["n", "baseline"])
    >>> t.add_row([10, 0.5])
    >>> print(t.render())
    demo
    n   baseline
    --  --------
    10  0.500
    """

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, row: Sequence[Any]) -> None:
        """Append one row (must match the column count)."""
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} entries for {len(self.columns)} columns"
            )
        self.rows.append(list(row))

    def _formatted(self) -> list[list[str]]:
        out: list[list[str]] = []
        for row in self.rows:
            cells: list[str] = []
            for value in row:
                if isinstance(value, float):
                    cells.append(f"{value:.3f}" if value >= 0.001 else f"{value:.2e}")
                else:
                    cells.append(str(value))
            out.append(cells)
        return out

    def render(self) -> str:
        """Fixed-width text rendering."""
        body = self._formatted()
        widths = [
            max(len(self.columns[c]), *(len(r[c]) for r in body))
            if body
            else len(self.columns[c])
            for c in range(len(self.columns))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(col.ljust(widths[c]) for c, col in enumerate(self.columns))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append(
                "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row))
            )
        return "\n".join(line.rstrip() for line in lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        body = self._formatted()
        lines = [
            "| " + " | ".join(self.columns) + " |",
            "|" + "|".join("---" for _ in self.columns) + "|",
        ]
        for row in body:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)
