"""The reconstructed experiment suite (DESIGN.md, per-experiment index).

Each ``eN_*`` function reproduces one table/figure of the paper's evaluation
section and returns one or more :class:`~repro.bench.harness.Table` objects
whose rows mirror what the paper plots: construction time per algorithm as
n, the domain size s, the distribution, or the dimensionality varies, plus
polyomino counts and query latency.

Run ``python -m repro.bench`` (add ``--full`` for the larger sizes) to
regenerate everything; EXPERIMENTS.md records one full run.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence

from repro.bench.harness import Table, time_call
from repro.datasets.generators import generate
from repro.datasets.real import hotels, nba_like
from repro.diagram.dynamic_baseline import dynamic_baseline
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.dynamic_subset import dynamic_subset
from repro.diagram.highdim import (
    quadrant_baseline_nd,
    quadrant_dsg_nd,
    quadrant_scanning_nd,
)
from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.diagram.quadrant_dsg import quadrant_dsg
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.quadrant_sweeping import quadrant_sweeping
from repro.dsg.graph import DirectedSkylineGraph
from repro.geometry.point import Dataset
from repro.skyline.queries import quadrant_skyline

DISTRIBUTIONS = ("correlated", "independent", "anticorrelated")

QUADRANT = {
    "baseline": quadrant_baseline,
    "dsg": quadrant_dsg,
    "scanning": quadrant_scanning,
    "sweeping": quadrant_sweeping,
}

DYNAMIC = {
    "baseline": dynamic_baseline,
    "subset": dynamic_subset,
    "scanning": dynamic_scanning,
}

HIGHDIM = {
    "baseline": quadrant_baseline_nd,
    "dsg": quadrant_dsg_nd,
    "scanning": quadrant_scanning_nd,
}


def e1_quadrant_scaling(quick: bool = True) -> list[Table]:
    """E1: quadrant diagram construction time vs n, per distribution."""
    sizes = (32, 64, 128) if quick else (32, 64, 128, 256)
    tables = []
    for dist in DISTRIBUTIONS:
        table = Table(
            f"E1 [{dist}]: quadrant diagram construction time (s) vs n",
            ["n", *QUADRANT],
        )
        for n in sizes:
            points = generate(dist, n, seed=n)
            row: list[object] = [n]
            for algorithm in QUADRANT.values():
                row.append(time_call(lambda a=algorithm: a(points)))
            table.add_row(row)
        tables.append(table)
    return tables


def e2_quadrant_domain(quick: bool = True) -> list[Table]:
    """E2: quadrant construction time vs domain size s (fixed n)."""
    n = 96 if quick else 192
    domains = (8, 16, 32, 64, 128)
    table = Table(
        f"E2: quadrant diagram construction time (s) vs domain size, n={n}",
        ["s", *QUADRANT],
    )
    for s in domains:
        points = generate("independent", n, seed=7, domain=s)
        row: list[object] = [s]
        for algorithm in QUADRANT.values():
            row.append(time_call(lambda a=algorithm: a(points)))
        table.add_row(row)
    return [table]


def e3_counts(quick: bool = True) -> list[Table]:
    """E3: skyline cell / distinct result / polyomino counts vs n."""
    sizes = (32, 64, 128) if quick else (64, 128, 256)
    table = Table(
        "E3: structure sizes vs n (cells, distinct results, polyominos)",
        ["distribution", "n", "cells", "distinct", "polyominos"],
    )
    for dist in DISTRIBUTIONS:
        for n in sizes:
            points = generate(dist, n, seed=n)
            diagram = quadrant_scanning(points)
            table.add_row(
                [
                    dist,
                    n,
                    diagram.grid.num_cells,
                    len(diagram.distinct_results()),
                    len(diagram.polyominos()),
                ]
            )
    return [table]


def e4_dynamic_scaling(quick: bool = True) -> list[Table]:
    """E4: dynamic diagram construction time vs n."""
    sizes = (8, 12, 16) if quick else (8, 12, 16, 24, 32)
    table = Table(
        "E4: dynamic diagram construction time (s) vs n (domain 64)",
        ["n", *DYNAMIC],
    )
    for n in sizes:
        points = generate("independent", n, seed=n, domain=64)
        row: list[object] = [n]
        for algorithm in DYNAMIC.values():
            row.append(time_call(lambda a=algorithm: a(points)))
        table.add_row(row)
    return [table]


def e5_dynamic_domain(quick: bool = True) -> list[Table]:
    """E5: dynamic construction time vs domain size s (fixed n)."""
    n = 16 if quick else 24
    domains = (8, 16, 32, 64)
    table = Table(
        f"E5: dynamic diagram construction time (s) vs domain size, n={n}",
        ["s", *DYNAMIC],
    )
    for s in domains:
        points = generate("independent", n, seed=5, domain=s)
        row: list[object] = [s]
        for algorithm in DYNAMIC.values():
            row.append(time_call(lambda a=algorithm: a(points)))
        table.add_row(row)
    return [table]


def e6_highdim(quick: bool = True) -> list[Table]:
    """E6: three-dimensional construction time vs n."""
    sizes = (8, 16, 24) if quick else (8, 16, 32, 48)
    table = Table(
        "E6: 3-D quadrant diagram construction time (s) vs n",
        ["n", *HIGHDIM],
    )
    for n in sizes:
        points = generate("independent", n, dim=3, seed=n, domain=32)
        row: list[object] = [n]
        for algorithm in HIGHDIM.values():
            row.append(time_call(lambda a=algorithm: a(points)))
        table.add_row(row)
    return [table]


def e7_real(quick: bool = True) -> list[Table]:
    """E7: construction times on the substituted real datasets."""
    n_quadrant = 128 if quick else 256
    n_dynamic = 12 if quick else 20
    tables = []
    datasets: dict[str, Dataset] = {
        "hotels": hotels(n=n_quadrant),
        "nba": nba_like(n=n_quadrant),
    }
    table = Table(
        f"E7a: quadrant construction time (s) on real data, n={n_quadrant}",
        ["dataset", *QUADRANT],
    )
    for name, dataset in datasets.items():
        row: list[object] = [name]
        for algorithm in QUADRANT.values():
            row.append(time_call(lambda a=algorithm, d=dataset: a(d)))
        table.add_row(row)
    tables.append(table)
    table = Table(
        f"E7b: dynamic construction time (s) on real data, n={n_dynamic}",
        ["dataset", *DYNAMIC],
    )
    small = {
        "hotels": hotels(n=n_dynamic),
        "nba": nba_like(n=n_dynamic),
    }
    for name, dataset in small.items():
        row = [name]
        for algorithm in DYNAMIC.values():
            row.append(time_call(lambda a=algorithm, d=dataset: a(d)))
        table.add_row(row)
    tables.append(table)
    return tables


def e8_query_latency(quick: bool = True) -> list[Table]:
    """E8: per-query latency — diagram lookup vs from-scratch skyline."""
    sizes = (64, 256) if quick else (64, 256, 1024)
    batch = 200 if quick else 1000
    rng = random.Random(11)
    table = Table(
        "E8: mean per-query time (s): precomputed diagram vs from scratch",
        ["n", "build", "lookup", "from_scratch", "speedup"],
    )
    for n in sizes:
        points = generate("independent", n, seed=n)
        build = time_call(lambda: quadrant_scanning(points))
        diagram = quadrant_scanning(points)
        queries = [(rng.random(), rng.random()) for _ in range(batch)]
        lookup = time_call(
            lambda: [diagram.query(q) for q in queries]
        ) / batch
        scratch = time_call(
            lambda: [quadrant_skyline(points, q) for q in queries]
        ) / batch
        table.add_row([n, build, lookup, scratch, scratch / lookup])
    return [table]


def e9_ablation(quick: bool = True) -> list[Table]:
    """E9: design ablations called out in DESIGN.md."""
    n = 96 if quick else 160
    points = generate("independent", n, seed=13)
    tables = []

    # (a) direct links vs the full dominance graph inside Algorithm 2.
    direct = DirectedSkylineGraph(points, links="direct")
    full = DirectedSkylineGraph(points, links="full")
    table = Table(
        f"E9a: DSG sweep with direct vs full dominance links, n={n}",
        ["links", "graph edges", "sweep time"],
    )
    table.add_row(
        [
            "direct",
            direct.num_links,
            time_call(lambda: quadrant_dsg(points, dsg=direct)),
        ]
    )
    table.add_row(
        [
            "full",
            full.num_links,
            time_call(lambda: quadrant_dsg(points, dsg=full)),
        ]
    )
    tables.append(table)

    # (b) subset algorithm: how much the global-skyline candidate set shrinks.
    n_dyn = 14 if quick else 20
    dyn_points = generate("independent", n_dyn, seed=3, domain=64)
    from repro.diagram.global_diagram import global_diagram

    coarse = global_diagram(dyn_points)
    sizes = [len(result) for _, result in coarse.cells()]
    table = Table(
        f"E9b: subset-algorithm candidate shrinkage, n={n_dyn}",
        ["candidates", "value"],
    )
    table.add_row(["all points (baseline)", n_dyn])
    table.add_row(["mean global skyline / cell", sum(sizes) / len(sizes)])
    table.add_row(["max global skyline / cell", max(sizes)])
    tables.append(table)

    # (c) result interning inside the scanning algorithm.
    n_scan = 192 if quick else 384
    scan_points = generate("independent", n_scan, seed=17)
    table = Table(
        f"E9c: scanning with and without result interning, n={n_scan}",
        ["variant", "time"],
    )
    table.add_row(
        [
            "interned (default)",
            time_call(lambda: quadrant_scanning(scan_points)),
        ]
    )
    table.add_row(
        [
            "plain tuples",
            time_call(
                lambda: quadrant_scanning(scan_points, intern_results=False)
            ),
        ]
    )
    tables.append(table)

    # (d) the array-backed store engine vs the seed dict-per-cell path.
    from repro.diagram.quadrant_scanning import quadrant_scanning_reference

    table = Table(
        f"E9d: scanning with array store on vs off, n={n_scan}",
        ["variant", "time"],
    )
    table.add_row(
        [
            "array store (default)",
            time_call(lambda: quadrant_scanning(scan_points), repeats=3),
        ]
    )
    table.add_row(
        [
            "dict per cell (seed)",
            time_call(
                lambda: quadrant_scanning_reference(scan_points), repeats=3
            ),
        ]
    )
    tables.append(table)
    return tables


def e10_scalability(quick: bool = True) -> list[Table]:
    """E10: large-n scalability of the two fastest constructions.

    The paper's closing claim is that the algorithms are "efficient and
    scalable"; the O(n^2) sweeping and O(n^3) scanning algorithms are the
    ones that reach interesting n in pure Python.
    """
    sizes = (128, 256, 512) if quick else (128, 256, 512, 1024)
    table = Table(
        "E10: scalability of scanning and sweeping (s) vs n (INDE)",
        ["n", "scanning", "sweeping", "cells", "polyominos"],
    )
    for n in sizes:
        points = generate("independent", n, seed=n)
        scan_time = time_call(lambda: quadrant_scanning(points))
        sweep_time = time_call(lambda: quadrant_sweeping(points))
        sweep = quadrant_sweeping(points)
        table.add_row(
            [
                n,
                scan_time,
                sweep_time,
                (n + 1) * (n + 1),
                sweep.num_regions,
            ]
        )
    return [table]


EXPERIMENTS: dict[str, Callable[[bool], list[Table]]] = {
    "E1": e1_quadrant_scaling,
    "E2": e2_quadrant_domain,
    "E3": e3_counts,
    "E4": e4_dynamic_scaling,
    "E5": e5_dynamic_domain,
    "E6": e6_highdim,
    "E7": e7_real,
    "E8": e8_query_latency,
    "E9": e9_ablation,
    "E10": e10_scalability,
}


def run_experiment(name: str, quick: bool = True) -> list[Table]:
    """Run one experiment by id (``"E1"`` .. ``"E9"``)."""
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; expected one of {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name](quick)


def run_all(
    quick: bool = True, only: Sequence[str] | None = None
) -> list[Table]:
    """Run the whole suite (or a subset), returning every table."""
    tables: list[Table] = []
    for name in EXPERIMENTS:
        if only and name not in only:
            continue
        tables.extend(run_experiment(name, quick))
    return tables
