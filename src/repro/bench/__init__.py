"""Benchmark harness: timing utilities and the paper's experiment suite."""

from repro.bench.harness import Table, save_json, throughput, time_call
from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "Table",
    "run_experiment",
    "save_json",
    "throughput",
    "time_call",
]
