"""Command line entry: ``python -m repro.bench [--full] [E1 E4 ...]``.

Prints every experiment's paper-style table; with ``--markdown`` the output
is ready to paste into EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS, run_all


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation tables.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the larger (slower) parameter grids",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit GitHub-flavoured markdown tables",
    )
    args = parser.parse_args(argv)
    unknown = [e for e in args.experiments if e not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")
    tables = run_all(quick=not args.full, only=args.experiments or None)
    for table in tables:
        if args.markdown:
            print(f"### {table.title}\n")
            print(table.to_markdown())
        else:
            print(table.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
