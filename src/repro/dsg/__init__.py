"""Directed skyline graph (adapted from [15], Section IV.B of the paper)."""

from repro.dsg.graph import (
    DirectedSkylineGraph,
    direct_dominance_links,
    full_dominance_links,
)

__all__ = [
    "DirectedSkylineGraph",
    "direct_dominance_links",
    "full_dominance_links",
]
