"""The directed skyline graph (DSG) and its incremental-removal interface.

The DSG captures *direct* dominance: ``p`` directly dominates ``q`` when
``p`` dominates ``q`` and no third point sits between them in the dominance
order.  The paper (Sec. IV.B) adapts the graph of [15] by keeping only these
direct links — enough for the diagram algorithm because removals happen in
grid-line order: whenever some remaining point dominates ``q``, a *direct*
parent of ``q`` also remains (any dominance chain from a remaining point
moves coordinate-wise toward ``q`` and therefore stays remaining).

The incremental interface is removal-with-undo: the DSG diagram algorithm
sweeps a row by removing grid lines' points and rolls the row back with the
undo log instead of copying the whole graph (the paper's ``tempDSG``).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.geometry.dominance import dominates
from repro.geometry.point import Dataset
from repro.skyline.algorithms import _coords
from repro.skyline.layers import skyline_layers


def direct_dominance_links(points) -> list[list[int]]:
    """Children lists of the direct dominance relation.

    ``children[p]`` holds every ``q`` directly dominated by ``p``: the
    dominators of ``q`` form a sub-order, and the direct parents are exactly
    its maximal elements (those dominating no other dominator of ``q``).

    >>> direct_dominance_links([(1, 1), (2, 2), (3, 3)])
    [[1], [2], []]
    """
    pts = _coords(points)
    n = len(pts)
    dominators: list[list[int]] = [[] for _ in range(n)]
    for p in range(n):
        for q in range(n):
            if p != q and dominates(pts[p], pts[q]):
                dominators[q].append(p)
    children: list[list[int]] = [[] for _ in range(n)]
    for q in range(n):
        doms = dominators[q]
        for p in doms:
            # p is a direct parent iff it dominates no other dominator of q.
            if not any(r != p and dominates(pts[p], pts[r]) for r in doms):
                children[p].append(q)
    return children


def full_dominance_links(points) -> list[list[int]]:
    """Children lists of the *full* (transitive) dominance relation.

    The paper adapts [15] to direct links only; this variant keeps every
    dominance edge and exists for the E9 ablation — the diagram algorithm
    is still correct with it (a point surfaces exactly when its dominator
    count reaches zero) but performs one update per dominance pair instead
    of per direct link.

    >>> full_dominance_links([(1, 1), (2, 2), (3, 3)])
    [[1, 2], [2], []]
    """
    pts = _coords(points)
    n = len(pts)
    children: list[list[int]] = [[] for _ in range(n)]
    for p in range(n):
        for q in range(n):
            if p != q and dominates(pts[p], pts[q]):
                children[p].append(q)
    return children


class DirectedSkylineGraph:
    """Direct-dominance DAG with O(1)-amortized removal and undo.

    Parameters
    ----------
    points:
        The dataset.  Layers and dominance links are computed on
        construction.
    links:
        ``"direct"`` (the paper's adaptation of [15]) or ``"full"`` (every
        dominance pair; needed for the E9 ablation and for thresholds > 1).
    threshold:
        A point is "exposed" while fewer than ``threshold`` parents remain.
        The default 1 gives skylines; k gives k-skybands (points dominated
        by fewer than k others), which requires ``links="full"`` so parent
        counts equal dominator counts.

    Examples
    --------
    >>> dsg = DirectedSkylineGraph([(1, 1), (2, 3), (3, 2), (4, 4)])
    >>> sorted(dsg.skyline())
    [0]
    >>> newly = dsg.remove(0)    # peeling the apex exposes both children
    >>> sorted(newly)
    [1, 2]
    """

    __slots__ = (
        "dataset",
        "children",
        "parent_count",
        "threshold",
        "removed",
        "layers",
        "_undo",
    )

    def __init__(
        self,
        points: Dataset | Sequence[Sequence[float]],
        links: str = "direct",
        threshold: int = 1,
    ) -> None:
        pts = _coords(points)
        self.dataset = points if isinstance(points, Dataset) else Dataset(pts)
        if links == "direct":
            link_lists = direct_dominance_links(pts)
        elif links == "full":
            link_lists = full_dominance_links(pts)
        else:
            raise ValueError(f"links must be 'direct' or 'full', got {links!r}")
        self.children: list[tuple[int, ...]] = [tuple(c) for c in link_lists]
        self.parent_count = [0] * len(pts)
        for kids in self.children:
            for q in kids:
                self.parent_count[q] += 1
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if threshold > 1 and links != "full":
            raise ValueError(
                "thresholds above 1 (k-skybands) require links='full'"
            )
        self.threshold = threshold
        self.removed = [False] * len(pts)
        self.layers: list[tuple[int, ...]] = skyline_layers(pts)
        self._undo: list[tuple[int, tuple[int, ...]]] = []

    @property
    def num_links(self) -> int:
        """Total number of direct dominance links."""
        return sum(len(kids) for kids in self.children)

    def skyline(self) -> list[int]:
        """Current exposed points: fewer than ``threshold`` parents remain.

        With the default threshold this is the skyline; with threshold k
        and full links it is the k-skyband.
        """
        return [
            i
            for i in range(len(self.parent_count))
            if not self.removed[i] and self.parent_count[i] < self.threshold
        ]

    def remove(self, point_id: int) -> list[int]:
        """Remove one point; return children that become parentless.

        The returned ids are the *new* skyline points exposed by the removal
        (Algorithm 2's "children of p without any remaining parent").  Safe
        to call on an already-removed point (returns ``[]``), which happens
        when several points share a grid line.
        """
        if self.removed[point_id]:
            return []
        self.removed[point_id] = True
        exposed: list[int] = []
        for q in self.children[point_id]:
            self.parent_count[q] -= 1
            if (
                self.parent_count[q] == self.threshold - 1
                and not self.removed[q]
            ):
                exposed.append(q)
        self._undo.append((point_id, self.children[point_id]))
        return exposed

    def remove_batch(self, point_ids: Sequence[int]) -> list[int]:
        """Remove several points at once (one shared grid line).

        Children counted as exposed only if they are not themselves removed
        by the batch — ties on a grid line remove whole dominance chains.
        """
        exposed: list[int] = []
        for pid in point_ids:
            exposed.extend(self.remove(pid))
        batch = set(point_ids)
        return [q for q in exposed if q not in batch and not self.removed[q]]

    def checkpoint(self) -> int:
        """Mark the current undo position; pass to :meth:`rollback`."""
        return len(self._undo)

    def rollback(self, checkpoint: int) -> None:
        """Undo every removal performed after ``checkpoint``."""
        while len(self._undo) > checkpoint:
            point_id, kids = self._undo.pop()
            self.removed[point_id] = False
            for q in kids:
                self.parent_count[q] += 1
