"""repro — Skyline Diagram: the Voronoi counterpart for skyline queries.

A full reproduction of Liu, Yang, Xiong, Pei, Luo, *"Skyline Diagram:
Finding the Voronoi Counterpart for Skyline Queries"*, ICDE 2018.

Quickstart
----------
>>> from repro import quadrant_scanning
>>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
>>> diagram.query((1, 2))
(0, 1)
"""

from repro.diagram import (
    DYNAMIC_ALGORITHMS,
    QUADRANT_ALGORITHMS,
    BuildOptions,
    BuildReport,
    DynamicDiagram,
    SkylineDiagram,
    SweepDiagram,
    dynamic_baseline,
    dynamic_scanning,
    dynamic_subset,
    global_diagram,
    quadrant_baseline,
    quadrant_dsg,
    quadrant_scanning,
    quadrant_sweeping,
)
from repro.errors import (
    AuditError,
    BudgetExceededError,
    SkylineDiagramError,
)
from repro.geometry import Dataset, Grid, Polyomino, SubcellGrid
from repro.index.engine import QueryAnswer, SkylineDatabase
from repro.index.serialize import load_diagram, save_diagram
from repro.resilience import BuildBudget
from repro.skyline import (
    dynamic_skyline,
    global_skyline,
    quadrant_skyline,
    skyline,
    skyline_layers,
)

__version__ = "1.0.0"

__all__ = [
    "AuditError",
    "BudgetExceededError",
    "BuildBudget",
    "BuildOptions",
    "BuildReport",
    "DYNAMIC_ALGORITHMS",
    "Dataset",
    "DynamicDiagram",
    "Grid",
    "Polyomino",
    "QueryAnswer",
    "SkylineDatabase",
    "SkylineDiagramError",
    "QUADRANT_ALGORITHMS",
    "SkylineDiagram",
    "SubcellGrid",
    "SweepDiagram",
    "__version__",
    "load_diagram",
    "save_diagram",
    "dynamic_baseline",
    "dynamic_scanning",
    "dynamic_skyline",
    "dynamic_subset",
    "global_diagram",
    "global_skyline",
    "quadrant_baseline",
    "quadrant_dsg",
    "quadrant_scanning",
    "quadrant_skyline",
    "quadrant_sweeping",
    "skyline",
    "skyline_layers",
]
