"""A Voronoi diagram by half-plane clipping (the paper's Fig. 2 structure).

Each site's Voronoi cell is the intersection of the half-planes closer to
it than to every other site, computed by successively clipping a bounding
box with perpendicular-bisector half-planes — O(n^2 log n) overall, plenty
for the analogy examples and tests (the skyline diagram, not Voronoi, is
the system under study; this is a faithful but simple substrate).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DimensionalityError
from repro.geometry.point import Dataset, Point, ensure_dataset
from repro.voronoi.knn import nearest

_EPS = 1e-9


def _clip(
    polygon: list[Point], a: float, b: float, c: float
) -> list[Point]:
    """Clip a convex polygon to the half-plane ``a*x + b*y <= c``."""
    if not polygon:
        return []
    out: list[Point] = []
    m = len(polygon)
    for k in range(m):
        p = polygon[k]
        q = polygon[(k + 1) % m]
        fp = a * p[0] + b * p[1] - c
        fq = a * q[0] + b * q[1] - c
        if fp <= _EPS:
            out.append(p)
        if (fp < -_EPS and fq > _EPS) or (fp > _EPS and fq < -_EPS):
            t = fp / (fp - fq)
            out.append((p[0] + t * (q[0] - p[0]), p[1] + t * (q[1] - p[1])))
    return out


def voronoi_cell(
    points: Dataset | Sequence[Sequence[float]],
    site: int,
    bbox: tuple[float, float, float, float],
) -> list[Point]:
    """The Voronoi cell of one site, clipped to a bounding box.

    ``bbox`` is ``(min_x, min_y, max_x, max_y)``.  Returns the cell's
    vertices in counterclockwise order (empty for degenerate duplicates).

    >>> cell = voronoi_cell([(0, 0), (10, 0)], 0, (0, 0, 10, 10))
    >>> sorted(cell)
    [(0.0, 0.0), (0.0, 10.0), (5.0, 0.0), (5.0, 10.0)]
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError("voronoi_cell supports 2-D sites")
    x0, y0, x1, y1 = (float(v) for v in bbox)
    polygon: list[Point] = [(x0, y0), (x1, y0), (x1, y1), (x0, y1)]
    px, py = dataset[site]
    for other_id, (qx, qy) in enumerate(dataset.points):
        if other_id == site or (qx, qy) == (px, py):
            continue
        # Points closer to p than q: 2(q-p)·x <= |q|^2 - |p|^2.
        a = 2.0 * (qx - px)
        b = 2.0 * (qy - py)
        c = qx * qx + qy * qy - px * px - py * py
        polygon = _clip(polygon, a, b, c)
        if not polygon:
            break
    return polygon


class VoronoiDiagram:
    """All Voronoi cells over a bounding box, with point location.

    Point location delegates to the nearest-site rule, which is exactly the
    diagram's defining property; the polygons exist for geometry checks and
    rendering, mirroring how the skyline diagram exposes polyominos.
    """

    def __init__(
        self,
        points: Dataset | Sequence[Sequence[float]],
        bbox: tuple[float, float, float, float] | None = None,
    ) -> None:
        self.dataset = ensure_dataset(points)
        if self.dataset.dim != 2:
            raise DimensionalityError("VoronoiDiagram supports 2-D sites")
        if bbox is None:
            lo, hi = self.dataset.bounds()
            margin_x = max(1.0, (hi[0] - lo[0]) * 0.2)
            margin_y = max(1.0, (hi[1] - lo[1]) * 0.2)
            bbox = (
                lo[0] - margin_x,
                lo[1] - margin_y,
                hi[0] + margin_x,
                hi[1] + margin_y,
            )
        self.bbox = bbox
        self.cells: list[list[Point]] = [
            voronoi_cell(self.dataset, site, bbox)
            for site in range(len(self.dataset))
        ]

    def locate(self, query: Sequence[float]) -> int:
        """Site id whose cell contains the query (nearest site)."""
        return nearest(self.dataset, query)

    def cell_area(self, site: int) -> float:
        """Area of a site's (clipped) Voronoi cell via the shoelace formula."""
        polygon = self.cells[site]
        if len(polygon) < 3:
            return 0.0
        area = 0.0
        m = len(polygon)
        for k in range(m):
            x0, y0 = polygon[k]
            x1, y1 = polygon[(k + 1) % m]
            area += x0 * y1 - x1 * y0
        return abs(area) / 2.0

    def __repr__(self) -> str:
        return f"VoronoiDiagram(n={len(self.dataset)}, bbox={self.bbox})"
