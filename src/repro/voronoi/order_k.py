"""Order-k Voronoi diagrams — the analogy's other half, completed.

The paper's Sec. I: "similarly, k-th order Voronoi diagram can be built for
kNN queries (k > 1), where the query points in each Voronoi cell have the
same kNN results."  The k-skyband diagram (``repro.diagram.skyband``) is
the skyline-side counterpart; this module supplies the kNN side so the two
can be compared like Figs. 2 and 3.

An order-k cell is the locus where one particular k-subset S is the set of
k nearest sites: the intersection of the half-planes ``closer to i than
j`` for every ``i ∈ S, j ∉ S`` — convex, so each cell is a bounding-box
clip.  Cells are enumerated exactly by BFS: two cells are adjacent iff
their sets differ by swapping the edge's bisector pair, so starting from
the kNN set of one sample point and walking across edges reaches every
nonempty cell (the order-k subdivision is edge-connected).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import DimensionalityError, QueryError
from repro.geometry.point import Dataset, Point, ensure_dataset
from repro.voronoi.diagram import _clip
from repro.voronoi.knn import k_nearest

_AREA_EPS = 1e-9


def _bisector(p: Point, q: Point) -> tuple[float, float, float]:
    """Half-plane ``a x + b y <= c`` of points closer to p than to q."""
    a = 2.0 * (q[0] - p[0])
    b = 2.0 * (q[1] - p[1])
    c = q[0] ** 2 + q[1] ** 2 - p[0] ** 2 - p[1] ** 2
    return a, b, c


def _polygon_area(polygon: list[Point]) -> float:
    if len(polygon) < 3:
        return 0.0
    area = 0.0
    m = len(polygon)
    for k in range(m):
        x0, y0 = polygon[k]
        x1, y1 = polygon[(k + 1) % m]
        area += x0 * y1 - x1 * y0
    return abs(area) / 2.0


def order_k_cell(
    points: Dataset | Sequence[Sequence[float]],
    subset: Sequence[int],
    bbox: tuple[float, float, float, float],
) -> list[Point]:
    """The (possibly empty) convex cell where ``subset`` is the kNN set.

    >>> cell = order_k_cell([(0, 0), (10, 0), (5, 9)], [0, 1], (0, 0, 10, 9))
    >>> len(cell) >= 3
    True
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError("order-k Voronoi cells are 2-D")
    inside = set(subset)
    x0, y0, x1, y1 = (float(v) for v in bbox)
    polygon: list[Point] = [(x0, y0), (x1, y0), (x1, y1), (x0, y1)]
    for i in inside:
        p = dataset[i]
        for j in range(len(dataset)):
            if j in inside or dataset[j] == p:
                continue
            polygon = _clip(polygon, *_bisector(p, dataset[j]))
            if not polygon:
                return []
    return polygon


class OrderKVoronoi:
    """All order-k Voronoi cells over a bounding box, with point location.

    Parameters
    ----------
    points:
        2-D sites (at least k of them).
    k:
        Order; ``k=1`` is the ordinary Voronoi diagram.
    bbox:
        ``(min_x, min_y, max_x, max_y)`` region to subdivide.

    Examples
    --------
    >>> diagram = OrderKVoronoi([(0, 0), (10, 0), (5, 9)], 2, (0, 0, 10, 9))
    >>> len(diagram.cells)
    3
    >>> diagram.locate((1, 1))
    (0, 2)
    """

    def __init__(
        self,
        points: Dataset | Sequence[Sequence[float]],
        k: int,
        bbox: tuple[float, float, float, float],
    ) -> None:
        self.dataset = ensure_dataset(points)
        if self.dataset.dim != 2:
            raise DimensionalityError("OrderKVoronoi supports 2-D sites")
        if not 1 <= k <= len(self.dataset):
            raise QueryError(
                f"k={k} out of range for {len(self.dataset)} sites"
            )
        self.k = k
        self.bbox = tuple(float(v) for v in bbox)
        self.cells: dict[tuple[int, ...], list[Point]] = {}
        self._enumerate()

    # ------------------------------------------------------------------
    def _enumerate(self) -> None:
        x0, y0, x1, y1 = self.bbox
        seed_query = ((x0 + x1) / 2.0, (y0 + y1) / 2.0)
        seed = tuple(sorted(k_nearest(self.dataset, seed_query, self.k)))
        frontier = [seed]
        seen = {seed}
        while frontier:
            subset = frontier.pop()
            polygon = order_k_cell(self.dataset, subset, self.bbox)
            if _polygon_area(polygon) <= _AREA_EPS:
                continue
            self.cells[subset] = polygon
            inside = set(subset)
            # Neighbours swap one inside site for one outside site; probing
            # every pair is O(k (n-k)) per cell but exact and simple.
            for i in subset:
                for j in range(len(self.dataset)):
                    if j in inside:
                        continue
                    neighbour = tuple(sorted((inside - {i}) | {j}))
                    if neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)

    # ------------------------------------------------------------------
    def locate(self, query: Sequence[float]) -> tuple[int, ...]:
        """The kNN *set* of the query (sorted ids) — its cell's label."""
        return tuple(sorted(k_nearest(self.dataset, query, self.k)))

    def total_area(self) -> float:
        """Sum of all cell areas (should tile the bounding box)."""
        return sum(_polygon_area(c) for c in self.cells.values())

    def __repr__(self) -> str:
        return (
            f"OrderKVoronoi(n={len(self.dataset)}, k={self.k}, "
            f"cells={len(self.cells)})"
        )
