"""Nearest-neighbour queries over a point set (Euclidean distance).

The Voronoi counterpart of the direct skyline evaluation in
:mod:`repro.skyline.queries`: ground truth for the Voronoi diagram and the
"recompute per query" arm of the analogy examples.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.geometry.point import Dataset, ensure_dataset


def _squared_distance(p: Sequence[float], q: Sequence[float]) -> float:
    return sum((a - b) ** 2 for a, b in zip(p, q, strict=True))


def nearest(
    points: Dataset | Sequence[Sequence[float]], query: Sequence[float]
) -> int:
    """Id of the nearest point to the query (lowest id wins ties).

    >>> nearest([(0, 0), (10, 10)], (2, 2))
    0
    """
    dataset = ensure_dataset(points)
    best_id = 0
    best = _squared_distance(dataset[0], query)
    for pid in range(1, len(dataset)):
        d = _squared_distance(dataset[pid], query)
        if d < best:
            best = d
            best_id = pid
    return best_id


def k_nearest(
    points: Dataset | Sequence[Sequence[float]],
    query: Sequence[float],
    k: int,
) -> tuple[int, ...]:
    """Ids of the k nearest points, closest first (ties by id).

    >>> k_nearest([(0, 0), (1, 1), (9, 9)], (0, 0), 2)
    (0, 1)
    """
    dataset = ensure_dataset(points)
    if not 1 <= k <= len(dataset):
        raise ValueError(f"k={k} out of range for {len(dataset)} points")
    order = sorted(
        range(len(dataset)),
        key=lambda pid: (_squared_distance(dataset[pid], query), pid),
    )
    return tuple(order[:k])
