"""Voronoi diagram / kNN substrate — the analogy the paper is named after."""

from repro.voronoi.diagram import VoronoiDiagram, voronoi_cell
from repro.voronoi.knn import k_nearest, nearest
from repro.voronoi.order_k import OrderKVoronoi, order_k_cell

__all__ = [
    "OrderKVoronoi",
    "VoronoiDiagram",
    "k_nearest",
    "nearest",
    "order_k_cell",
    "voronoi_cell",
]
