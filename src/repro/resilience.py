"""Construction budgets and partial-build serving for the query engine.

The paper's serving model is *precompute once, answer in real time*
(Sec. I, E8) — but precomputation is only free when it finishes.  An
anti-correlated workload can push diagram construction past any latency or
memory target, so the construction algorithms accept a :class:`BuildBudget`
and check it *cooperatively*: each scan row (or maintenance column, or
merge chunk) calls :meth:`BudgetMeter.checkpoint`, and the first checkpoint
past a limit raises a typed
:class:`~repro.errors.BudgetExceededError` carrying a progress snapshot
and, where the scan order allows it, a :class:`PartialDiagram` that keeps
answering queries over the region completed before the interruption.

The same checkpoints double as the fault-injection seam: a test hook
installed with :func:`set_checkpoint_hook` runs before the limit checks,
so `repro.testing.faults` can cancel or crash a build at an exact point
in its execution without monkeypatching algorithm internals.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import BudgetExceededError

__all__ = [
    "BuildBudget",
    "BuildProgress",
    "BudgetMeter",
    "CoverageMiss",
    "PartialDiagram",
    "as_meter",
    "set_checkpoint_hook",
]


# The fault-injection seam.  When set, every checkpoint calls the hook
# (with the meter) before its own limit checks; budget-less builds run an
# unlimited meter so the hook still fires.
_CHECKPOINT_HOOK: Callable[["BudgetMeter"], None] | None = None


def set_checkpoint_hook(
    hook: Callable[["BudgetMeter"], None] | None,
) -> Callable[["BudgetMeter"], None] | None:
    """Install (or clear, with ``None``) the checkpoint hook.

    Returns the previously installed hook so callers can restore it.
    """
    global _CHECKPOINT_HOOK
    previous = _CHECKPOINT_HOOK
    _CHECKPOINT_HOOK = hook
    return previous


@dataclass(frozen=True)
class BuildBudget:
    """Admission-control limits for one diagram construction.

    All limits are optional; ``None`` means unlimited.  ``max_seconds``
    is wall-clock time from :meth:`start`, ``max_cells`` bounds the number
    of cells resolved, ``max_distinct`` bounds the interned result table
    (the store's memory driver).
    """

    max_seconds: float | None = None
    max_cells: int | None = None
    max_distinct: int | None = None

    def __post_init__(self) -> None:
        if self.max_seconds is not None and not self.max_seconds > 0:
            raise ValueError(f"max_seconds must be > 0, got {self.max_seconds}")
        if self.max_cells is not None and self.max_cells < 1:
            raise ValueError(f"max_cells must be >= 1, got {self.max_cells}")
        if self.max_distinct is not None and self.max_distinct < 1:
            raise ValueError(
                f"max_distinct must be >= 1, got {self.max_distinct}"
            )

    @property
    def unlimited(self) -> bool:
        return (
            self.max_seconds is None
            and self.max_cells is None
            and self.max_distinct is None
        )

    def start(self, clock: Callable[[], float] | None = None) -> "BudgetMeter":
        """A fresh meter charging against this budget from now."""
        return BudgetMeter(self, clock=clock)


@dataclass(frozen=True)
class BuildProgress:
    """Snapshot of how far a construction got when it was interrupted."""

    cells_done: int
    distinct: int
    elapsed: float
    checkpoints: int


class BudgetMeter:
    """Mutable spend tracker for one construction (or one shared group).

    Global diagrams pass one meter through all ``2^d`` quadrant sub-builds
    so the budget bounds the whole construction, not each piece.
    """

    __slots__ = ("budget", "cells_done", "distinct", "checkpoints", "_clock",
                 "_started")

    def __init__(
        self,
        budget: BuildBudget,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.budget = budget
        self.cells_done = 0
        self.distinct = 0
        self.checkpoints = 0
        self._clock = clock if clock is not None else time.monotonic
        self._started = self._clock()

    def progress(self) -> BuildProgress:
        return BuildProgress(
            cells_done=self.cells_done,
            distinct=self.distinct,
            elapsed=max(0.0, self._clock() - self._started),
            checkpoints=self.checkpoints,
        )

    def checkpoint(self, advance: int = 0, distinct: int | None = None) -> None:
        """Charge ``advance`` cells and re-check every limit.

        Raises :class:`BudgetExceededError` (without a partial — the
        construction that owns the partial attaches it) when a limit is
        crossed.  The injected test hook, when installed, runs first.
        """
        self.checkpoints += 1
        self.cells_done += advance
        if distinct is not None:
            self.distinct = distinct
        if _CHECKPOINT_HOOK is not None:
            _CHECKPOINT_HOOK(self)
        budget = self.budget
        if budget.max_cells is not None and self.cells_done > budget.max_cells:
            raise self._exceeded(
                f"cell budget exhausted: {self.cells_done} cells resolved, "
                f"max_cells={budget.max_cells}"
            )
        if (
            budget.max_distinct is not None
            and self.distinct > budget.max_distinct
        ):
            raise self._exceeded(
                f"distinct-result budget exhausted: {self.distinct} interned, "
                f"max_distinct={budget.max_distinct}"
            )
        if budget.max_seconds is not None:
            elapsed = self._clock() - self._started
            if elapsed > budget.max_seconds:
                raise self._exceeded(
                    f"time budget exhausted: {elapsed:.3f}s elapsed, "
                    f"max_seconds={budget.max_seconds}"
                )

    def _exceeded(self, message: str) -> BudgetExceededError:
        return BudgetExceededError(
            message, budget=self.budget, progress=self.progress()
        )


def as_meter(
    budget: BuildBudget | BudgetMeter | None,
    clock: Callable[[], float] | None = None,
) -> BudgetMeter | None:
    """Normalize a builder's ``budget`` argument to a running meter.

    ``None`` normally stays ``None`` (checkpoints compile away), except
    when a fault-injection hook is installed: then an unlimited meter is
    returned so the hook observes budget-less builds too.
    """
    if budget is None:
        if _CHECKPOINT_HOOK is not None:
            return BuildBudget().start(clock)
        return None
    if isinstance(budget, BudgetMeter):
        return budget
    if isinstance(budget, BuildBudget):
        return budget.start(clock)
    raise TypeError(
        f"budget must be a BuildBudget or BudgetMeter, got "
        f"{type(budget).__name__}"
    )


class CoverageMiss(Exception):
    """A query landed outside the region a partial diagram covers.

    Deliberately *not* a :class:`~repro.errors.SkylineDiagramError`: it is
    internal control flow of the degradation ladder (fall through to the
    next tier), never an answer surfaced to callers.
    """


class PartialDiagram:
    """Answers over the scan rows completed before a build was interrupted.

    Both 2-D scanning constructions fill whole rows of the second axis at
    a time, so the completed prefix is exact wherever it exists: ``_rows``
    maps a row index ``j`` to the row's per-column entries.  Entries are
    interned ids into ``table`` when a table is carried, or raw result
    tuples when the interrupted construction had no table (skyband sweep).

    ``boundary_exact`` distinguishes the two lookup conventions: quadrant
    rows (mask 0) use the lower-side closed edge and are exact on grid
    lines; dynamic subcell rows cannot resolve boundary queries from one
    row alone, so those raise :class:`CoverageMiss` and fall through.
    """

    __slots__ = ("grid", "_rows", "_table", "_boundary_exact")

    def __init__(
        self,
        grid,
        rows: dict[int, Sequence],
        table: list[tuple[int, ...]] | None,
        boundary_exact: bool,
    ) -> None:
        self.grid = grid
        self._rows = rows
        self._table = table
        self._boundary_exact = boundary_exact

    @property
    def coverage(self) -> float:
        """Fraction of scan rows completed before interruption."""
        extent = self.grid.shape[1]
        return len(self._rows) / extent if extent else 0.0

    @property
    def rows_built(self) -> int:
        return len(self._rows)

    def query(self, query: Sequence[float]) -> tuple[int, ...]:
        """Exact answer when the query's row was built, else CoverageMiss."""
        grid = self.grid
        if self._boundary_exact:
            cell = grid.locate(query, upper_mask=0)
        else:
            cell = grid.locate(query)
            if grid.boundary_axes(query, cell):
                raise CoverageMiss(
                    "query on a subcell boundary of a partial diagram"
                )
        row = self._rows.get(cell[1])
        if row is None:
            raise CoverageMiss(
                f"row {cell[1]} was not built before interruption"
            )
        entry = row[cell[0]]
        if self._table is None:
            return tuple(entry)
        return self._table[int(entry)]

    def __repr__(self) -> str:
        return (
            f"PartialDiagram(rows={len(self._rows)}/{self.grid.shape[1]}, "
            f"coverage={self.coverage:.2f})"
        )
