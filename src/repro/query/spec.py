"""The composable query spec: one value describing any supported lookup.

Historically a query was the positional triple ``(kind, mask, k)``,
hand-validated in a 60-line if/elif chain inside ``QueryPlanner.plan``
and re-threaded through every layer — engine entry points, the scratch
oracle, the serve protocol, the CLI and the differential verifier — so
every new query kind meant touching seven call signatures.
:class:`QuerySpec` replaces the triple with one frozen, validating value
object, and a registry of per-kind :class:`KindHandler`\\ s owns what the
if/elif chain used to hard-code:

* **validation** — masks, band widths, constraint boxes and
  diversification counts are checked once, with typed
  :class:`~repro.errors.QueryError`\\ s, before the degradation ladder
  ever runs;
* **planning** — which diagram key serves the spec and how to build it
  (``constrained``/``diversified`` specs deliberately map onto the
  *existing* ``quadrant:{mask}`` / ``skyband:{k}`` diagram keys: a box
  restriction or a diversification pass never changes the precomputed
  structure, only the lookup);
* **the scratch oracle** — the from-scratch ground truth of the bottom
  ladder tier, so every tier answers the same spec identically;
* **metrics labeling** — the per-kind histogram key.

Registering a new kind is one :func:`register_kind` call — the planner,
the engine entry points, the serve schema and ``differential_verify``
all dispatch through the registry and need no edits.

Constrained lookups are exact by a reduction, not by re-filtering the
dataset: for quadrant orientation ``mask`` and a closed box ``[lo, hi]``,
locate the diagram at the *adjusted* query ``q'`` with ``q'_d =
max(q_d, lo_d)`` on normal axes and ``q'_d = min(q_d, hi_d)`` on
reflected axes, then drop result points outside the box on the remaining
side (:func:`box_filter`).  Every dominator of an in-box point of
``quadrant(q')`` is itself in-box (dominance moves coordinates toward
the query, never past the far box face), so skyline membership *and*
skyband dominator counts are preserved exactly — including queries and
box faces lying on grid lines, where the closed-edge locate matches the
closed box semantics.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace
from typing import Any, Callable

from repro.errors import DimensionalityError, QueryError

Coords = tuple[float, ...]
Box = tuple[Coords, Coords]
Result = tuple[int, ...]
#: A budget-aware diagram builder: ``builder(meter, dataset=None)``.
Builder = Callable[..., Any]


@dataclass(frozen=True)
class QuerySpec:
    """One immutable description of a skyline query.

    Attributes
    ----------
    kind:
        A registered query kind (:func:`registered_kinds`).  The four
        classic kinds are ``quadrant``, ``global``, ``dynamic`` and
        ``skyband``; ``constrained`` restricts a quadrant-family lookup
        to a closed box and ``diversified`` post-selects a max-min
        diverse subset of a skyband result.  The two compose: one spec
        may carry both a box and a diversification count.
    mask:
        Quadrant orientation — bit ``d`` set means the negative side of
        dimension ``d``.  Only quadrant-family kinds honour it.
    k:
        Skyband width (``k=1`` is the plain skyline).
    box:
        Optional closed constraint box ``(lo, hi)``; candidate points
        must satisfy ``lo_d <= p_d <= hi_d`` on every axis.
    diversify:
        Optional diversified-selection count: keep at most this many
        result points by greedy max-min distance in value space
        (deterministic lowest-id seeding and tie-breaks).
    """

    kind: str = "dynamic"
    mask: int = 0
    k: int = 1
    box: Box | None = None
    diversify: int | None = None

    @classmethod
    def of(
        cls,
        kind: "str | QuerySpec" = "dynamic",
        mask: int = 0,
        k: int = 1,
        box: Box | None = None,
        diversify: int | None = None,
    ) -> "QuerySpec":
        """Build a spec from the legacy keyword surface.

        Accepts an existing :class:`QuerySpec` in the ``kind`` position
        (returned as-is), which is what lets every engine entry point
        keep its historical ``(kind, mask, k)`` keywords as a thin
        compatibility shim.
        """
        if isinstance(kind, QuerySpec):
            return kind
        return cls(kind=kind, mask=mask, k=k, box=box, diversify=diversify)

    def validated(self, dim: int) -> "QuerySpec":
        """A normalized copy, or a typed error (see the kind's handler)."""
        return handler_for(self.kind).validate(self, dim)

    def cache_key(self) -> str:
        """A canonical identity string (batch grouping, cache labels).

        Specs that answer identically share a key; the key is *finer*
        than the diagram key (a box changes the lookup, not the
        diagram).
        """
        parts = [self.kind, f"mask{self.mask}", f"k{self.k}"]
        if self.box is not None:
            lo, hi = self.box
            parts.append(
                "box[" + ",".join(repr(c) for c in lo) + "]:["
                + ",".join(repr(c) for c in hi) + "]"
            )
        if self.diversify is not None:
            parts.append(f"div{self.diversify}")
        return "|".join(parts)


# ----------------------------------------------------------------------
# Field validation helpers (shared by the handlers and the serve layer)
# ----------------------------------------------------------------------

def check_mask(mask: Any, dim: int) -> int:
    """``mask`` as an int in ``[0, 2^dim)``, or :class:`QueryError`."""
    try:
        mask = int(mask)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"mask must be an integer, got {mask!r}") from exc
    if not 0 <= mask < (1 << dim):
        raise QueryError(
            f"mask {mask} out of range for {dim}-D data "
            f"(valid: 0..{(1 << dim) - 1})"
        )
    return mask


def check_k(k: Any) -> int:
    """``k`` as an int ``>= 1``, or :class:`QueryError`."""
    try:
        k = int(k)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"k must be an integer, got {k!r}") from exc
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    return k


def check_diversify(diversify: Any) -> int:
    """``diversify`` as an int ``>= 1``, or :class:`QueryError`."""
    try:
        diversify = int(diversify)
    except (TypeError, ValueError) as exc:
        raise QueryError(
            f"diversify must be an integer, got {diversify!r}"
        ) from exc
    if diversify < 1:
        raise QueryError(f"diversify must be >= 1, got {diversify}")
    return diversify


def _check_corner(corner: Any, dim: int, label: str) -> Coords:
    if isinstance(corner, (str, bytes)):
        raise QueryError(f"box {label} corner must be a point, got {corner!r}")
    try:
        coords = tuple(float(c) for c in corner)
    except (TypeError, ValueError) as exc:
        raise QueryError(
            f"box {label} corner must be numeric, got {corner!r}"
        ) from exc
    if len(coords) != dim:
        raise QueryError(
            f"box {label} corner has {len(coords)} dimensions, "
            f"dataset has {dim}"
        )
    if any(c != c for c in coords):
        raise QueryError("box corners must not contain NaN")
    return coords


def check_box(box: Any, dim: int) -> Box:
    """``box`` as a normalized ``(lo, hi)`` pair, or :class:`QueryError`."""
    try:
        lo_raw, hi_raw = box
    except (TypeError, ValueError) as exc:
        raise QueryError(
            f"box must be a (lo, hi) pair of corner points, got {box!r}"
        ) from exc
    lo = _check_corner(lo_raw, dim, "lo")
    hi = _check_corner(hi_raw, dim, "hi")
    for d in range(dim):
        if lo[d] > hi[d]:
            raise QueryError(
                f"box is empty on axis {d}: lo {lo[d]} > hi {hi[d]}"
            )
    return (lo, hi)


# ----------------------------------------------------------------------
# The box reduction (shared by the kernel, the planner's partial tier,
# and the serve workers)
# ----------------------------------------------------------------------

def restrict_coords(coords: Coords, box: Box, mask: int) -> Coords:
    """The adjusted locate coordinates for a box-restricted lookup.

    Per axis ``d``: ``max(q_d, lo_d)`` on a normal axis (the box's low
    face joins the quadrant's own lower bound), ``min(q_d, hi_d)`` on a
    reflected axis.  Locating the diagram here yields exactly the
    candidates satisfying the near-side box constraint; the far side is
    applied by :func:`box_filter`.
    """
    lo, hi = box
    return tuple(
        min(c, hi[d]) if mask >> d & 1 else max(c, lo[d])
        for d, c in enumerate(coords)
    )


def box_filter(
    points: Sequence[Sequence[float]], result: Result, box: Box, mask: int
) -> Result:
    """Drop result ids outside the box's far face per axis.

    Only the side not already absorbed into :func:`restrict_coords`
    needs checking: ``p_d <= hi_d`` on normal axes, ``p_d >= lo_d`` on
    reflected axes.  Exact for skylines *and* skyband dominator counts
    — every dominator of an in-box point is itself in-box.
    """
    lo, hi = box
    dim = len(lo)
    kept = []
    for pid in result:
        p = points[pid]
        for d in range(dim):
            if (p[d] < lo[d]) if mask >> d & 1 else (p[d] > hi[d]):
                break
        else:
            kept.append(pid)
    return tuple(kept)


# ----------------------------------------------------------------------
# Per-kind handlers
# ----------------------------------------------------------------------

def _quadrant_builder(db: Any, mask: int) -> Builder:
    def build(meter: Any, dataset: Any = None) -> Any:
        from repro.diagram.global_diagram import quadrant_diagram_for_mask

        return quadrant_diagram_for_mask(
            dataset if dataset is not None else db.dataset,
            mask,
            db._quadrant_algorithm(),
            budget=meter,
            build_options=db.build_options,
        )

    return build


def _skyband_builder(db: Any, k: int) -> Builder:
    def build(meter: Any, dataset: Any = None) -> Any:
        from repro.diagram.skyband import skyband_sweep

        return skyband_sweep(
            dataset if dataset is not None else db.dataset,
            k,
            budget=meter,
            build_options=db.build_options,
        )

    return build


class KindHandler:
    """Everything the runtime needs to know about one query kind.

    Subclasses set :attr:`kind` and override the hooks; the base class
    implements the shared parameter validation.  ``validate`` gates the
    full diagram-backed plan space (dimensionality limits included);
    ``validate_params`` checks only the spec's own fields — the scratch
    oracle works in any dimension, so ``query_from_scratch`` stays more
    permissive than the diagram path, exactly as it always has.
    """

    kind: str = ""
    #: Does the kind honour a quadrant mask?  (Others normalize to 0.)
    allows_mask: bool = False
    #: Does the kind honour a band width ``k``?  (Others normalize to 1.)
    allows_k: bool = False
    allows_box: bool = False
    allows_diversify: bool = False
    requires_box: bool = False
    requires_diversify: bool = False

    # -- validation ----------------------------------------------------

    def validate_params(self, spec: QuerySpec, dim: int) -> QuerySpec:
        """Field checks only; no diagram dimensionality constraints."""
        mask = check_mask(spec.mask, dim) if self.allows_mask else 0
        k = check_k(spec.k) if self.allows_k else 1
        box: Box | None = None
        if spec.box is not None:
            if not self.allows_box:
                raise QueryError(
                    f"kind {self.kind!r} takes no constraint box; "
                    "use kind='constrained'"
                )
            box = check_box(spec.box, dim)
        elif self.requires_box:
            raise QueryError(f"kind {self.kind!r} requires a (lo, hi) box")
        diversify: int | None = None
        if spec.diversify is not None:
            if not self.allows_diversify:
                raise QueryError(
                    f"kind {self.kind!r} takes no diversify count; "
                    "use kind='diversified'"
                )
            diversify = check_diversify(spec.diversify)
        elif self.requires_diversify:
            raise QueryError(
                f"kind {self.kind!r} requires a diversify count"
            )
        return replace(
            spec, mask=mask, k=k, box=box, diversify=diversify
        )

    def validate(self, spec: QuerySpec, dim: int) -> QuerySpec:
        """Full plan-space validation (diagram constraints included)."""
        return self.validate_params(spec, dim)

    # -- planning ------------------------------------------------------

    def diagram_key(self, spec: QuerySpec) -> str:
        raise NotImplementedError

    def make_builder(self, db: Any, spec: QuerySpec) -> Builder:
        raise NotImplementedError

    # -- ladder bottom + telemetry ------------------------------------

    def scratch(self, dataset: Any, coords: Coords, spec: QuerySpec) -> Result:
        """Direct from-scratch evaluation — the ground-truth oracle."""
        raise NotImplementedError

    def metrics_kind(self, spec: QuerySpec) -> str:
        """The per-kind histogram label for answers under this spec."""
        return self.kind


class _QuadrantHandler(KindHandler):
    kind = "quadrant"
    allows_mask = True

    def diagram_key(self, spec: QuerySpec) -> str:
        return f"quadrant:{spec.mask}"

    def make_builder(self, db: Any, spec: QuerySpec) -> Builder:
        return _quadrant_builder(db, spec.mask)

    def scratch(self, dataset: Any, coords: Coords, spec: QuerySpec) -> Result:
        from repro.skyline.queries import quadrant_skyline

        return quadrant_skyline(dataset, coords, spec.mask)


class _GlobalHandler(KindHandler):
    kind = "global"

    def diagram_key(self, spec: QuerySpec) -> str:
        return "global"

    def make_builder(self, db: Any, spec: QuerySpec) -> Builder:
        def build(meter: Any, dataset: Any = None) -> Any:
            from repro.diagram.global_diagram import global_diagram

            return global_diagram(
                dataset if dataset is not None else db.dataset,
                db._quadrant_algorithm(),
                budget=meter,
                build_options=db.build_options,
            )

        return build

    def scratch(self, dataset: Any, coords: Coords, spec: QuerySpec) -> Result:
        from repro.skyline.queries import global_skyline

        return global_skyline(dataset, coords)


class _DynamicHandler(KindHandler):
    kind = "dynamic"

    def validate(self, spec: QuerySpec, dim: int) -> QuerySpec:
        if dim != 2:
            raise DimensionalityError(
                "dynamic diagrams are 2-D; use "
                "diagram.highdim.dynamic_baseline_nd for d > 2"
            )
        return self.validate_params(spec, dim)

    def diagram_key(self, spec: QuerySpec) -> str:
        return "dynamic"

    def make_builder(self, db: Any, spec: QuerySpec) -> Builder:
        def build(meter: Any, dataset: Any = None) -> Any:
            from repro.diagram.dynamic_scanning import dynamic_scanning

            return dynamic_scanning(
                dataset if dataset is not None else db.dataset,
                budget=meter,
                build_options=db.build_options,
            )

        return build

    def scratch(self, dataset: Any, coords: Coords, spec: QuerySpec) -> Result:
        from repro.skyline.queries import dynamic_skyline

        return dynamic_skyline(dataset, coords)


class _SkybandHandler(KindHandler):
    kind = "skyband"
    allows_k = True

    def validate(self, spec: QuerySpec, dim: int) -> QuerySpec:
        if dim != 2:
            raise DimensionalityError("skyband diagrams are 2-D")
        return self.validate_params(spec, dim)

    def diagram_key(self, spec: QuerySpec) -> str:
        return f"skyband:{spec.k}"

    def make_builder(self, db: Any, spec: QuerySpec) -> Builder:
        return _skyband_builder(db, spec.k)

    def scratch(self, dataset: Any, coords: Coords, spec: QuerySpec) -> Result:
        from repro.skyline.queries import quadrant_skyband

        return quadrant_skyband(dataset, coords, spec.k)


class _SpecFamilyHandler(KindHandler):
    """Shared machinery of ``constrained`` and ``diversified``.

    Both ride the existing quadrant/skyband diagrams: the spec's
    ``k``/``mask`` pick the diagram key exactly as the plain kinds
    would, and the box/diversify parts only change the lookup.
    """

    allows_mask = True
    allows_k = True
    allows_box = True
    allows_diversify = True

    def validate(self, spec: QuerySpec, dim: int) -> QuerySpec:
        spec = self.validate_params(spec, dim)
        if spec.k > 1:
            # k > 1 serves from a skyband diagram: 2-D, first quadrant.
            if dim != 2:
                raise DimensionalityError("skyband diagrams are 2-D")
            if spec.mask != 0:
                raise QueryError(
                    f"k={spec.k} requires mask=0 "
                    "(skyband diagrams are first-quadrant)"
                )
        return spec

    def diagram_key(self, spec: QuerySpec) -> str:
        if spec.k > 1:
            return f"skyband:{spec.k}"
        return f"quadrant:{spec.mask}"

    def make_builder(self, db: Any, spec: QuerySpec) -> Builder:
        if spec.k > 1:
            return _skyband_builder(db, spec.k)
        return _quadrant_builder(db, spec.mask)

    def scratch(self, dataset: Any, coords: Coords, spec: QuerySpec) -> Result:
        from repro.skyline.queries import (
            constrained_skyband,
            diversified_select,
            quadrant_skyband,
            quadrant_skyline,
        )

        if spec.box is not None:
            result = constrained_skyband(
                dataset, coords, spec.k, mask=spec.mask, box=spec.box
            )
        elif spec.k > 1:
            result = quadrant_skyband(dataset, coords, spec.k, mask=spec.mask)
        else:
            result = quadrant_skyline(dataset, coords, spec.mask)
        if spec.diversify is not None:
            result = diversified_select(dataset, result, spec.diversify)
        return result


class _ConstrainedHandler(_SpecFamilyHandler):
    kind = "constrained"
    requires_box = True


class _DiversifiedHandler(_SpecFamilyHandler):
    kind = "diversified"
    requires_diversify = True


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

_REGISTRY: dict[str, KindHandler] = {}


def register_kind(handler: KindHandler) -> KindHandler:
    """Register (or replace) the handler serving ``handler.kind``."""
    if not handler.kind:
        raise ValueError("handler must name its kind")
    _REGISTRY[handler.kind] = handler
    return handler


def handler_for(kind: str) -> KindHandler:
    """The registered handler, or :class:`QueryError` for unknown kinds."""
    handler = _REGISTRY.get(kind)
    if handler is None:
        raise QueryError(f"unknown query kind {kind!r}")
    return handler


def registered_kinds() -> tuple[str, ...]:
    """Every registered query kind, in registration order."""
    return tuple(_REGISTRY)


for _handler in (
    _QuadrantHandler(),
    _GlobalHandler(),
    _DynamicHandler(),
    _SkybandHandler(),
    _ConstrainedHandler(),
    _DiversifiedHandler(),
):
    register_kind(_handler)
