"""The shared lookup kernel: grid-locate -> boundary-resolve -> store-lookup.

Every diagram lookup in the library — single query, vectorized batch,
boundary-exact detour — goes through one :class:`QueryKernel`.  The two
diagram classes in ``repro.diagram.base`` differ only in *orientation*
(which axes read reflected grids with upper-closed edges) and in how a
query that lands exactly on a grid line is resolved; the kernel captures
that variation in a ``mode`` parameter instead of duplicated class
bodies:

``closed_edge``
    Quadrant (and skyband) diagrams.  Edge ownership is encoded in the
    locate step itself: axis ``d`` uses the upper-side cell when bit
    ``d`` of ``upper_mask`` is set (a reflected axis), the lower-side
    cell otherwise.  Every query, boundary or not, is a pure store read.

``global_union``
    Global diagrams.  Cells are located on the lower side; a query on a
    grid line belongs to no single cell, so the kernel unions the
    results at the adjacent cell corners and re-evaluates the global
    skyline among that candidate set only.

``dynamic_union``
    Dynamic diagrams over bisector subcells.  Like ``global_union``,
    plus the bisector *contributors* of each boundary line — a point
    whose bisector defines the line can enter the answer exactly on it.

The kernel also keeps cumulative counters (queries served, batches,
boundary hits) that the query planner reads as deltas to build
per-answer :class:`~repro.query.metrics.QueryReport` telemetry.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Sequence

import numpy as np

from repro.errors import QueryError
from repro.geometry.grid import as_query_array

Result = tuple[int, ...]

#: Recognised kernel modes (see module docstring).
MODES = ("closed_edge", "global_union", "dynamic_union")


class QueryKernel:
    """One lookup engine per diagram: locate, resolve boundaries, read.

    Parameters
    ----------
    grid:
        A ``Grid`` (closed_edge / global_union) or ``SubcellGrid``
        (dynamic_union); must expose ``locate``, ``locate_batch``,
        ``boundary_axes`` and ``dataset``.
    store:
        The diagram's ``ResultStore``.
    mode:
        One of :data:`MODES`.
    upper_mask:
        closed_edge only — bit ``d`` set means axis ``d`` is reflected
        and owns its upper edge.
    """

    __slots__ = (
        "grid",
        "store",
        "mode",
        "upper_mask",
        "dim",
        "served",
        "batches",
        "boundary_hits",
        "_fused",
        "_flat_ids",
    )

    def __init__(self, grid, store, mode: str, upper_mask: int = 0) -> None:
        if mode not in MODES:
            raise ValueError(
                f"unknown kernel mode {mode!r}; expected one of {MODES}"
            )
        self.grid = grid
        self.store = store
        self.mode = mode
        self.upper_mask = upper_mask
        self.dim = len(store.shape)
        self.served = 0
        self.batches = 0
        self.boundary_hits = 0
        self._fused = self._make_fused()
        self._flat_ids = (
            store.ids.reshape(-1) if self._fused is not None else None
        )

    def _make_fused(self):
        """Precompile the scalar ``closed_edge`` lookup into one flat read.

        In ``closed_edge`` mode edge ownership is entirely inside the
        per-axis bisect side, so a scalar query is exactly: one bisect
        per axis over the grid's Python-tuple axes, a stride
        multiply-accumulate into the C-order flat id array, and one
        table read.  Fusing those into a single loop (no tuple cell, no
        per-cell bounds re-checks — bisect results are always in range)
        removes most of the interpreter overhead that separated the
        scalar path from the batch kernel.  Returns ``None`` — and the
        scalar path falls back to locate/result_at — for union modes,
        non-dense grid backends (rle/quad lookups go through the
        backend's own search), or a non-C-contiguous id array.
        """
        if self.mode != "closed_edge":
            return None
        if self.store.backend_kind != "dense":
            return None
        ids = self.store.ids
        if not ids.flags.c_contiguous or tuple(ids.shape) != self.store.shape:
            return None
        axes = self.grid.axes
        if len(axes) != self.dim:
            return None
        strides = []
        stride = 1
        for extent in reversed(self.store.shape):
            strides.append(stride)
            stride *= extent
        strides.reverse()
        return tuple(
            (
                axes[d],
                bisect_right if self.upper_mask >> d & 1 else bisect_left,
                strides[d],
            )
            for d in range(self.dim)
        )

    # ------------------------------------------------------------------
    # Single query
    # ------------------------------------------------------------------

    def query(self, query: Sequence[float]) -> Result:
        """Answer one query with exact boundary semantics."""
        self.served += 1
        fused = self._fused
        if fused is not None:
            if len(query) != self.dim:
                raise QueryError(
                    f"query has {len(query)} dimensions, grid has {self.dim}"
                )
            flat = 0
            for coord, (axis, locate, stride) in zip(query, fused):
                x = float(coord)
                if x != x:
                    raise QueryError("query coordinates must not be NaN")
                flat += locate(axis, x) * stride
            return self.store.result_tuple(self._flat_ids.item(flat))
        if self.mode == "closed_edge":
            cell = self.grid.locate(query, upper_mask=self.upper_mask)
            return self.store.result_at(cell)
        cell = self.grid.locate(query)
        bits = self.grid.boundary_axes(query, cell)
        if bits:
            axes = [d for d in range(self.dim) if bits >> d & 1]
            return self._boundary_result(query, cell, axes)
        return self.store.result_at(cell)

    # ------------------------------------------------------------------
    # Batch
    # ------------------------------------------------------------------

    def query_batch(self, queries) -> list[Result]:
        """Answer m queries with one locate/gather; boundary rows detour.

        The vectorized path is one ``searchsorted`` per axis plus one
        fancy-indexed gather from the store; only rows flagged on a grid
        line (measure zero for continuous query distributions) take the
        per-row exact resolution.
        """
        self.batches += 1
        if self.mode == "closed_edge":
            cells = self.grid.locate_batch(queries, upper_mask=self.upper_mask)
            self.served += int(cells.shape[0])
            return self.store.lookup_batch(cells)
        coords = as_query_array(queries, self.dim)
        cells, on_boundary = self.grid.locate_batch(
            coords, return_boundary=True
        )
        self.served += int(cells.shape[0])
        results = self.store.lookup_batch(cells)
        if cells.shape[0] and on_boundary.any():
            for row in np.nonzero(on_boundary.any(axis=1))[0].tolist():
                axes = [
                    d for d in range(self.dim) if bool(on_boundary[row, d])
                ]
                results[row] = self._boundary_result(
                    tuple(coords[row].tolist()),
                    tuple(int(c) for c in cells[row]),
                    axes,
                )
        return results

    # ------------------------------------------------------------------
    # Box-restricted lookups (the `constrained` kind)
    # ------------------------------------------------------------------

    def _require_closed_edge(self) -> None:
        if self.mode != "closed_edge":
            raise QueryError(
                "box-restricted lookups are quadrant-family only "
                f"(kernel mode {self.mode!r})"
            )

    def query_restricted(
        self, query: Sequence[float], lo: Sequence[float], hi: Sequence[float]
    ) -> Result:
        """Answer one query restricted to the closed box ``[lo, hi]``.

        Locates at the box-adjusted coordinates (per axis: clamp up to
        ``lo`` on normal axes, down to ``hi`` on reflected axes) and
        drops result points beyond the box's far face.  Exact for
        skylines and skybands alike — see ``repro.query.spec`` for the
        reduction argument.
        """
        from repro.query.spec import box_filter, restrict_coords

        self._require_closed_edge()
        if len(query) != self.dim:
            raise QueryError(
                f"query has {len(query)} dimensions, grid has {self.dim}"
            )
        adjusted = restrict_coords(
            tuple(float(c) for c in query), (tuple(lo), tuple(hi)),
            self.upper_mask,
        )
        result = self.query(adjusted)
        return box_filter(
            self.grid.dataset.points, result, (tuple(lo), tuple(hi)),
            self.upper_mask,
        )

    def query_batch_restricted(
        self, queries, lo: Sequence[float], hi: Sequence[float]
    ) -> list[Result]:
        """Batch variant of :meth:`query_restricted` (one clamp per axis)."""
        from repro.query.spec import box_filter

        self._require_closed_edge()
        coords = np.array(as_query_array(queries, self.dim), copy=True)
        for d in range(self.dim):
            if self.upper_mask >> d & 1:
                np.minimum(coords[:, d], float(hi[d]), out=coords[:, d])
            else:
                np.maximum(coords[:, d], float(lo[d]), out=coords[:, d])
        results = self.query_batch(coords)
        box = (tuple(float(c) for c in lo), tuple(float(c) for c in hi))
        points = self.grid.dataset.points
        return [
            box_filter(points, result, box, self.upper_mask)
            for result in results
        ]

    # ------------------------------------------------------------------
    # Boundary resolution — the single implementation repo-wide
    # ------------------------------------------------------------------

    def _boundary_result(self, query, cell, axes) -> Result:
        """Exact answer for a query lying on the grid lines in ``axes``.

        A boundary query belongs to every cell incident to it, so the
        candidate set is the union of results at the adjacent cell
        corners; re-running the skyline operator on those candidates
        alone is exact because any point outside the union is dominated
        in each incident cell and hence at the shared boundary too.  In
        ``dynamic_union`` mode the points *contributing* a crossed
        bisector line are added as well — a point at distance exactly
        equal along the bisector enters the dynamic skyline there.
        """
        self.boundary_hits += 1
        if self.mode == "global_union":
            from repro.skyline.queries import global_skyline_among

            candidates = self.store.union_at_corners(cell, axes)
            return global_skyline_among(self.grid.dataset, candidates, query)
        if self.mode == "dynamic_union":
            from repro.skyline.queries import dynamic_skyline_among

            candidates = set(self.store.union_at_corners(cell, axes))
            for d in axes:
                candidates.update(
                    self.grid.boundary_contributors(d, cell[d] + 1)
                )
            return dynamic_skyline_among(
                self.grid.dataset, sorted(candidates), query
            )
        raise AssertionError(
            f"mode {self.mode!r} performs no boundary resolution"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueryKernel(mode={self.mode!r}, dim={self.dim}, "
            f"served={self.served}, boundary_hits={self.boundary_hits})"
        )
