"""One query planner for single, batch, and degraded-ladder answering.

``SkylineDatabase`` used to route single queries, batches, skyband, and
the degradation ladder through four separate code paths, re-resolving
the plan (and re-checking the diagram cache, backoff state, and partial)
for *every* query of a degraded batch.  The planner replaces all of
them:

* :meth:`QueryPlanner.plan` validates a ``(kind, mask, k)`` request once
  and returns an immutable :class:`QueryPlan` — the diagram key plus the
  budget-aware builder (user errors raise here, before the ladder, so
  they are never mistaken for build failures);
* :meth:`QueryPlanner.execute` answers a batch of queries under one plan
  resolution: obtain the diagram once, and either run the kernel's
  vectorized batch path or walk each query down the ladder
  (partial → scratch) against the *same* resolved state.

A single query is a batch of one.  Every answer carries a
:class:`~repro.query.metrics.QueryReport`, and every execution is folded
into the database's :class:`~repro.query.metrics.MetricsRegistry` — the
single choke point for tier accounting.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import NamedTuple

from repro.errors import DimensionalityError, QueryError
from repro.query.metrics import QueryReport
from repro.resilience import CoverageMiss

#: Query kinds the planner understands.
KINDS = ("quadrant", "global", "dynamic", "skyband")

_MISS = object()  # sentinel: () is a valid query result


class QueryAnswer(NamedTuple):
    """A query result annotated with the ladder tier that produced it.

    ``report`` carries the serving diagram's
    :class:`~repro.diagram.pipeline.BuildReport` when the ``diagram``
    tier answered (``None`` for partial/scratch tiers and pipeline-less
    diagrams).  ``query_report`` is the lookup-side
    :class:`~repro.query.metrics.QueryReport` and is always present on
    answers produced by the planner.
    """

    result: tuple[int, ...]
    served_from: str
    key: str
    report: object = None
    query_report: QueryReport | None = None


@dataclass(frozen=True)
class QueryPlan:
    """An immutable resolved query request: key, parameters, builder."""

    kind: str
    key: str
    mask: int = 0
    k: int = 1
    builder: object = None


class QueryPlanner:
    """Resolves and executes query plans for one :class:`SkylineDatabase`."""

    __slots__ = ("_db",)

    def __init__(self, db) -> None:
        self._db = db

    # ------------------------------------------------------------------
    # Plan resolution
    # ------------------------------------------------------------------
    def plan(self, kind: str, mask: int = 0, k: int = 1) -> QueryPlan:
        """Validate a query kind and resolve its :class:`QueryPlan`.

        User errors (unknown kind, bad mask/k, unsupported
        dimensionality) raise here — *before* the degradation ladder, so
        they are never mistaken for build failures.
        """
        db = self._db
        # Builders take the dataset explicitly: the engine pins a
        # generation's dataset so a concurrent update swap can never mix
        # a new dataset into an old generation's diagram cache.
        if kind == "quadrant":
            mask = db._check_mask(mask)

            def build(meter, dataset=None, mask=mask):
                from repro.diagram.global_diagram import (
                    quadrant_diagram_for_mask,
                )

                return quadrant_diagram_for_mask(
                    dataset if dataset is not None else db.dataset,
                    mask, db._quadrant_algorithm(),
                    budget=meter, build_options=db.build_options,
                )

            return QueryPlan("quadrant", f"quadrant:{mask}", mask, 1, build)
        if kind == "global":

            def build(meter, dataset=None):
                from repro.diagram.global_diagram import global_diagram

                return global_diagram(
                    dataset if dataset is not None else db.dataset,
                    db._quadrant_algorithm(), budget=meter,
                    build_options=db.build_options,
                )

            return QueryPlan("global", "global", 0, 1, build)
        if kind == "dynamic":
            if db.dataset.dim != 2:
                raise DimensionalityError(
                    "dynamic diagrams are 2-D; use "
                    "diagram.highdim.dynamic_baseline_nd for d > 2"
                )

            def build(meter, dataset=None):
                from repro.diagram.dynamic_scanning import dynamic_scanning

                return dynamic_scanning(
                    dataset if dataset is not None else db.dataset,
                    budget=meter,
                    build_options=db.build_options,
                )

            return QueryPlan("dynamic", "dynamic", 0, 1, build)
        if kind == "skyband":
            if db.dataset.dim != 2:
                raise DimensionalityError("skyband diagrams are 2-D")
            k = db._check_k(k)

            def build(meter, dataset=None, k=k):
                from repro.diagram.skyband import skyband_sweep

                return skyband_sweep(
                    dataset if dataset is not None else db.dataset,
                    k, budget=meter,
                    build_options=db.build_options,
                )

            return QueryPlan("skyband", f"skyband:{k}", 0, k, build)
        raise QueryError(f"unknown query kind {kind!r}")

    def plan_for_key(self, key: str) -> QueryPlan:
        """Re-resolve a plan from a recorded diagram key (rebuild path)."""
        if key.startswith("quadrant:"):
            return self.plan("quadrant", mask=int(key.split(":", 1)[1]))
        if key.startswith("skyband:"):
            return self.plan("skyband", k=int(key.split(":", 1)[1]))
        return self.plan(key)

    # ------------------------------------------------------------------
    # Execution: the degradation ladder, once per batch
    # ------------------------------------------------------------------
    def execute(
        self, plan: QueryPlan, queries: Sequence[Sequence[float]]
    ) -> list[QueryAnswer]:
        """Answer ``queries`` under one plan resolution.

        The diagram is obtained (and, if needed, built) exactly once for
        the whole batch.  If it is available, the kernel's vectorized
        batch path answers everything and all answers share one
        :class:`QueryReport`; otherwise each query falls down the ladder
        (partial → scratch) against the state resolved up front, with a
        per-query report.  The tiers agree on the answer by construction
        — ``served_from`` is a latency annotation, not a correctness
        caveat.
        """
        db = self._db
        clock = db._clock
        # Apply due journalled updates before serving (the cooperative
        # "background" retry), then capture the serving generation ONCE:
        # every lookup below — diagram, partial, scratch — resolves
        # against this object, so a concurrent update swap can never
        # produce a mixed-generation answer within the batch.
        db._poke_updates()
        gen = db._gen
        pending = db._updates.depth
        cached = gen.diagrams.get(plan.key) is not None
        diagram = db._obtain(plan.key, plan.builder, gen=gen)
        # Latency windows start *after* the obtain: construction cost is
        # build-side telemetry (BuildReport / the registry's phase sink),
        # not lookup latency — a cold first query should not skew the
        # per-query histograms by the whole build.
        start = clock()
        if diagram is not None:
            kernel = diagram.kernel
            hits_before = kernel.boundary_hits
            if len(queries) == 1:
                # Batch-of-1: the scalar kernel path skips the numpy
                # round-trip a one-row locate_batch would pay.  Validate
                # here — multi-row batches get their typed errors from
                # locate_batch, and the scalar path must match.
                results = [diagram.query(db._check_query(queries[0]))]
            else:
                results = diagram.query_batch(queries)
            seconds = max(0.0, clock() - start)
            m = len(results)
            query_report = QueryReport(
                kind=plan.kind,
                key=plan.key,
                tier="diagram",
                batch=m,
                seconds=seconds,
                per_query_s=seconds / m if m else 0.0,
                boundary_hits=kernel.boundary_hits - hits_before,
                cache_hit=cached,
                pending_updates=pending,
                generation=gen.sha,
            )
            db.metrics.observe_query(query_report)
            build_report = getattr(diagram, "build_report", None)
            return [
                QueryAnswer(result, "diagram", plan.key, build_report,
                            query_report)
                for result in results
            ]
        # Degraded: the plan (cache miss, backoff, partial) was resolved
        # once above; each query now walks partial -> scratch against it.
        partial = gen.states[plan.key].partial
        answers: list[QueryAnswer] = []
        for query in queries:
            coords = db._check_query(query)
            started = clock()
            result = _MISS
            tier = "scratch"
            if partial is not None:
                try:
                    result = partial.query(coords)
                    tier = "partial"
                except CoverageMiss:
                    result = _MISS
            if result is _MISS:
                result = db._scratch(
                    coords, plan.kind, plan.mask, plan.k, dataset=gen.dataset
                )
            seconds = max(0.0, clock() - started)
            query_report = QueryReport(
                kind=plan.kind,
                key=plan.key,
                tier=tier,
                batch=1,
                seconds=seconds,
                per_query_s=seconds,
                pending_updates=pending,
                generation=gen.sha,
            )
            db.metrics.observe_query(query_report)
            answers.append(
                QueryAnswer(result, tier, plan.key, None, query_report)
            )
        return answers
