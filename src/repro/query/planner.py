"""One query planner for single, batch, and degraded-ladder answering.

``SkylineDatabase`` used to route single queries, batches, skyband, and
the degradation ladder through four separate code paths, re-resolving
the plan (and re-checking the diagram cache, backoff state, and partial)
for *every* query of a degraded batch.  The planner replaces all of
them:

* :meth:`QueryPlanner.plan` validates a :class:`~repro.query.spec.QuerySpec`
  (or the legacy ``(kind, mask, k)`` keywords, which build one) through
  the kind's registered :class:`~repro.query.spec.KindHandler` and
  returns an immutable :class:`QueryPlan` — the diagram key plus the
  budget-aware builder (user errors raise here, before the ladder, so
  they are never mistaken for build failures);
* :meth:`QueryPlanner.execute` answers a batch of queries under one plan
  resolution: obtain the diagram once, and either run the kernel's
  vectorized batch path or walk each query down the ladder
  (partial → scratch) against the *same* resolved state.

A single query is a batch of one.  Every answer carries a
:class:`~repro.query.metrics.QueryReport`, and every execution is folded
into the database's :class:`~repro.query.metrics.MetricsRegistry` — the
single choke point for tier accounting.

The planner itself is kind-agnostic: adding a query kind means
registering a handler in ``repro.query.spec``, not editing this module.
The handler owns validation, the diagram key, the builder and the
scratch oracle; the two spec-only features — box restriction and
diversified selection — are applied here uniformly for whatever kind
carries them.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.query.metrics import QueryReport
from repro.query.spec import (
    Builder,
    KindHandler,
    QuerySpec,
    box_filter,
    handler_for,
    registered_kinds,
    restrict_coords,
)
from repro.resilience import CoverageMiss

#: Query kinds the planner understands (the registry's kinds).
KINDS = registered_kinds()

_MISS = object()  # sentinel: () is a valid query result


class QueryAnswer(NamedTuple):
    """A query result annotated with the ladder tier that produced it.

    ``report`` carries the serving diagram's
    :class:`~repro.diagram.pipeline.BuildReport` when the ``diagram``
    tier answered (``None`` for partial/scratch tiers and pipeline-less
    diagrams).  ``query_report`` is the lookup-side
    :class:`~repro.query.metrics.QueryReport` and is always present on
    answers produced by the planner.  ``error`` is ``None`` on every
    exact tier; an ``approx``-tier answer (a diagram stored on an
    inexact grid backend, e.g. quadtree cell merging) carries the
    backend's measured mismatched-cell fraction instead.
    """

    result: tuple[int, ...]
    served_from: str
    key: str
    report: object = None
    query_report: QueryReport | None = None
    error: float | None = None


@dataclass(frozen=True)
class QueryPlan:
    """An immutable resolved query request: spec, key, builder, handler.

    The historical ``kind``/``mask``/``k`` attributes remain as
    read-only views onto the spec for callers written against the old
    triple.
    """

    spec: QuerySpec
    key: str
    builder: Builder | None = None
    handler: KindHandler = field(default_factory=lambda: handler_for("dynamic"))

    @property
    def kind(self) -> str:
        return self.spec.kind

    @property
    def mask(self) -> int:
        return self.spec.mask

    @property
    def k(self) -> int:
        return self.spec.k


class QueryPlanner:
    """Resolves and executes query plans for one :class:`SkylineDatabase`."""

    __slots__ = ("_db",)

    def __init__(self, db) -> None:
        self._db = db

    # ------------------------------------------------------------------
    # Plan resolution
    # ------------------------------------------------------------------
    def plan(
        self,
        kind: str | QuerySpec = "dynamic",
        mask: int = 0,
        k: int = 1,
        box=None,
        diversify: int | None = None,
    ) -> QueryPlan:
        """Validate a query spec and resolve its :class:`QueryPlan`.

        Accepts either a :class:`QuerySpec` in the ``kind`` position or
        the legacy keywords (which build one).  User errors (unknown
        kind, bad mask/k/box/diversify, unsupported dimensionality)
        raise here — *before* the degradation ladder, so they are never
        mistaken for build failures.
        """
        db = self._db
        spec = QuerySpec.of(kind, mask=mask, k=k, box=box, diversify=diversify)
        handler = handler_for(spec.kind)
        spec = handler.validate(spec, db.dataset.dim)
        # Builders take the dataset explicitly: the engine pins a
        # generation's dataset so a concurrent update swap can never mix
        # a new dataset into an old generation's diagram cache.
        return QueryPlan(
            spec=spec,
            key=handler.diagram_key(spec),
            builder=handler.make_builder(db, spec),
            handler=handler,
        )

    def plan_for_key(self, key: str) -> QueryPlan:
        """Re-resolve a plan from a recorded diagram key (rebuild path)."""
        if key.startswith("quadrant:"):
            return self.plan("quadrant", mask=int(key.split(":", 1)[1]))
        if key.startswith("skyband:"):
            return self.plan("skyband", k=int(key.split(":", 1)[1]))
        return self.plan(key)

    # ------------------------------------------------------------------
    # Execution: the degradation ladder, once per batch
    # ------------------------------------------------------------------
    def execute(
        self, plan: QueryPlan, queries: Sequence[Sequence[float]]
    ) -> list[QueryAnswer]:
        """Answer ``queries`` under one plan resolution.

        The diagram is obtained (and, if needed, built) exactly once for
        the whole batch.  If it is available, the kernel's vectorized
        batch path answers everything and all answers share one
        :class:`QueryReport`; otherwise each query falls down the ladder
        (partial → scratch) against the state resolved up front, with a
        per-query report.  The tiers agree on the answer by construction
        — ``served_from`` is a latency annotation, not a correctness
        caveat.
        """
        db = self._db
        clock = db._clock
        spec = plan.spec
        # Apply due journalled updates before serving (the cooperative
        # "background" retry), then capture the serving generation ONCE:
        # every lookup below — diagram, partial, scratch — resolves
        # against this object, so a concurrent update swap can never
        # produce a mixed-generation answer within the batch.
        db._poke_updates()
        gen = db._gen
        pending = db._updates.depth
        cached = gen.diagrams.get(plan.key) is not None
        diagram = db._obtain(plan.key, plan.builder, gen=gen)
        # Latency windows start *after* the obtain: construction cost is
        # build-side telemetry (BuildReport / the registry's phase sink),
        # not lookup latency — a cold first query should not skew the
        # per-query histograms by the whole build.
        start = clock()
        if diagram is not None:
            kernel = diagram.kernel
            hits_before = kernel.boundary_hits
            if spec.box is not None:
                lo, hi = spec.box
                if len(queries) == 1:
                    results = [
                        kernel.query_restricted(
                            db._check_query(queries[0]), lo, hi
                        )
                    ]
                else:
                    results = kernel.query_batch_restricted(queries, lo, hi)
            elif len(queries) == 1:
                # Batch-of-1: the scalar kernel path skips the numpy
                # round-trip a one-row locate_batch would pay.  Validate
                # here — multi-row batches get their typed errors from
                # locate_batch, and the scalar path must match.
                results = [diagram.query(db._check_query(queries[0]))]
            else:
                results = diagram.query_batch(queries)
            if spec.diversify is not None:
                from repro.skyline.queries import diversified_select

                results = [
                    diversified_select(gen.dataset, result, spec.diversify)
                    for result in results
                ]
            seconds = max(0.0, clock() - start)
            m = len(results)
            # Exact backends serve the diagram tier; an inexact grid
            # backend (quadtree cell merging) serves the same lookups
            # one rung down, with the measured error on every answer.
            store = getattr(diagram, "store", None)
            error = store.approx_error if store is not None else None
            tier = "diagram" if error is None else "approx"
            query_report = QueryReport(
                kind=plan.handler.metrics_kind(spec),
                key=plan.key,
                tier=tier,
                batch=m,
                seconds=seconds,
                per_query_s=seconds / m if m else 0.0,
                boundary_hits=kernel.boundary_hits - hits_before,
                cache_hit=cached,
                pending_updates=pending,
                generation=gen.sha,
            )
            db.metrics.observe_query(query_report)
            build_report = getattr(diagram, "build_report", None)
            return [
                QueryAnswer(result, tier, plan.key, build_report,
                            query_report, error)
                for result in results
            ]
        # Degraded: the plan (cache miss, backoff, partial) was resolved
        # once above; each query now walks partial -> scratch against it.
        # Partials only exist for first-quadrant (mask 0) builds —
        # quadrant_diagram_for_mask drops reflected partials — so the
        # lower-closed partial locate matches the spec's box semantics.
        partial = gen.states[plan.key].partial
        answers: list[QueryAnswer] = []
        for query in queries:
            coords = db._check_query(query)
            started = clock()
            result = _MISS
            tier = "scratch"
            if partial is not None:
                lookup = (
                    coords
                    if spec.box is None
                    else restrict_coords(coords, spec.box, spec.mask)
                )
                try:
                    found = partial.query(lookup)
                    if spec.box is not None:
                        found = box_filter(
                            gen.dataset.points, found, spec.box, spec.mask
                        )
                    if spec.diversify is not None:
                        from repro.skyline.queries import diversified_select

                        found = diversified_select(
                            gen.dataset, found, spec.diversify
                        )
                    result = found
                    tier = "partial"
                except CoverageMiss:
                    result = _MISS
            if result is _MISS:
                result = plan.handler.scratch(gen.dataset, coords, spec)
            seconds = max(0.0, clock() - started)
            query_report = QueryReport(
                kind=plan.handler.metrics_kind(spec),
                key=plan.key,
                tier=tier,
                batch=1,
                seconds=seconds,
                per_query_s=seconds,
                pending_updates=pending,
                generation=gen.sha,
            )
            db.metrics.observe_query(query_report)
            answers.append(
                QueryAnswer(result, tier, plan.key, None, query_report)
            )
        return answers
