"""Query-side telemetry: latency histograms, counters, ``QueryReport``.

The lookup-side mirror of the build pipeline's telemetry
(``repro.diagram.pipeline``).  A :class:`MetricsRegistry` aggregates

* per-(kind, tier) latency histograms over log-scale buckets,
* ladder-tier counts — *the* single choke point for tier accounting
  (``SkylineDatabase`` no longer keeps its own ``_tiers`` dict),
* boundary-hit and diagram-cache counters, and
* build-phase timings, because the registry implements the same
  telemetry-sink protocol as ``BuildContext`` — ``registry(name,
  payload)`` with ``payload["seconds"]`` — so one object can watch both
  sides: pass it as ``BuildOptions(telemetry=registry)`` and as
  ``SkylineDatabase(metrics=registry)``.

Each answer carries a :class:`QueryReport` (the counterpart of
``BuildReport``): which tier served it, how long it took, how many
queries shared the plan execution, and how many boundary-exact detours
were taken.  ``registry.snapshot()`` returns the JSON-ready aggregate
surfaced by ``health()``, ``repro stats``, and the chaos harness.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Serving tiers of the degradation ladder, best first.  ``approx`` is
#: the diagram tier served through an inexact grid backend (quadtree
#: cell merging): same latency class as ``diagram``, but answers carry
#: a measured error bound instead of exactness.
TIERS = ("diagram", "approx", "partial", "scratch")

#: Histogram bucket upper bounds (seconds), a 1-2-5 series from 100ns to 10s.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    base * scale
    for scale in (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)
    for base in (1.0, 2.0, 5.0)
) + (10.0,)


class LatencyHistogram:
    """Fixed-bucket latency histogram with exact count/mean/min/max."""

    __slots__ = ("counts", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, seconds: float, weight: int = 1) -> None:
        """Record ``weight`` observations of ``seconds`` each."""
        if weight <= 0:
            return
        seconds = max(0.0, float(seconds))
        self.counts[bisect_left(BUCKET_BOUNDS, seconds)] += weight
        self.count += weight
        self.total += seconds * weight
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Upper bucket bound at quantile ``q`` (0 when empty)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for slot, n in enumerate(self.counts):
            running += n
            if running >= target and n:
                if slot < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[slot]
                return self.max if self.max is not None else BUCKET_BOUNDS[-1]
        return self.max if self.max is not None else 0.0

    def as_dict(self) -> dict:
        """JSON-ready summary (counts, mean, min/max, p50/p99 bounds)."""
        return {
            "count": self.count,
            "mean_s": self.total / self.count if self.count else 0.0,
            "min_s": self.min or 0.0,
            "max_s": self.max or 0.0,
            "p50_s": self.quantile(0.50),
            "p99_s": self.quantile(0.99),
        }


@dataclass
class QueryReport:
    """Per-answer lookup telemetry — the counterpart of ``BuildReport``.

    Attributes
    ----------
    kind / key:
        Query semantics and the diagram key the plan resolved to
        (e.g. ``"quadrant"`` / ``"quadrant:2"``).
    tier:
        Which ladder tier served the answer: ``"diagram"``,
        ``"partial"`` or ``"scratch"``; always equals the answer's
        ``served_from``.
    batch:
        How many queries shared this plan execution (1 on the single
        path and on every degraded answer; m on the vectorized diagram
        path — all m answers share one report object).
    seconds / per_query_s:
        Wall clock of the execution and its per-query share.
    boundary_hits:
        Boundary-exact resolutions taken during this execution.
    cache_hit:
        True when the diagram was already attached (no build attempt
        was needed to serve this plan).
    pending_updates:
        Depth of the database's update journal when the answer was
        produced.  Non-zero means the answer is *stale*: it reflects the
        generation last swapped in, not the journalled updates still
        waiting to be applied (e.g. during update-failure backoff).
    generation:
        Content sha of the dataset generation that served the answer.
    """

    kind: str
    key: str
    tier: str
    batch: int = 1
    seconds: float = 0.0
    per_query_s: float = 0.0
    boundary_hits: int = 0
    cache_hit: bool = False
    pending_updates: int = 0
    generation: str | None = None

    def as_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "kind": self.kind,
            "key": self.key,
            "tier": self.tier,
            "batch": self.batch,
            "seconds": self.seconds,
            "per_query_s": self.per_query_s,
            "boundary_hits": self.boundary_hits,
            "cache_hit": self.cache_hit,
            "pending_updates": self.pending_updates,
            "generation": self.generation,
        }


@dataclass
class MetricsRegistry:
    """Aggregated query-runtime metrics; also a build-telemetry sink."""

    _latency: dict = field(default_factory=dict)
    _tiers: dict = field(
        default_factory=lambda: {tier: 0 for tier in TIERS}
    )
    _counters: dict = field(default_factory=dict)
    _build_phases: dict = field(default_factory=dict)
    _serving: dict = field(default_factory=dict)
    _updates: dict = field(default_factory=dict)

    # -- query side ----------------------------------------------------

    def observe_query(self, report: QueryReport) -> None:
        """Fold one :class:`QueryReport` into the aggregate.

        This is the only place serving tiers are counted: every entry
        point (single, batch, ladder fallback) funnels through the
        planner, and the planner funnels through here.
        """
        if report.tier not in self._tiers:
            raise ValueError(
                f"unknown serving tier {report.tier!r}; expected one of "
                f"{TIERS}"
            )
        self._tiers[report.tier] += report.batch
        self._bump("executions")
        self._bump("queries", report.batch)
        self._bump("boundary_hits", report.boundary_hits)
        if report.tier == "diagram":
            self._bump("cache_hits" if report.cache_hit else "cache_misses")
        if report.pending_updates:
            self._bump("stale_answers", report.batch)
        hist = self._latency.get((report.kind, report.tier))
        if hist is None:
            hist = self._latency[(report.kind, report.tier)] = (
                LatencyHistogram()
            )
        hist.observe(report.per_query_s, weight=report.batch)
        if report.generation is not None:
            self.observe_serving(
                report.generation, report.per_query_s, weight=report.batch
            )

    def observe_serving(
        self, generation: str, seconds: float, weight: int = 1
    ) -> None:
        """Fold serving latency into the per-generation histogram.

        ``generation`` is the dataset-content sha of the generation that
        produced the answers; the serving layer (``repro serve`` health)
        reports these histograms so a latency regression can be pinned to
        the generation swap that introduced it.
        """
        hist = self._serving.get(generation)
        if hist is None:
            hist = self._serving[generation] = LatencyHistogram()
        hist.observe(seconds, weight=weight)

    def record_rejected(self, amount: int = 1) -> None:
        """Count a request rejected at validation time.

        A rejection is a typed :class:`~repro.errors.QueryError` raised
        by plan/spec validation — malformed kind, mask, k, box,
        diversify, or query coordinates — before the ladder ever runs.
        Counting them makes malformed traffic visible in ``health()``
        and ``repro stats`` instead of silent.
        """
        self._bump("rejected_requests", amount)

    def rejected_count(self) -> int:
        """Requests rejected at validation time so far."""
        return int(self._counters.get("rejected_requests", 0))

    def record_update(self, generation: str, ops: int) -> None:
        """Count ``ops`` journalled updates applied into ``generation``."""
        self._bump("updates_applied", ops)
        self._bump("update_batches")
        self._updates[generation] = self._updates.get(generation, 0) + ops

    def _bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def tier_counts(self) -> dict:
        """Queries served per ladder tier (always includes all tiers)."""
        return dict(self._tiers)

    # -- build side: the BuildContext telemetry-sink protocol ----------

    def __call__(self, name: str, payload: dict) -> None:
        """Record one build-phase event (``sink(phase, payload)``)."""
        entry = self._build_phases.setdefault(
            name, {"count": 0, "seconds": 0.0}
        )
        entry["count"] += 1
        entry["seconds"] += float(payload.get("seconds", 0.0))

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready aggregate of everything observed so far."""
        return {
            "tiers": self.tier_counts(),
            "counters": dict(sorted(self._counters.items())),
            "latency": {
                f"{kind}/{tier}": hist.as_dict()
                for (kind, tier), hist in sorted(self._latency.items())
            },
            "build_phases": {
                name: dict(entry)
                for name, entry in sorted(self._build_phases.items())
            },
            "serving_by_generation": {
                sha: hist.as_dict()
                for sha, hist in sorted(self._serving.items())
            },
            "updates_by_generation": dict(sorted(self._updates.items())),
        }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def format_snapshot(snapshot: dict) -> str:
    """Human-readable rendering of ``MetricsRegistry.snapshot()``.

    Shared by ``repro stats`` and the chaos harness summary.
    """
    lines = ["query runtime metrics"]
    tiers = snapshot.get("tiers", {})
    lines.append(
        "  tiers:    "
        + "  ".join(f"{tier}={tiers.get(tier, 0)}" for tier in TIERS)
    )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append(
            "  counters: "
            + "  ".join(f"{name}={value}" for name, value in counters.items())
        )
    latency = snapshot.get("latency", {})
    if latency:
        lines.append("  latency (per query):")
        header = (
            f"    {'kind/tier':<18} {'count':>7} {'mean':>9} "
            f"{'p50':>9} {'p99':>9} {'max':>9}"
        )
        lines.append(header)
        for label, hist in latency.items():
            lines.append(
                f"    {label:<18} {hist['count']:>7} "
                f"{_fmt_seconds(hist['mean_s']):>9} "
                f"{_fmt_seconds(hist['p50_s']):>9} "
                f"{_fmt_seconds(hist['p99_s']):>9} "
                f"{_fmt_seconds(hist['max_s']):>9}"
            )
    updates = snapshot.get("updates_by_generation", {})
    if updates:
        lines.append(
            "  updates:  "
            + "  ".join(
                f"{sha[:12]}=+{ops}" for sha, ops in updates.items()
            )
        )
    serving = snapshot.get("serving_by_generation", {})
    if serving:
        lines.append("  serving latency by generation:")
        for sha, hist in serving.items():
            lines.append(
                f"    {sha[:12]:<18} {hist['count']:>7} "
                f"{_fmt_seconds(hist['mean_s']):>9} "
                f"{_fmt_seconds(hist['p50_s']):>9} "
                f"{_fmt_seconds(hist['p99_s']):>9} "
                f"{_fmt_seconds(hist['max_s']):>9}"
            )
    phases = snapshot.get("build_phases", {})
    if phases:
        lines.append(
            "  build phases: "
            + "  ".join(
                f"{name}={_fmt_seconds(entry['seconds'])}"
                f"(x{entry['count']})"
                for name, entry in phases.items()
            )
        )
    return "\n".join(lines)
