"""The unified query runtime — the lookup-side mirror of the build pipeline.

Four pieces (see ``docs/ARCHITECTURE.md``, "Query runtime"):

* :class:`~repro.query.spec.QuerySpec` — one frozen, validating value
  object describing any supported lookup (kind + mask + k + optional
  constraint box + optional diversification), with a registry of
  per-kind :class:`~repro.query.spec.KindHandler`\\ s owning validation,
  planning, the scratch oracle, and metrics labeling;
* :class:`~repro.query.kernel.QueryKernel` — the one grid-locate →
  boundary-resolve → store-lookup sequence behind every diagram lookup,
  parameterized by orientation/edge-ownership mode, including the
  box-restricted lookups of the ``constrained`` kind;
* :class:`~repro.query.planner.QueryPlanner` — one plan resolution and
  one degradation-ladder application per batch (a single query is a
  batch of one), producing :class:`~repro.query.planner.QueryAnswer`\\ s;
* :class:`~repro.query.metrics.MetricsRegistry` — per-kind/per-tier
  latency histograms and counters, the single choke point for ladder
  tier accounting, speaking the same telemetry-sink protocol as
  ``BuildContext``; each answer carries a
  :class:`~repro.query.metrics.QueryReport`.
"""

from repro.query.kernel import MODES, QueryKernel
from repro.query.metrics import (
    LatencyHistogram,
    MetricsRegistry,
    QueryReport,
    format_snapshot,
)
from repro.query.planner import KINDS, QueryAnswer, QueryPlan, QueryPlanner
from repro.query.spec import (
    KindHandler,
    QuerySpec,
    handler_for,
    register_kind,
    registered_kinds,
)

__all__ = [
    "KINDS",
    "MODES",
    "KindHandler",
    "LatencyHistogram",
    "MetricsRegistry",
    "QueryAnswer",
    "QueryKernel",
    "QueryPlan",
    "QueryPlanner",
    "QueryReport",
    "QuerySpec",
    "format_snapshot",
    "handler_for",
    "register_kind",
    "registered_kinds",
]
