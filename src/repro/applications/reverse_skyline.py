"""Reverse skyline queries, accelerated by the skyline diagram.

A point ``p`` is in the *reverse skyline* of a query ``q`` when ``q`` is in
the dynamic skyline of ``p`` — no other data point is coordinate-wise at
least as close to ``p`` as ``q`` is (Dellis & Seeger, the paper's [5]).

The diagram-based acceleration mirrors how Voronoi diagrams accelerate
reverse-kNN queries (paper Sec. I, application 1): the reverse skyline of
``q`` is a subset of ``q``'s *global* skyline, which a precomputed global
diagram retrieves in O(log n); only those candidates are then verified.

Why the subset property holds: if ``p`` is globally dominated w.r.t. ``q``
by a same-quadrant point ``p'``, then per axis ``p'`` lies between ``q``
and ``p``, hence ``|p' - p| <= |q - p|`` component-wise with one strict —
``p'`` dynamically dominates ``q`` from ``p``'s perspective, so ``q``
cannot be in ``p``'s dynamic skyline.  Strictness transfers only when the
witness dimension has ``p'[i] != q[i]``; when the query shares a coordinate
value with some data point a "hybrid" dominator can violate the property,
so :func:`reverse_skyline` detects that measure-zero degeneracy with one
O(nd) scan and falls back to the brute-force evaluation.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.diagram.base import SkylineDiagram
from repro.geometry.dominance import dominates
from repro.geometry.point import Dataset, ensure_dataset
from repro.skyline.mapping import map_point_to_query


def _sees_query(
    dataset: Dataset, point_id: int, query: Sequence[float]
) -> bool:
    """True iff ``query`` is in the dynamic skyline of point ``point_id``."""
    center = dataset[point_id]
    mapped_query = map_point_to_query(query, center)
    for other_id, other in enumerate(dataset.points):
        if other_id == point_id:
            continue
        if dominates(map_point_to_query(other, center), mapped_query):
            return False
    return True


def reverse_skyline_brute(
    points: Dataset | Sequence[Sequence[float]], query: Sequence[float]
) -> tuple[int, ...]:
    """O(n^2) reverse skyline: test every point directly.

    >>> reverse_skyline_brute([(0, 0), (4, 4), (10, 10)], (5, 5))
    (1, 2)
    """
    dataset = ensure_dataset(points)
    query = tuple(float(c) for c in query)
    return tuple(
        pid for pid in range(len(dataset)) if _sees_query(dataset, pid, query)
    )


def reverse_skyline(
    points: Dataset | Sequence[Sequence[float]],
    query: Sequence[float],
    diagram: SkylineDiagram | None = None,
) -> tuple[int, ...]:
    """Reverse skyline via global-diagram candidate pruning.

    ``diagram`` must be a *global* skyline diagram of ``points`` (built
    lazily when omitted).  The candidate set shrinks from n to the global
    skyline size, typically O(log n) points, each verified in O(n).

    >>> reverse_skyline([(0, 0), (4, 4), (10, 10)], (5, 5))
    (1, 2)
    """
    dataset = ensure_dataset(points)
    query = tuple(float(c) for c in query)
    if diagram is not None and diagram.kind != "global":
        raise ValueError(
            f"reverse skyline pruning needs a global diagram, got "
            f"{diagram.kind!r}"
        )
    degenerate = any(
        p[d] == query[d] for p in dataset.points for d in range(len(query))
    )
    if degenerate:
        # Pruning by the global skyline is only sound in general position
        # (see the module docstring); evaluate directly instead.
        return reverse_skyline_brute(dataset, query)
    if diagram is None:
        from repro.diagram.global_diagram import global_diagram

        diagram = global_diagram(dataset)
    candidates = diagram.query(query)
    return tuple(
        pid for pid in candidates if _sees_query(dataset, pid, query)
    )
