"""Applications of the skyline diagram (paper Sec. I):

1. reverse skyline queries,
2. authentication of outsourced skyline queries,
3. PIR-based private skyline queries,
4. continuous skyline queries for moving query points.
"""

from repro.applications.authentication import (
    AuthenticatedSkylineClient,
    AuthenticatedSkylineServer,
    DiagramSigner,
)
from repro.applications.caching import PolyominoCache
from repro.applications.continuous import continuous_skyline
from repro.applications.pir import PirClient, PirServer, PrivateSkylineClient
from repro.applications.reverse_skyline import (
    reverse_skyline,
    reverse_skyline_brute,
)
from repro.applications.why_not import WhyNotExplanation, why_not

__all__ = [
    "AuthenticatedSkylineClient",
    "AuthenticatedSkylineServer",
    "DiagramSigner",
    "PirClient",
    "PolyominoCache",
    "PirServer",
    "PrivateSkylineClient",
    "continuous_skyline",
    "reverse_skyline",
    "reverse_skyline_brute",
    "WhyNotExplanation",
    "why_not",
]
