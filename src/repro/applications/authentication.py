"""Authentication of outsourced skyline queries (paper Sec. I, app. 2).

The data owner precomputes a skyline diagram, builds a Merkle hash tree
over the canonical serialization of its polyominos, and publishes a signed
root.  An untrusted server answers queries with the matching polyomino plus
a verification object (the Merkle authentication path); the client checks

1. the leaf hash matches the returned polyomino,
2. folding the path reproduces the signed root,
3. the query point actually lies inside the returned polyomino,

so a tampered result, a stale diagram, or a wrong region are all detected.

Substitution note (see DESIGN.md): the root is "signed" with HMAC-SHA256
under a shared owner/client key instead of a public-key signature — the
data structure and verification path are identical, only the final
primitive differs (hashlib is the only crypto guaranteed offline).
"""

from __future__ import annotations

import hashlib
import hmac
import json
from collections.abc import Sequence
from dataclasses import dataclass

from repro.diagram.base import SkylineDiagram
from repro.errors import AuthenticationError
from repro.geometry.polyomino import Polyomino


def _leaf_bytes(polyomino: Polyomino) -> bytes:
    """Canonical byte serialization of a polyomino for hashing."""
    payload = {
        "result": list(polyomino.result),
        "cells": sorted(list(c) for c in polyomino.cells),
    }
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


def _hash_leaf(polyomino: Polyomino) -> bytes:
    return hashlib.sha256(b"leaf:" + _leaf_bytes(polyomino)).digest()


def _hash_node(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"node:" + left + right).digest()


class MerkleTree:
    """A binary Merkle tree over an ordered list of leaf hashes."""

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise AuthenticationError("cannot build a Merkle tree with no leaves")
        self.levels: list[list[bytes]] = [list(leaves)]
        while len(self.levels[-1]) > 1:
            level = self.levels[-1]
            parents = [
                _hash_node(level[i], level[i + 1] if i + 1 < len(level) else level[i])
                for i in range(0, len(level), 2)
            ]
            self.levels.append(parents)

    @property
    def root(self) -> bytes:
        """The Merkle root digest."""
        return self.levels[-1][0]

    def path(self, index: int) -> list[tuple[str, bytes]]:
        """Authentication path for a leaf: (sibling side, sibling hash) pairs."""
        if not 0 <= index < len(self.levels[0]):
            raise AuthenticationError(f"leaf index {index} out of range")
        path: list[tuple[str, bytes]] = []
        for level in self.levels[:-1]:
            sibling = index ^ 1
            if sibling >= len(level):
                # Odd node at the level's end is hashed with itself.
                path.append(("right", level[index]))
            elif sibling > index:
                path.append(("right", level[sibling]))
            else:
                path.append(("left", level[sibling]))
            index //= 2
        return path

    @staticmethod
    def fold(leaf: bytes, path: Sequence[tuple[str, bytes]]) -> bytes:
        """Recompute the root from a leaf hash and its authentication path."""
        digest = leaf
        for side, sibling in path:
            if side == "left":
                digest = _hash_node(sibling, digest)
            else:
                digest = _hash_node(digest, sibling)
        return digest


class DiagramSigner:
    """The data owner: builds and signs the Merkle tree of a diagram."""

    def __init__(self, diagram: SkylineDiagram, key: bytes) -> None:
        self.diagram = diagram
        self.polyominos = diagram.polyominos()
        self.tree = MerkleTree([_hash_leaf(p) for p in self.polyominos])
        self._key = key

    def signed_root(self) -> bytes:
        """HMAC "signature" over the Merkle root (see substitution note)."""
        return hmac.new(self._key, self.tree.root, hashlib.sha256).digest()


@dataclass(frozen=True)
class VerificationObject:
    """Everything the server returns for one authenticated query."""

    result: tuple[int, ...]
    cells: tuple[tuple[int, int], ...]
    leaf_index: int
    path: tuple[tuple[str, bytes], ...]


class AuthenticatedSkylineServer:
    """The untrusted server: answers queries with verification objects."""

    def __init__(self, signer: DiagramSigner) -> None:
        self._diagram = signer.diagram
        self._polyominos = signer.polyominos
        self._tree = signer.tree
        self._labels = {
            cell: poly.ident
            for poly in self._polyominos
            for cell in poly.cells
        }

    def answer(self, query: Sequence[float]) -> VerificationObject:
        """Locate the query's polyomino and assemble its proof."""
        cell = self._diagram.grid.locate(query)
        index = self._labels[cell]
        poly = self._polyominos[index]
        return VerificationObject(
            result=poly.result,
            cells=tuple(sorted(poly.cells)),
            leaf_index=index,
            path=tuple(self._tree.path(index)),
        )


class AuthenticatedSkylineClient:
    """The client: verifies server answers against the signed root."""

    def __init__(self, grid_axes, signed_root: bytes, key: bytes) -> None:
        self._axes = grid_axes
        self._signed_root = signed_root
        self._key = key

    def verify(
        self, query: Sequence[float], vo: VerificationObject
    ) -> tuple[int, ...]:
        """Check a verification object; return the authenticated result.

        Raises :class:`AuthenticationError` on any inconsistency.
        """
        from bisect import bisect_left

        cell = tuple(
            bisect_left(self._axes[d], float(query[d]))
            for d in range(len(self._axes))
        )
        if cell not in set(vo.cells):
            raise AuthenticationError(
                "query point is outside the returned polyomino"
            )
        leaf = _hash_leaf(
            Polyomino(
                ident=vo.leaf_index,
                result=vo.result,
                cells=frozenset(vo.cells),
            )
        )
        root = MerkleTree.fold(leaf, vo.path)
        expected = hmac.new(self._key, root, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, self._signed_root):
            raise AuthenticationError("Merkle root does not match signature")
        return vo.result
