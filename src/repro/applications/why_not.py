"""Why-not explanations for skyline queries, powered by the diagram.

A classic usability question in skyline research: *"why is my favourite
point p not in the answer?"*  With a precomputed diagram the best-known
answer form — "move your query here and it will be" — becomes a geometric
search: find the region whose result contains ``p`` closest to the query,
and return a witness location inside it.

The counterpart machinery for kNN ("move the query into this Voronoi
cell") is folklore; the skyline diagram makes the same explanation exact
for skyline queries.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.errors import QueryError


@dataclass(frozen=True)
class WhyNotExplanation:
    """The minimal query move that admits the missing point.

    Attributes
    ----------
    point_id:
        The point the user asked about.
    distance:
        Euclidean distance from the original query to the witness (0 when
        the point is already in the result).
    witness:
        A query location whose result contains the point.
    result:
        The full result at the witness.
    """

    point_id: int
    distance: float
    witness: tuple[float, ...]
    result: tuple[int, ...]


def why_not(
    diagram: SkylineDiagram | DynamicDiagram,
    query: Sequence[float],
    point_id: int,
) -> WhyNotExplanation:
    """Explain a missing point by the minimal query displacement.

    Scans the diagram for cells whose result contains ``point_id`` and
    minimizes the Euclidean distance from ``query`` to the cell.  The
    witness returned is an interior point of the best cell at (up to an
    interior nudge) that distance.

    >>> from repro.diagram import quadrant_scanning
    >>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
    >>> explanation = why_not(diagram, (7.0, 3.0), 0)
    >>> explanation.point_id, 0 in explanation.result
    (0, True)
    >>> round(explanation.distance, 3)
    5.0

    Raises :class:`QueryError` when the point appears in no region (it is
    dominated everywhere it is a candidate).
    """
    if diagram.grid.dataset is None or len(diagram.grid.dataset) == 0:
        raise QueryError("empty diagram")
    if not 0 <= point_id < len(diagram.grid.dataset):
        raise QueryError(f"point id {point_id} out of range")
    query = (float(query[0]), float(query[1]))

    current = diagram.query(query)
    if point_id in current:
        return WhyNotExplanation(
            point_id=point_id, distance=0.0, witness=query, result=current
        )

    best: tuple[float, tuple[int, int]] | None = None
    for cell, result in diagram.cells():
        if point_id not in result:
            continue
        lo, hi = diagram.grid.cell_bounds(cell)
        clamped = tuple(
            min(max(query[d], lo[d]), hi[d]) for d in range(2)
        )
        distance = math.dist(query, clamped)
        if best is None or distance < best[0]:
            best = (distance, cell)
    if best is None:
        raise QueryError(
            f"point {point_id} is in no region of this diagram "
            "(dominated wherever it is a candidate)"
        )
    distance, cell = best
    # Witness: the clamped point pulled fractionally toward the cell's
    # interior representative, so the lookup lands in the right cell.
    lo, hi = diagram.grid.cell_bounds(cell)
    clamped = [min(max(query[d], lo[d]), hi[d]) for d in range(2)]
    representative = diagram.grid.representative(cell)
    witness = tuple(
        clamped[d] + (representative[d] - clamped[d]) * 1e-9
        if clamped[d] in (lo[d], hi[d])
        else clamped[d]
        for d in range(2)
    )
    return WhyNotExplanation(
        point_id=point_id,
        distance=distance,
        witness=witness,
        result=diagram.query(witness),
    )
