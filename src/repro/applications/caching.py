"""A polyomino-keyed result cache for expensive answer materialization.

In a real service the tuple of point *ids* a diagram stores is only half
the answer — the client wants full records (hotel names, prices, photos),
which live in a store that is expensive to hit.  The skyline diagram is a
perfect cache index: all queries in one polyomino share one materialized
answer, so the cache key is the region id, not the query point.  This
mirrors how Voronoi-cell caching works for kNN services.

:class:`PolyominoCache` wraps a diagram and a loader callback with an LRU
of materialized regions, tracking hit statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.diagram.merge import cell_labels
from repro.errors import BudgetExceededError, QueryError
from repro.resilience import BuildBudget

Loader = Callable[[tuple[int, ...]], Any]


class PolyominoCache:
    """LRU cache of materialized results, keyed by diagram region.

    Parameters
    ----------
    diagram:
        Any 2-D diagram.
    loader:
        Called with a region's canonical result tuple to materialize the
        payload (fetch records, render a response, ...). Called at most
        once per region while the region stays cached.
    capacity:
        Maximum number of regions kept materialized.
    budget:
        Optional :class:`~repro.resilience.BuildBudget` enforcing
        admission control: ``max_cells`` rejects diagrams too large to
        index (raising :class:`~repro.errors.BudgetExceededError` before
        any region is materialized) and ``max_distinct`` caps the number
        of cached regions below ``capacity`` — eviction kicks in under
        memory pressure exactly as if the capacity had been lowered.

    Examples
    --------
    >>> from repro.diagram import quadrant_scanning
    >>> calls = []
    >>> def loader(ids):
    ...     calls.append(ids)
    ...     return [f"record-{i}" for i in ids]
    >>> cache = PolyominoCache(quadrant_scanning([(1, 1)]), loader)
    >>> cache.get((0, 0))
    ['record-0']
    >>> cache.get((0.5, 0.5))   # same region: loader not called again
    ['record-0']
    >>> len(calls)
    1
    """

    def __init__(
        self,
        diagram: SkylineDiagram | DynamicDiagram,
        loader: Loader,
        capacity: int = 128,
        budget: BuildBudget | None = None,
    ) -> None:
        if capacity < 1:
            raise QueryError(f"capacity must be >= 1, got {capacity}")
        if budget is not None:
            if (
                budget.max_cells is not None
                and diagram.store.num_cells > budget.max_cells
            ):
                raise BudgetExceededError(
                    f"diagram has {diagram.store.num_cells} cells, cache "
                    f"admission allows max_cells={budget.max_cells}",
                    budget=budget,
                )
            if budget.max_distinct is not None:
                capacity = min(capacity, budget.max_distinct)
        self.diagram = diagram
        self._loader = loader
        self.capacity = capacity
        self._labels = cell_labels(diagram.polyominos())
        self._polyominos = diagram.polyominos()
        self._entries: OrderedDict[int, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def region_of(self, query: Sequence[float]) -> int:
        """Region id for a query point."""
        return self._labels[self.diagram.grid.locate(query)]

    def get(self, query: Sequence[float]) -> Any:
        """Materialized answer for a query, loading its region on miss."""
        region = self.region_of(query)
        if region in self._entries:
            self.hits += 1
            self._entries.move_to_end(region)
            return self._entries[region]
        self.misses += 1
        payload = self._loader(self._polyominos[region].result)
        self._entries[region] = payload
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        return payload

    def invalidate(self) -> None:
        """Drop every materialized region (e.g. after a data refresh)."""
        self._entries.clear()

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from cache (0.0 before any query)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"PolyominoCache(regions={len(self._polyominos)}, "
            f"cached={len(self._entries)}/{self.capacity}, "
            f"hit_rate={self.hit_rate:.2f})"
        )
