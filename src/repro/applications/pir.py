"""Private skyline queries over a precomputed diagram via PIR.

The paper's third application (Sec. I): like PIR-based kNN over a Voronoi
diagram [4], the skyline diagram is flattened into a fixed-record database
(one record per skyline cell, row-major), and the client retrieves the
record for its query's cell without revealing the cell index.

Substitution note (see DESIGN.md): [4] uses computational PIR; we implement
the classic *information-theoretic two-server XOR PIR* instead, which
exercises the same code path (diagram → record database → oblivious
retrieval → decode) with primitives available offline.  Each server sees
only a uniformly random subset selector, so a single server learns nothing
about the queried cell; correctness requires the two servers not collude.

The grid geometry (axis values) is public metadata — the client needs it to
locate its cell — while the per-cell skyline contents stay private.
"""

from __future__ import annotations

import secrets
from collections.abc import Sequence
from itertools import product

from repro.diagram.base import SkylineDiagram
from repro.errors import ProtocolError

_ID_WIDTH = 4  # bytes per point id in a record


def _encode_record(result: tuple[int, ...], width: int) -> bytes:
    """Fixed-width record: id count then big-endian ids, zero padded."""
    if len(result) * _ID_WIDTH + _ID_WIDTH > width:
        raise ProtocolError(
            f"record overflow: {len(result)} ids exceed width {width}"
        )
    blob = len(result).to_bytes(_ID_WIDTH, "big")
    for pid in result:
        blob += int(pid).to_bytes(_ID_WIDTH, "big")
    return blob.ljust(width, b"\x00")


def _decode_record(blob: bytes) -> tuple[int, ...]:
    count = int.from_bytes(blob[:_ID_WIDTH], "big")
    ids = []
    for k in range(count):
        start = _ID_WIDTH * (k + 1)
        ids.append(int.from_bytes(blob[start : start + _ID_WIDTH], "big"))
    return tuple(ids)


def diagram_database(diagram: SkylineDiagram) -> list[bytes]:
    """Flatten a diagram into equal-width records, row-major over cells."""
    cells = list(product(*(range(extent) for extent in diagram.grid.shape)))
    longest = max(len(diagram.result_at(cell)) for cell in cells)
    width = _ID_WIDTH * (longest + 1)
    return [_encode_record(diagram.result_at(cell), width) for cell in cells]


class PirServer:
    """One of the two non-colluding servers holding the record database."""

    def __init__(self, database: Sequence[bytes]) -> None:
        if not database:
            raise ProtocolError("empty PIR database")
        width = len(database[0])
        if any(len(r) != width for r in database):
            raise ProtocolError("PIR records must have equal width")
        self._db = list(database)
        self.record_width = width

    def __len__(self) -> int:
        return len(self._db)

    def respond(self, selector: bytes) -> bytes:
        """XOR of the records whose selector bit is set."""
        if len(selector) * 8 < len(self._db):
            raise ProtocolError("selector shorter than the database")
        out = bytearray(self.record_width)
        for index, record in enumerate(self._db):
            if selector[index // 8] >> (index % 8) & 1:
                for k, byte in enumerate(record):
                    out[k] ^= byte
        return bytes(out)


class PirClient:
    """The querying client of the 2-server XOR PIR protocol."""

    def __init__(self, num_records: int) -> None:
        if num_records <= 0:
            raise ProtocolError("PIR database must be non-empty")
        self.num_records = num_records
        self._num_bytes = (num_records + 7) // 8

    def selectors(self, index: int) -> tuple[bytes, bytes]:
        """Two selectors whose XOR is the unit vector at ``index``."""
        if not 0 <= index < self.num_records:
            raise ProtocolError(f"record index {index} out of range")
        first = bytearray(secrets.token_bytes(self._num_bytes))
        second = bytearray(first)
        second[index // 8] ^= 1 << (index % 8)
        return bytes(first), bytes(second)

    @staticmethod
    def decode(response_a: bytes, response_b: bytes) -> bytes:
        """Combine the two server responses into the requested record."""
        if len(response_a) != len(response_b):
            raise ProtocolError("mismatched response widths")
        return bytes(a ^ b for a, b in zip(response_a, response_b))


class PrivateSkylineClient:
    """End-to-end private skyline querying against two PIR servers.

    >>> from repro.diagram import quadrant_scanning
    >>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
    >>> db = diagram_database(diagram)
    >>> client = PrivateSkylineClient(diagram.grid.axes, diagram.grid.shape)
    >>> client.query((1, 2), PirServer(db), PirServer(db))
    (0, 1)
    """

    def __init__(
        self,
        axes: tuple[tuple[float, ...], ...],
        shape: tuple[int, ...],
    ) -> None:
        self.axes = axes
        self.shape = shape
        total = 1
        for extent in shape:
            total *= extent
        self._pir = PirClient(total)

    def cell_index(self, query: Sequence[float]) -> int:
        """Row-major record index of the cell containing the query."""
        from bisect import bisect_left

        index = 0
        for d, extent in enumerate(self.shape):
            coordinate = bisect_left(self.axes[d], float(query[d]))
            index = index * extent + coordinate
        return index

    def query(
        self,
        query: Sequence[float],
        server_a: PirServer,
        server_b: PirServer,
    ) -> tuple[int, ...]:
        """Retrieve the skyline of ``query`` without revealing its cell."""
        index = self.cell_index(query)
        selector_a, selector_b = self._pir.selectors(index)
        record = PirClient.decode(
            server_a.respond(selector_a), server_b.respond(selector_b)
        )
        return _decode_record(record)
