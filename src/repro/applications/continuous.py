"""Continuous skyline queries for a moving query point.

The related work the paper positions against ([7], [10], [24]) computes
skylines for query points moving along a line, maintaining results between
events.  With a precomputed skyline diagram this becomes point location
along a segment: the result changes only where the segment crosses a
(sub)cell boundary, so the full timeline of a linear motion is the ordered
list of boundary crossings with one O(log n) lookup per interval.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.errors import QueryError


@dataclass(frozen=True)
class TimelineEntry:
    """One constant-result stretch of a moving query's timeline.

    The query ``start + t * (end - start)`` has skyline ``result`` for every
    ``t`` strictly inside ``(t_enter, t_exit)``.
    """

    t_enter: float
    t_exit: float
    result: tuple[int, ...]


def _crossing_times(
    start: Sequence[float],
    end: Sequence[float],
    axes: Sequence[Sequence[float]],
) -> list[float]:
    """Parameter values in (0, 1) where the segment crosses a grid value."""
    times: set[float] = set()
    for d in range(len(axes)):
        a, b = float(start[d]), float(end[d])
        if a == b:
            continue
        for value in axes[d]:
            t = (value - a) / (b - a)
            if 0.0 < t < 1.0:
                times.add(t)
    return sorted(times)


def continuous_skyline(
    diagram: SkylineDiagram | DynamicDiagram,
    start: Sequence[float],
    end: Sequence[float],
) -> list[TimelineEntry]:
    """Timeline of skyline results along the segment ``start`` → ``end``.

    Consecutive intervals with identical results are coalesced, so each
    returned entry is a genuine result change (except possibly at segment
    endpoints lying exactly on boundaries).

    >>> from repro.diagram import quadrant_scanning
    >>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
    >>> timeline = continuous_skyline(diagram, (0, 0), (10, 0))
    >>> [entry.result for entry in timeline]
    [(0, 1, 2), (1, 2), (2,), ()]
    """
    start = tuple(float(c) for c in start)
    end = tuple(float(c) for c in end)
    if len(start) != len(end):
        raise QueryError("segment endpoints must share dimensionality")
    axes = diagram.grid.axes
    if len(axes) != len(start):
        raise QueryError(
            f"{len(start)}-D segment against a {len(axes)}-D diagram"
        )
    times = [0.0, *_crossing_times(start, end, axes), 1.0]
    timeline: list[TimelineEntry] = []
    for t0, t1 in zip(times, times[1:]):
        mid = (t0 + t1) / 2.0
        probe = tuple(
            s + mid * (e - s) for s, e in zip(start, end, strict=True)
        )
        result = diagram.query(probe)
        if timeline and timeline[-1].result == result:
            timeline[-1] = TimelineEntry(
                timeline[-1].t_enter, t1, result
            )
        else:
            timeline.append(TimelineEntry(t0, t1, result))
    return timeline
