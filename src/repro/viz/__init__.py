"""Rendering: SVG and ASCII views of skyline diagrams."""

from repro.viz.ascii_art import ascii_diagram
from repro.viz.svg import render_svg
from repro.viz.svg_extras import render_sweep_svg, render_voronoi_svg

__all__ = [
    "ascii_diagram",
    "render_svg",
    "render_sweep_svg",
    "render_voronoi_svg",
]
