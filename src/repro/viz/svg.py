"""SVG rendering of skyline diagrams (the paper's Figures 3, 4, 8).

Polyominos are filled with deterministic colours derived from their result
sets (equal results share a colour even across diagrams), boundaries are
traced from the merged cell sets, and the data points are drawn on top.
The output is a standalone SVG string — no plotting dependency.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from repro.diagram.base import DynamicDiagram, SkylineDiagram

_MARGIN_CELLS = 1.0  # how far the unbounded outer cells extend, in axis units


def _colour(result: tuple[int, ...]) -> str:
    """A stable pastel colour for one result set."""
    if not result:
        return "#f2f2f2"
    digest = hashlib.sha256(repr(result).encode()).digest()
    hue = digest[0] * 360 // 256
    return f"hsl({hue}, 55%, {70 + digest[1] % 3 * 5}%)"


def _axis_positions(axis: Sequence[float]) -> list[float]:
    """Lattice positions 0..len(axis)+1 mapped to data coordinates."""
    if not axis:
        return [0.0, 1.0]
    span = (axis[-1] - axis[0]) or 1.0
    pad = span * 0.1 + _MARGIN_CELLS
    return [axis[0] - pad, *axis, axis[-1] + pad]


def render_svg(
    diagram: SkylineDiagram | DynamicDiagram,
    width: int = 480,
    height: int = 480,
    show_points: bool = True,
) -> str:
    """Render a 2-D diagram to an SVG string.

    >>> from repro.diagram import quadrant_scanning
    >>> svg = render_svg(quadrant_scanning([(2, 8), (5, 4)]))
    >>> svg.startswith('<svg') and svg.rstrip().endswith('</svg>')
    True
    """
    shape = diagram.grid.shape
    if len(shape) != 2:
        raise ValueError("render_svg renders 2-D diagrams only")
    xs = _axis_positions(diagram.grid.axes[0])
    ys = _axis_positions(diagram.grid.axes[1])
    min_x, max_x = xs[0], xs[-1]
    min_y, max_y = ys[0], ys[-1]

    def to_px(x: float, y: float) -> tuple[float, float]:
        px = (x - min_x) / (max_x - min_x) * width
        py = height - (y - min_y) / (max_y - min_y) * height
        return (round(px, 2), round(py, 2))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    ]
    for poly in diagram.polyominos():
        for loop in poly.boundary():
            coords = " ".join(
                "{},{}".format(*to_px(xs[i], ys[j])) for i, j in loop
            )
            parts.append(
                f'<polygon points="{coords}" fill="{_colour(poly.result)}" '
                f'stroke="#666" stroke-width="1"/>'
            )
    if show_points:
        for pid, p in enumerate(diagram.grid.dataset):
            cx, cy = to_px(p[0], p[1])
            parts.append(
                f'<circle cx="{cx}" cy="{cy}" r="4" fill="#222"/>'
            )
            name = diagram.grid.dataset.name_of(pid)
            parts.append(
                f'<text x="{cx + 6}" y="{cy - 6}" font-size="11" '
                f'font-family="sans-serif">{name}</text>'
            )
    parts.append("</svg>")
    return "\n".join(parts)
