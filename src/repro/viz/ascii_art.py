"""ASCII rendering of small skyline diagrams.

One character per (sub)cell, same letter = same polyomino — the quickest
way to eyeball a diagram in a terminal or a test failure message.  Rows are
printed top-down (larger y first) to match the paper's figures.
"""

from __future__ import annotations

import string

from repro.diagram.base import DynamicDiagram, SkylineDiagram

_GLYPHS = string.ascii_uppercase + string.ascii_lowercase + string.digits


def ascii_diagram(
    diagram: SkylineDiagram | DynamicDiagram, legend: bool = True
) -> str:
    """Render a 2-D diagram as a block of characters.

    >>> from repro.diagram import quadrant_scanning
    >>> print(ascii_diagram(quadrant_scanning([(1, 1)]), legend=False))
    BB
    AB

    (the single point's quadrant diagram: region A, lower-left of the
    point, sees it; everywhere else the skyline is empty.)
    """
    shape = diagram.grid.shape
    if len(shape) != 2:
        raise ValueError("ascii_diagram renders 2-D diagrams only")
    polyominos = diagram.polyominos()
    labels = {
        cell: poly.ident for poly in polyominos for cell in poly.cells
    }
    lines = []
    for j in range(shape[1] - 1, -1, -1):
        row = "".join(
            _GLYPHS[labels[(i, j)] % len(_GLYPHS)] for i in range(shape[0])
        )
        lines.append(row)
    if legend:
        lines.append("")
        for poly in polyominos:
            glyph = _GLYPHS[poly.ident % len(_GLYPHS)]
            names = ", ".join(
                diagram.grid.dataset.name_of(i) for i in poly.result
            )
            lines.append(f"{glyph}: {{{names}}}")
    return "\n".join(lines)
