"""Additional SVG renderers: sweep geometry and Voronoi diagrams.

`render_sweep_svg` draws the paper's Figure 8 — the half-open grid lines
and the polyomino boundaries the sweeping algorithm traces, without any
cell merging.  `render_voronoi_svg` draws the Figure 2 counterpart so the
two structures can be compared side by side.
"""

from __future__ import annotations

from repro.diagram.quadrant_sweeping import SweepDiagram
from repro.voronoi.diagram import VoronoiDiagram
from repro.viz.svg import _colour


def _rank_positions(axis: tuple[float, ...]) -> list[float]:
    """Rank -> data coordinate, with rank 0 mapped to a padded origin."""
    if not axis:
        return [0.0]
    span = (axis[-1] - axis[0]) or 1.0
    return [axis[0] - span * 0.15 - 1.0, *axis]


def render_sweep_svg(
    sweep: SweepDiagram, width: int = 480, height: int = 480
) -> str:
    """Render a sweep diagram: traced polyomino outlines plus the points.

    >>> from repro.diagram import quadrant_sweeping
    >>> svg = render_sweep_svg(quadrant_sweeping([(2, 8), (5, 4)]))
    >>> svg.count("<polyline") >= 2
    True
    """
    xs = _rank_positions(sweep.grid.xs)
    ys = _rank_positions(sweep.grid.ys)
    max_x = sweep.grid.xs[-1] + (xs[1] - xs[0]) if sweep.grid.xs else 1.0
    max_y = sweep.grid.ys[-1] + (ys[1] - ys[0]) if sweep.grid.ys else 1.0
    min_x, min_y = xs[0], ys[0]

    def to_px(a: int, b: int) -> tuple[float, float]:
        x, y = xs[a], ys[b]
        px = (x - min_x) / (max_x - min_x) * width
        py = height - (y - min_y) / (max_y - min_y) * height
        return (round(px, 2), round(py, 2))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    ]
    results = sweep.results()
    for poly in sweep.polyominos:
        coords = " ".join(
            "{},{}".format(*to_px(a, b)) for a, b in poly.vertices
        )
        colour = _colour(results[poly.corner])
        parts.append(
            f'<polyline points="{coords}" fill="{colour}" '
            f'stroke="#444" stroke-width="1"/>'
        )
    for pid, p in enumerate(sweep.grid.dataset):
        rx, ry = sweep.grid.rank_of(pid)
        cx, cy = to_px(rx, ry)
        parts.append(f'<circle cx="{cx}" cy="{cy}" r="4" fill="#222"/>')
    parts.append("</svg>")
    return "\n".join(parts)


def render_voronoi_svg(
    voronoi: VoronoiDiagram, width: int = 480, height: int = 480
) -> str:
    """Render a Voronoi diagram (the paper's Fig. 2 counterpart).

    >>> svg = render_voronoi_svg(VoronoiDiagram([(2, 2), (8, 8)]))
    >>> svg.count("<polygon") == 2
    True
    """
    x0, y0, x1, y1 = voronoi.bbox

    def to_px(x: float, y: float) -> tuple[float, float]:
        px = (x - x0) / (x1 - x0) * width
        py = height - (y - y0) / (y1 - y0) * height
        return (round(px, 2), round(py, 2))

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">'
    ]
    for site, cell in enumerate(voronoi.cells):
        if len(cell) < 3:
            continue
        coords = " ".join("{},{}".format(*to_px(x, y)) for x, y in cell)
        parts.append(
            f'<polygon points="{coords}" fill="{_colour((site,))}" '
            f'stroke="#444" stroke-width="1"/>'
        )
    for site, (x, y) in enumerate(voronoi.dataset):
        cx, cy = to_px(x, y)
        parts.append(f'<circle cx="{cx}" cy="{cy}" r="4" fill="#222"/>')
    parts.append("</svg>")
    return "\n".join(parts)
