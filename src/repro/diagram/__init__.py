"""Skyline diagram construction — the paper's core contribution.

Seven construction algorithms over two grid substrates:

=============  ==========================  ===========================
Diagram        Algorithm                   Function
=============  ==========================  ===========================
quadrant       baseline (Alg. 1)           :func:`quadrant_baseline`
quadrant       directed graph (Alg. 2)     :func:`quadrant_dsg`
quadrant       scanning (Alg. 3)           :func:`quadrant_scanning`
quadrant       sweeping (Alg. 4)           :func:`quadrant_sweeping`
global         union of quadrants          :func:`global_diagram`
dynamic        baseline (Alg. 5)           :func:`dynamic_baseline`
dynamic        subset (Alg. 6)             :func:`dynamic_subset`
dynamic        scanning (Alg. 7)           :func:`dynamic_scanning`
=============  ==========================  ===========================

plus the d-dimensional variants in :mod:`repro.diagram.highdim` and the
k-skyband extension in :mod:`repro.diagram.skyband`.  The
``QUADRANT_ALGORITHMS`` / ``DYNAMIC_ALGORITHMS`` registries map the paper's
algorithm names to callables for the benchmark harness and CLI.
"""

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.diagram.store import ResultStore
from repro.diagram.dynamic_baseline import dynamic_baseline
from repro.diagram.dynamic_scanning import dynamic_scanning
from repro.diagram.dynamic_subset import dynamic_subset
from repro.diagram.global_diagram import global_diagram, quadrant_diagram_for_mask
from repro.diagram.maintenance import delete_point, insert_point
from repro.diagram.merge import merge_cells, partition_signature
from repro.diagram.pipeline import (
    BuildContext,
    BuildOptions,
    BuildReport,
    ProcessRowExecutor,
    SerialRowExecutor,
)
from repro.diagram.quadrant_baseline import quadrant_baseline
from repro.diagram.quadrant_dsg import quadrant_dsg
from repro.diagram.quadrant_scanning import quadrant_scanning
from repro.diagram.quadrant_sweeping import SweepDiagram, quadrant_sweeping
from repro.diagram.skyband import SkybandDiagram, skyband_baseline, skyband_sweep
from repro.diagram.statistics import DiagramStatistics, diagram_statistics
from repro.diagram.verify import (
    Mismatch,
    VerifyReport,
    differential_verify,
    validate_diagram,
)
from repro.diagram.topology import (
    crossing_distance,
    neighbouring_results,
    region_adjacency,
    region_of,
)

QUADRANT_ALGORITHMS = {
    "baseline": quadrant_baseline,
    "dsg": quadrant_dsg,
    "scanning": quadrant_scanning,
}

DYNAMIC_ALGORITHMS = {
    "baseline": dynamic_baseline,
    "subset": dynamic_subset,
    "scanning": dynamic_scanning,
}

__all__ = [
    "BuildContext",
    "BuildOptions",
    "BuildReport",
    "DYNAMIC_ALGORITHMS",
    "DynamicDiagram",
    "Mismatch",
    "ProcessRowExecutor",
    "SerialRowExecutor",
    "QUADRANT_ALGORITHMS",
    "ResultStore",
    "VerifyReport",
    "differential_verify",
    "SkybandDiagram",
    "SkylineDiagram",
    "SweepDiagram",
    "DiagramStatistics",
    "crossing_distance",
    "delete_point",
    "diagram_statistics",
    "insert_point",
    "skyband_baseline",
    "skyband_sweep",
    "dynamic_baseline",
    "dynamic_scanning",
    "dynamic_subset",
    "global_diagram",
    "merge_cells",
    "partition_signature",
    "quadrant_baseline",
    "quadrant_diagram_for_mask",
    "quadrant_dsg",
    "quadrant_scanning",
    "quadrant_sweeping",
    "neighbouring_results",
    "region_adjacency",
    "region_of",
    "validate_diagram",
]
