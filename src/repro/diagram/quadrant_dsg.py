"""Algorithm 2 — the directed-skyline-graph diagram construction.

Moving from a cell to its right (upper) neighbour crosses one grid line; the
only change to the skyline is that the crossed line's points disappear and
any of their direct children left without a remaining parent surface as new
skyline points.  Sweeping the whole grid therefore costs one graph-link
update per crossed link: O(n^3) worst case but proportional to the number of
direct links in practice (Sec. IV.B).

Instead of copying the graph per row (the paper's ``tempDSG``) this
implementation uses the DSG's removal/undo log, which is equivalent and
allocation-free.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.diagram.base import SkylineDiagram
from repro.dsg.graph import DirectedSkylineGraph
from repro.errors import DimensionalityError
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset


def quadrant_dsg(
    points: Dataset | Sequence[Sequence[float]],
    dsg: DirectedSkylineGraph | None = None,
) -> SkylineDiagram:
    """Build the first-quadrant skyline diagram with Algorithm 2.

    A prebuilt :class:`DirectedSkylineGraph` may be supplied to amortize the
    graph construction across several diagram builds (the ablation benchmark
    does this to time the sweep phase alone).

    >>> diagram = quadrant_dsg([(2, 8), (5, 4), (9, 1)])
    >>> diagram.result_at((0, 0))
    (0, 1, 2)
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError(
            "quadrant_dsg is 2-D; use diagram.highdim for d > 2"
        )
    grid = Grid(dataset)
    if dsg is None:
        dsg = DirectedSkylineGraph(dataset)
    sx, sy = grid.shape
    # Points bucketed by the grid line they sit on, per axis.
    on_vline: list[list[int]] = [[] for _ in range(sx)]
    on_hline: list[list[int]] = [[] for _ in range(sy)]
    for k, (rx, ry) in enumerate(grid.ranks):
        on_vline[rx].append(k)
        on_hline[ry].append(k)

    results: dict[tuple[int, int], tuple[int, ...]] = {}
    # Sky(C_{0,0}) is the skyline of the full dataset: the DSG's sources.
    row_sky = set(dsg.skyline())
    base = dsg.checkpoint()
    for j in range(sy):
        sky = set(row_sky)
        row_checkpoint = dsg.checkpoint()
        for i in range(sx):
            results[(i, j)] = tuple(sorted(sky))
            if i + 1 < sx:
                crossing = on_vline[i + 1]
                exposed = dsg.remove_batch(crossing)
                sky.difference_update(crossing)
                sky.update(exposed)
        dsg.rollback(row_checkpoint)
        if j + 1 < sy:
            crossing = on_hline[j + 1]
            exposed = dsg.remove_batch(crossing)
            row_sky.difference_update(crossing)
            row_sky.update(exposed)
    dsg.rollback(base)
    return SkylineDiagram(grid, results, kind="quadrant", algorithm="dsg")
