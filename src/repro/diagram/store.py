"""Compact array-backed storage of per-cell diagram results.

A skyline diagram assigns one canonical result (a sorted tuple of point
ids) to each of its ``O(n^d)`` cells, but the number of *distinct* results
is far smaller — for 2-D quadrant diagrams it is bounded by the number of
skyline polyominos.  Storing one Python tuple per cell therefore wastes
both memory and time (every dict insert hashes a cell tuple, every
comparison walks a result tuple).

:class:`ResultStore` exploits this redundancy: the distinct results are
*interned* once into a table (position = result id) and the per-cell
assignment lives behind a :class:`GridBackend`.  Result equality becomes
integer equality, cell lookup becomes a backend read, and batch point
location reduces to one backend gather.  The store is the shared backing
of :class:`~repro.diagram.base.SkylineDiagram` and
:class:`~repro.diagram.base.DynamicDiagram`; the historical
``dict[cell, result]`` interface survives as iteration (:meth:`items`) and
conversion (:meth:`to_dict`) views, so dict-producing construction
algorithms keep working unchanged through :meth:`from_dict`.

Three backends implement the id-grid contract:

* :class:`DenseBackend` — the historical ``int32`` ndarray, zero-copy
  compatible with mmapped snapshots and the fused scalar lookup.
* :class:`RLEBackend` — per-row run-length encoding with row-delta
  sharing (identical adjacent rows alias one run slice).  Rows of a
  skyline diagram are long constant runs by Theorem 1, so this is
  typically 10-100x smaller than dense and is how grids with ``O(n^2)``
  cells at n >= 100k stay representable at all.  Content-identical to
  dense: fingerprints match byte for byte.
* :class:`QuadBackend` — quadtree cell merging with a per-node dominant
  id and a *measured* error bound: a node collapses to a leaf when its
  dominant id covers at least ``1 - max_error`` of its cells, so the
  global mismatched-cell fraction is <= ``max_error`` by construction
  (disjoint leaves each contribute <= ``max_error`` of their own area).
  Lookups are approximate; the planner serves them from the ``approx``
  tier with the measured error attached.
"""

from __future__ import annotations

import hashlib
from bisect import insort
from collections.abc import Mapping, Sequence
from itertools import product
from typing import Iterator

import numpy as np

from repro.errors import AuditError

Cell = tuple[int, ...]
Result = tuple[int, ...]


class ConsForestTable:
    """An interned result table stored as a cons forest, materialized lazily.

    Node ``rid >= 1`` holds the result of corner group ``rep[rid - 1]``
    merged into the result of its parent node ``par[rid - 1] + 1``
    (``par == -1`` points at the empty result, id 0).  Parents always
    have smaller ids than their children, so the whole table materializes
    in a single forward pass and a single node materializes by walking
    its parent chain to the nearest already-built ancestor.

    The vectorized quadrant executor emits this forest directly: every
    provisional scan node is provably distinct (each contains a corner
    group introduced in its own scan row, and point ids partition across
    corner groups), so the forest *is* the interned table and building
    the Python result tuples can be deferred until something reads them.
    :class:`ResultStore` upgrades the forest to a plain list the first
    time ``store.table`` is accessed; id-level queries go through
    :meth:`result` and touch only the chains they need.
    """

    __slots__ = ("_rep", "_par", "_groups", "_cache")

    def __init__(
        self,
        rep: np.ndarray,
        par: np.ndarray,
        groups: Sequence[Result],
    ) -> None:
        self._rep = rep
        self._par = par
        self._groups = groups
        self._cache: list[Result | None] | None = None

    def __len__(self) -> int:
        return int(self._rep.size) + 1

    def result(self, rid: int) -> Result:
        """Result tuple of one id, materializing (and caching) its chain."""
        if rid == 0:
            return ()
        cache = self._cache
        if cache is None:
            cache = self._cache = [None] * (int(self._rep.size) + 1)
            cache[0] = ()
        got = cache[rid]
        if got is not None:
            return got
        par = self._par.item
        chain: list[int] = []
        node = rid
        while cache[node] is None:
            chain.append(node)
            node = par(node - 1) + 1
        merged = list(cache[node])
        groups = self._groups
        rep = self._rep.item
        for node in reversed(chain):
            for pid in groups[rep(node - 1)]:
                insort(merged, pid)
            cache[node] = tuple(merged)
        return cache[rid]

    def __getitem__(self, rid: int) -> Result:
        return self.result(int(rid))

    def materialize(self) -> list[Result]:
        """The full table as a plain list, built in one forward pass."""
        groups = self._groups
        table: list[Result] = [()]
        append = table.append
        for gi, p in zip(self._rep.tolist(), self._par.tolist()):
            group = groups[gi]
            if p < 0:
                tup = group
            else:
                merged = list(table[p + 1])
                for pid in group:
                    insort(merged, pid)
                tup = tuple(merged)
            append(tup)
        return table


class PackedTable:
    """An interned result table stored as packed (CSR) index arrays.

    ``values[offsets[rid]:offsets[rid + 1]]`` holds the sorted point ids
    of result ``rid``.  This is the zero-copy on-disk layout of the v3
    snapshot format: both arrays may be views straight into an mmapped
    save envelope, so N serving workers share one physical copy of the
    table.  Tuples are built lazily per id (and cached), exactly like
    :class:`ConsForestTable`; ``store.table`` access upgrades to a plain
    list via :meth:`materialize`.
    """

    __slots__ = ("_offsets", "_values", "_cache")

    def __init__(self, offsets: np.ndarray, values: np.ndarray) -> None:
        self._offsets = offsets
        self._values = values
        self._cache: list[Result | None] | None = None

    def __len__(self) -> int:
        return int(self._offsets.size) - 1

    def result(self, rid: int) -> Result:
        """Result tuple of one id, materializing (and caching) it."""
        cache = self._cache
        if cache is None:
            cache = self._cache = [None] * (int(self._offsets.size) - 1)
        got = cache[rid]
        if got is not None:
            return got
        lo = int(self._offsets[rid])
        hi = int(self._offsets[rid + 1])
        tup = tuple(self._values[lo:hi].tolist())
        cache[rid] = tup
        return tup

    def __getitem__(self, rid: int) -> Result:
        return self.result(int(rid))

    def materialize(self) -> list[Result]:
        """The full table as a plain list, in one pass over the arrays."""
        offsets = self._offsets.tolist()
        values = self._values.tolist()
        return [
            tuple(values[offsets[rid] : offsets[rid + 1]])
            for rid in range(len(offsets) - 1)
        ]


#: Recognised grid backends, in `convert()`/`BuildOptions(backend=...)` order.
BACKENDS = ("dense", "rle", "quad")


def _table_nbytes(
    table: "list[Result] | ConsForestTable | PackedTable",
) -> int:
    """Approximate resident bytes of an interned table backing.

    Lazy backings report their array footprint without materializing;
    plain lists use the CPython tuple-of-ints size formula.
    """
    if isinstance(table, PackedTable):
        return int(table._offsets.nbytes + table._values.nbytes)
    if isinstance(table, ConsForestTable):
        groups = sum(56 + 8 * len(g) for g in table._groups)
        return int(table._rep.nbytes + table._par.nbytes + groups)
    return sum(56 + 8 * len(t) for t in table)


def _multi_arange(starts: np.ndarray, lens: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(s, s + l)`` for paired arrays, vectorized."""
    starts = np.asarray(starts, dtype=np.int64)
    lens = np.asarray(lens, dtype=np.int64)
    keep = lens > 0
    if not bool(keep.all()):
        starts, lens = starts[keep], lens[keep]
    if lens.size == 0:
        return np.empty(0, dtype=np.int64)
    steps = np.ones(int(lens.sum()), dtype=np.int64)
    ends = np.cumsum(lens)
    steps[0] = starts[0]
    steps[ends[:-1]] = starts[1:] - starts[:-1] - lens[:-1] + 1
    return np.cumsum(steps)


class GridBackend:
    """Storage contract for the per-cell id grid of a :class:`ResultStore`.

    A backend views the grid as ``num_rows`` rows of ``row_width`` cells
    (the trailing axis; leading axes are flattened in C order), so the
    row-streaming default implementations of :meth:`fingerprint_section`
    and :meth:`to_dense` produce exactly the bytes of the dense C-order
    array — which is what keeps fingerprints backend-independent for the
    exact backends.

    Subclasses implement: ``id_at``, ``lookup_batch_ids``, ``row_view``,
    ``set_row_runs``, ``nbytes``, ``min_max``, ``mark_referenced``,
    ``flip`` and ``copy``; ``exact`` is False for lossy backends (their
    stores skip the unreferenced-table-slot audit and report a measured
    :attr:`error`).
    """

    kind: str = "abstract"
    exact: bool = True
    __slots__ = ("shape",)

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape: tuple[int, ...] = tuple(int(e) for e in shape)

    @property
    def num_rows(self) -> int:
        rows = 1
        for extent in self.shape[:-1]:
            rows *= extent
        return rows

    @property
    def row_width(self) -> int:
        return self.shape[-1] if self.shape else 1

    @property
    def num_cells(self) -> int:
        cells = 1
        for extent in self.shape:
            cells *= extent
        return cells

    @property
    def error(self) -> float | None:
        """Measured mismatched-cell fraction; ``None`` for exact backends."""
        return None

    # -- the per-cell contract -----------------------------------------
    def id_at(self, cell: Cell) -> int:
        raise NotImplementedError

    def lookup_batch_ids(self, cells: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def row_view(self, row: int) -> np.ndarray:
        """Row ``row`` (flat leading index) as a dense 1-D id array."""
        raise NotImplementedError

    def set_row_runs(
        self, row: int, vals: np.ndarray, ends: np.ndarray
    ) -> None:
        """Overwrite one row with runs ``vals`` ending at ``ends``."""
        raise NotImplementedError

    def nbytes(self) -> int:
        raise NotImplementedError

    def min_max(self) -> tuple[int, int]:
        """Smallest and largest referenced id (grid must be non-empty)."""
        raise NotImplementedError

    def mark_referenced(self, mask: np.ndarray) -> None:
        """Set ``mask[rid] = True`` for every id referenced by a cell."""
        raise NotImplementedError

    def flip(self, axes: tuple[int, ...]) -> "GridBackend":
        raise NotImplementedError

    def copy(self) -> "GridBackend":
        raise NotImplementedError

    # -- shared row-streaming defaults ---------------------------------
    def fingerprint_section(self, digest) -> None:
        """Feed the C-order int64 grid bytes into ``digest``, row by row."""
        for row in range(self.num_rows):
            digest.update(
                np.ascontiguousarray(
                    self.row_view(row), dtype=np.int64
                ).tobytes()
            )

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense id array (C order)."""
        out = np.empty((self.num_rows, self.row_width), dtype=np.int32)
        for row in range(self.num_rows):
            out[row] = self.row_view(row)
        return out.reshape(self.shape)


class DenseBackend(GridBackend):
    """The historical dense integer ndarray — one id per cell.

    ``array`` keeps whatever integer dtype it arrives with (mmapped v3
    snapshots store the minimal unsigned dtype), so wrapping a mapped
    view stays zero-copy.
    """

    kind = "dense"
    __slots__ = ("array",)

    def __init__(self, array: np.ndarray) -> None:
        super().__init__(array.shape)
        self.array = array

    def id_at(self, cell: Cell) -> int:
        return int(self.array[tuple(cell)])

    def lookup_batch_ids(self, cells: np.ndarray) -> np.ndarray:
        return self.array[tuple(cells.T)]

    def row_view(self, row: int) -> np.ndarray:
        return self.array.reshape(self.num_rows, self.row_width)[row]

    def set_row_runs(
        self, row: int, vals: np.ndarray, ends: np.ndarray
    ) -> None:
        ends = np.asarray(ends, dtype=np.int64)
        counts = np.diff(ends, prepend=0)
        self.array.reshape(self.num_rows, self.row_width)[row] = np.repeat(
            np.asarray(vals), counts
        )

    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def min_max(self) -> tuple[int, int]:
        return int(self.array.min()), int(self.array.max())

    def mark_referenced(self, mask: np.ndarray) -> None:
        mask[self.array.reshape(-1)] = True

    def fingerprint_section(self, digest) -> None:
        digest.update(
            np.ascontiguousarray(self.array, dtype=np.int64).tobytes()
        )

    def to_dense(self) -> np.ndarray:
        return self.array

    def flip(self, axes: tuple[int, ...]) -> "DenseBackend":
        return DenseBackend(
            np.ascontiguousarray(np.flip(self.array, axis=axes))
        )

    def copy(self) -> "DenseBackend":
        return DenseBackend(self.array.copy())


class _RLERowBuilder:
    """Accumulate rows of runs into one packed :class:`RLEBackend`.

    Consecutive identical rows are detected here (row-delta sharing):
    a repeat contributes only a row pointer, no run storage.
    """

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape = tuple(int(e) for e in shape)
        self._vals: list[np.ndarray] = []
        self._ends: list[np.ndarray] = []
        self._row_start: list[int] = []
        self._row_nruns: list[int] = []
        self._total = 0
        self._prev: tuple[np.ndarray, np.ndarray, int] | None = None

    def add_row(self, vals: np.ndarray, ends: np.ndarray) -> None:
        vals = np.asarray(vals, dtype=np.int32)
        ends = np.asarray(ends, dtype=np.int32)
        prev = self._prev
        if (
            prev is not None
            and prev[0].size == vals.size
            and np.array_equal(prev[0], vals)
            and np.array_equal(prev[1], ends)
        ):
            self._row_start.append(prev[2])
            self._row_nruns.append(int(vals.size))
            return
        start = self._total
        self._row_start.append(start)
        self._row_nruns.append(int(vals.size))
        self._vals.append(vals)
        self._ends.append(ends)
        self._prev = (vals, ends, start)
        self._total += int(vals.size)

    def build(self) -> "RLEBackend":
        empty = np.empty(0, dtype=np.int32)
        return RLEBackend(
            self.shape,
            np.asarray(self._row_start, dtype=np.int64),
            np.asarray(self._row_nruns, dtype=np.int32),
            np.concatenate(self._vals) if self._vals else empty,
            np.concatenate(self._ends) if self._ends else empty,
        )


class RLEBackend(GridBackend):
    """Per-row run-length encoding of the id grid, with row-delta sharing.

    Row ``r`` (a flat leading index) is the run slice
    ``run_vals[s : s + k]`` / ``run_ends[s : s + k]`` with
    ``s = row_start[r]``, ``k = row_nruns[r]``: run ``i`` holds id
    ``run_vals[i]`` on cells ``[run_ends[i - 1], run_ends[i])`` of the
    trailing axis (the last end is always ``row_width``).  Identical
    adjacent rows share one slice.  All four arrays serialize as v4
    sections and may be read-only mmap views; mutation
    (:meth:`set_row_runs`) is append-and-repoint, never in-place.
    """

    kind = "rle"
    __slots__ = ("row_start", "row_nruns", "run_vals", "run_ends")

    def __init__(
        self,
        shape: Sequence[int],
        row_start: np.ndarray,
        row_nruns: np.ndarray,
        run_vals: np.ndarray,
        run_ends: np.ndarray,
    ) -> None:
        super().__init__(shape)
        if row_start.shape != (self.num_rows,) or row_nruns.shape != (
            self.num_rows,
        ):
            raise ValueError(
                f"row index arrays of shapes {row_start.shape}/"
                f"{row_nruns.shape} for {self.num_rows} rows"
            )
        if run_vals.shape != run_ends.shape:
            raise ValueError("run value/end arrays differ in shape")
        self.row_start = row_start
        self.row_nruns = row_nruns
        self.run_vals = run_vals
        self.run_ends = run_ends

    # -- construction --------------------------------------------------
    @classmethod
    def from_dense(cls, ids: np.ndarray) -> "RLEBackend":
        """Compress a dense id array (vectorized, then row-delta dedup)."""
        shape = tuple(int(e) for e in ids.shape)
        width = shape[-1] if shape else 1
        rows = 1
        for extent in shape[:-1]:
            rows *= extent
        empty = np.empty(0, dtype=np.int32)
        if width == 0 or rows == 0:
            return cls(
                shape,
                np.zeros(rows, dtype=np.int64),
                np.zeros(rows, dtype=np.int32),
                empty,
                empty,
            )
        flat = np.ascontiguousarray(ids, dtype=np.int32).reshape(rows, width)
        starts_mask = np.ones((rows, width), dtype=bool)
        if width > 1:
            starts_mask[:, 1:] = flat[:, 1:] != flat[:, :-1]
        flat_idx = np.nonzero(starts_mask.reshape(-1))[0]
        pos = flat_idx % width
        row_of = flat_idx // width
        run_vals = flat.reshape(-1)[flat_idx]
        run_ends = np.empty(flat_idx.size, dtype=np.int32)
        if flat_idx.size > 1:
            run_ends[:-1] = np.where(
                row_of[1:] == row_of[:-1], pos[1:], width
            )
        run_ends[-1] = width
        row_nruns = np.bincount(row_of, minlength=rows).astype(np.int32)
        row_start = np.concatenate(
            ([0], np.cumsum(row_nruns[:-1], dtype=np.int64))
        )
        packed = cls(shape, row_start, row_nruns, run_vals, run_ends)
        return packed._dedup_rows()

    def _dedup_rows(self) -> "RLEBackend":
        """Share run storage between identical adjacent rows (vectorized)."""
        rows = self.num_rows
        nruns = self.row_nruns.astype(np.int64)
        if rows <= 1 or self.run_vals.size == 0:
            return self
        cand = np.nonzero(nruns[1:] == nruns[:-1])[0] + 1
        if cand.size == 0:
            return self
        lens = nruns[cand]
        cur = _multi_arange(self.row_start[cand], lens)
        prev = _multi_arange(self.row_start[cand - 1], lens)
        eq = (self.run_vals[cur] == self.run_vals[prev]) & (
            self.run_ends[cur] == self.run_ends[prev]
        )
        bounds = np.concatenate(([0], np.cumsum(lens)))
        dup = np.ones(cand.size, dtype=bool)
        nonzero = np.nonzero(lens > 0)[0]
        if nonzero.size:
            # Zero-length segments collapse their bounds, so reduceat over
            # the non-empty segment starts still covers exactly each one.
            dup[nonzero] = np.logical_and.reduceat(eq, bounds[nonzero])
        is_dup = np.zeros(rows, dtype=bool)
        is_dup[cand] = dup
        if not bool(is_dup.any()):
            return self
        keep = ~is_dup
        keep_lens = nruns[keep]
        take = _multi_arange(self.row_start[keep], keep_lens)
        new_vals = np.ascontiguousarray(self.run_vals[take])
        new_ends = np.ascontiguousarray(self.run_ends[take])
        starts_kept = np.concatenate(
            ([0], np.cumsum(keep_lens[:-1]))
        ).astype(np.int64)
        new_start = np.zeros(rows, dtype=np.int64)
        new_start[keep] = starts_kept
        anchor = np.maximum.accumulate(
            np.where(keep, np.arange(rows), -1)
        )
        return RLEBackend(
            self.shape,
            new_start[anchor],
            self.row_nruns.astype(np.int32),
            new_vals,
            new_ends,
        )

    # -- lookups -------------------------------------------------------
    def _row_index(self, cell: Cell) -> int:
        row = 0
        for c, extent in zip(cell[:-1], self.shape[:-1]):
            row = row * extent + int(c)
        return row

    def id_at(self, cell: Cell) -> int:
        row = self._row_index(cell)
        start = int(self.row_start[row])
        count = int(self.row_nruns[row])
        k = start + int(
            np.searchsorted(
                self.run_ends[start : start + count],
                int(cell[-1]),
                side="right",
            )
        )
        return int(self.run_vals[k])

    def lookup_batch_ids(self, cells: np.ndarray) -> np.ndarray:
        m = int(cells.shape[0])
        out = np.empty(m, dtype=np.int64)
        if m == 0:
            return out
        lead = self.shape[:-1]
        if lead:
            rows = np.ravel_multi_index(
                tuple(cells[:, :-1].astype(np.int64).T), lead
            )
        else:
            rows = np.zeros(m, dtype=np.int64)
        starts = self.row_start[rows].tolist()
        counts = self.row_nruns[rows].tolist()
        ys = cells[:, -1].tolist()
        ends = self.run_ends
        vals = self.run_vals
        searchsorted = np.searchsorted
        for i in range(m):
            s = starts[i]
            k = s + int(
                searchsorted(ends[s : s + counts[i]], ys[i], side="right")
            )
            out[i] = vals[k]
        return out

    def row_view(self, row: int) -> np.ndarray:
        start = int(self.row_start[row])
        count = int(self.row_nruns[row])
        ends = self.run_ends[start : start + count].astype(np.int64)
        counts = np.diff(ends, prepend=0)
        return np.repeat(
            self.run_vals[start : start + count], counts
        ).astype(np.int32, copy=False)

    def row_runs(self, row: int) -> tuple[np.ndarray, np.ndarray]:
        """One row's ``(vals, ends)`` run slice (views, do not mutate)."""
        start = int(self.row_start[row])
        count = int(self.row_nruns[row])
        return (
            self.run_vals[start : start + count],
            self.run_ends[start : start + count],
        )

    def set_row_runs(
        self, row: int, vals: np.ndarray, ends: np.ndarray
    ) -> None:
        """Repoint ``row`` at freshly appended runs (mmap-safe: no
        in-place writes; rows sharing the old slice are untouched)."""
        vals = np.asarray(vals, dtype=np.int32)
        ends = np.asarray(ends, dtype=np.int32)
        if vals.shape != ends.shape or vals.ndim != 1:
            raise ValueError("row runs need matching 1-D value/end arrays")
        if self.row_width:
            if vals.size == 0 or int(ends[-1]) != self.row_width:
                raise ValueError(
                    f"row runs must end at {self.row_width}, got "
                    f"{ends[-1] if ends.size else 'nothing'}"
                )
            if ends.size > 1 and bool((np.diff(ends) <= 0).any()):
                raise ValueError("run ends must be strictly increasing")
        start = int(self.run_vals.size)
        self.run_vals = np.concatenate((self.run_vals, vals))
        self.run_ends = np.concatenate((self.run_ends, ends))
        row_start = np.array(self.row_start)
        row_start[row] = start
        self.row_start = row_start
        row_nruns = np.array(self.row_nruns)
        row_nruns[row] = vals.size
        self.row_nruns = row_nruns

    # -- bookkeeping ---------------------------------------------------
    def nbytes(self) -> int:
        return int(
            self.row_start.nbytes
            + self.row_nruns.nbytes
            + self.run_vals.nbytes
            + self.run_ends.nbytes
        )

    def _used_indices(self) -> np.ndarray:
        return _multi_arange(self.row_start, self.row_nruns)

    def min_max(self) -> tuple[int, int]:
        used = self.run_vals[self._used_indices()]
        return int(used.min()), int(used.max())

    def mark_referenced(self, mask: np.ndarray) -> None:
        mask[self.run_vals[self._used_indices()]] = True

    def flip(self, axes: tuple[int, ...]) -> "RLEBackend":
        ndim = len(self.shape)
        normalized = {a % ndim for a in axes}
        flip_last = (ndim - 1) in normalized
        lead_axes = tuple(a for a in sorted(normalized) if a != ndim - 1)
        if lead_axes:
            order = np.arange(self.num_rows).reshape(self.shape[:-1])
            order = np.flip(order, axis=lead_axes).reshape(-1)
        else:
            order = np.arange(self.num_rows)
        width = self.row_width
        builder = _RLERowBuilder(self.shape)
        for row in order.tolist():
            vals, ends = self.row_runs(row)
            if flip_last and vals.size:
                starts = np.concatenate(([0], ends[:-1]))
                vals = vals[::-1]
                ends = (width - starts)[::-1]
            builder.add_row(vals, ends)
        return builder.build()

    def copy(self) -> "RLEBackend":
        return RLEBackend(
            self.shape,
            self.row_start.copy(),
            self.row_nruns.copy(),
            self.run_vals.copy(),
            self.run_ends.copy(),
        )


class QuadBackend(GridBackend):
    """Quadtree cell merging with per-node dominant ids (2-D, lossy).

    Built top-down from a dense grid: a node becomes a leaf carrying its
    *dominant* id as soon as the dominant covers at least
    ``1 - max_error`` of the node's cells (always true for single
    cells), otherwise it splits at the midpoints.  Merged-away minority
    cells are counted exactly during the build, so :attr:`error` is the
    *measured* global mismatch fraction — <= ``max_error`` because the
    leaves partition the grid and each contributes at most ``max_error``
    of its own area.

    ``children[node, q]`` is the child for quadrant ``q = 2 * xhalf +
    yhalf`` (-1 when absent); ``node_ids[node]`` is the leaf id, -1 for
    internal nodes.  Axes of extent 1 never split, mirroring the
    descent in :meth:`id_at`.
    """

    kind = "quad"
    exact = False
    __slots__ = ("children", "node_ids", "epsilon", "mismatches")

    def __init__(
        self,
        shape: Sequence[int],
        children: np.ndarray,
        node_ids: np.ndarray,
        epsilon: float,
        mismatches: int,
    ) -> None:
        super().__init__(shape)
        if len(self.shape) != 2:
            raise ValueError("quad backend is 2-D only")
        self.children = children
        self.node_ids = node_ids
        self.epsilon = float(epsilon)
        self.mismatches = int(mismatches)

    @property
    def error(self) -> float | None:
        cells = self.num_cells
        return self.mismatches / cells if cells else 0.0

    @classmethod
    def from_dense(
        cls, ids: np.ndarray, max_error: float = 0.05
    ) -> "QuadBackend":
        if ids.ndim != 2:
            raise ValueError("quad backend is 2-D only")
        if not 0.0 <= max_error < 1.0:
            raise ValueError(f"max_error {max_error!r} outside [0, 1)")
        ids = np.ascontiguousarray(ids, dtype=np.int32)
        sx, sy = (int(e) for e in ids.shape)
        children: list[list[int]] = []
        node_ids: list[int] = []
        mismatches = 0
        if sx and sy:
            children.append([-1, -1, -1, -1])
            node_ids.append(-1)
            stack = [(0, 0, sx, 0, sy)]
            while stack:
                node, x0, x1, y0, y1 = stack.pop()
                block = ids[x0:x1, y0:y1]
                vals, counts = np.unique(block, return_counts=True)
                top = int(np.argmax(counts))
                wrong = int(block.size - counts[top])
                if wrong <= max_error * block.size:
                    node_ids[node] = int(vals[top])
                    mismatches += wrong
                    continue
                mx = (x0 + x1) // 2 if x1 - x0 > 1 else x1
                my = (y0 + y1) // 2 if y1 - y0 > 1 else y1
                quads = (
                    (x0, mx, y0, my),
                    (x0, mx, my, y1),
                    (mx, x1, y0, my),
                    (mx, x1, my, y1),
                )
                for q, (a, b, c, d) in enumerate(quads):
                    if a >= b or c >= d:
                        continue
                    child = len(children)
                    children.append([-1, -1, -1, -1])
                    node_ids.append(-1)
                    children[node][q] = child
                    stack.append((child, a, b, c, d))
        return cls(
            (sx, sy),
            np.asarray(children, dtype=np.int32).reshape(-1, 4),
            np.asarray(node_ids, dtype=np.int32),
            max_error,
            mismatches,
        )

    # -- lookups -------------------------------------------------------
    def id_at(self, cell: Cell) -> int:
        x, y = int(cell[0]), int(cell[1])
        node = 0
        x0, x1 = 0, self.shape[0]
        y0, y1 = 0, self.shape[1]
        node_ids = self.node_ids
        children = self.children
        while True:
            nid = int(node_ids[node])
            if nid >= 0:
                return nid
            q = 0
            if x1 - x0 > 1:
                mx = (x0 + x1) // 2
                if x >= mx:
                    q += 2
                    x0 = mx
                else:
                    x1 = mx
            if y1 - y0 > 1:
                my = (y0 + y1) // 2
                if y >= my:
                    q += 1
                    y0 = my
                else:
                    y1 = my
            node = int(children[node, q])

    def lookup_batch_ids(self, cells: np.ndarray) -> np.ndarray:
        out = np.empty(int(cells.shape[0]), dtype=np.int64)
        for i, cell in enumerate(cells.tolist()):
            out[i] = self.id_at(tuple(cell))
        return out

    def _leaves(self):
        """Yield ``(node_id, x0, x1, y0, y1)`` over all leaf regions."""
        if not self.node_ids.size:
            return
        stack = [(0, 0, self.shape[0], 0, self.shape[1])]
        node_ids = self.node_ids
        children = self.children
        while stack:
            node, x0, x1, y0, y1 = stack.pop()
            nid = int(node_ids[node])
            if nid >= 0:
                yield nid, x0, x1, y0, y1
                continue
            mx = (x0 + x1) // 2 if x1 - x0 > 1 else x1
            my = (y0 + y1) // 2 if y1 - y0 > 1 else y1
            quads = (
                (x0, mx, y0, my),
                (x0, mx, my, y1),
                (mx, x1, y0, my),
                (mx, x1, my, y1),
            )
            for q, (a, b, c, d) in enumerate(quads):
                child = int(children[node, q])
                if child >= 0:
                    stack.append((child, a, b, c, d))

    def row_view(self, row: int) -> np.ndarray:
        out = np.empty(self.shape[1], dtype=np.int32)
        for nid, x0, x1, y0, y1 in self._leaves():
            if x0 <= row < x1:
                out[y0:y1] = nid
        return out

    def to_dense(self) -> np.ndarray:
        out = np.empty(self.shape, dtype=np.int32)
        for nid, x0, x1, y0, y1 in self._leaves():
            out[x0:x1, y0:y1] = nid
        return out

    def set_row_runs(
        self, row: int, vals: np.ndarray, ends: np.ndarray
    ) -> None:
        raise TypeError(
            "quad backend is immutable; convert to 'dense' or 'rle' first"
        )

    # -- bookkeeping ---------------------------------------------------
    def nbytes(self) -> int:
        return int(self.children.nbytes + self.node_ids.nbytes)

    def min_max(self) -> tuple[int, int]:
        leaves = self.node_ids[self.node_ids >= 0]
        return int(leaves.min()), int(leaves.max())

    def mark_referenced(self, mask: np.ndarray) -> None:
        mask[self.node_ids[self.node_ids >= 0]] = True

    def flip(self, axes: tuple[int, ...]) -> "QuadBackend":
        # Re-merge over the materialized grid; the measured error
        # composes (mismatch vs the original <= old + new measurement).
        flipped = QuadBackend.from_dense(
            np.flip(self.to_dense(), axis=axes), self.epsilon
        )
        flipped.mismatches += self.mismatches
        return flipped

    def copy(self) -> "QuadBackend":
        return QuadBackend(
            self.shape,
            self.children.copy(),
            self.node_ids.copy(),
            self.epsilon,
            self.mismatches,
        )


class ResultStore:
    """Interned per-cell results over a dense integer grid.

    Parameters
    ----------
    shape:
        Cells per axis.
    ids:
        ``int32`` ndarray of that shape (wrapped in a
        :class:`DenseBackend`) or any :class:`GridBackend`;
        ``ids[cell]`` indexes ``table``.  Defaults to all-zero with a
        one-entry table holding the empty result.
    table:
        The interned result tuples, indexed by id.  Entries must be unique;
        every entry should be referenced by at least one cell (builders in
        this package guarantee both; lossy backends may orphan slots).

    Examples
    --------
    >>> store = ResultStore.from_dict((2, 1), {(0, 0): (0,), (1, 0): ()})
    >>> store.result_at((0, 0))
    (0,)
    >>> store.distinct_count
    2
    """

    __slots__ = ("shape", "_backend", "_table", "_intern", "_mmap")

    def __init__(
        self,
        shape: Sequence[int],
        ids: np.ndarray | GridBackend | None = None,
        table: list[Result] | ConsForestTable | PackedTable | None = None,
    ) -> None:
        self.shape: tuple[int, ...] = tuple(int(extent) for extent in shape)
        backend: GridBackend
        if ids is None:
            backend = DenseBackend(np.zeros(self.shape, dtype=np.int32))
            table = [()]
        elif isinstance(ids, GridBackend):
            if table is None:
                raise ValueError("ids without a result table")
            backend = ids
        else:
            if table is None:
                raise ValueError("ids without a result table")
            backend = DenseBackend(ids)
        if backend.shape != self.shape:
            raise ValueError(
                f"id array of shape {backend.shape} for store shape "
                f"{self.shape}"
            )
        self._backend: GridBackend = backend
        self._table: list[Result] | ConsForestTable | PackedTable = (
            table if table is not None else [()]
        )
        self._intern: dict[Result, int] | None = None
        # Keeps an mmap alive when the arrays are views into a mapped
        # snapshot (set by repro.index.serialize.map_diagram).
        self._mmap = None

    # ------------------------------------------------------------------
    # The grid backend
    # ------------------------------------------------------------------
    @property
    def backend(self) -> GridBackend:
        """The grid backend holding the per-cell id assignment."""
        return self._backend

    @property
    def backend_kind(self) -> str:
        """``"dense"``, ``"rle"`` or ``"quad"``."""
        return self._backend.kind

    @property
    def ids(self) -> np.ndarray:
        """The dense id ndarray — :class:`DenseBackend` stores only.

        Compressed/approximate stores have no dense array to hand out;
        use :meth:`dense_ids` (materializing) or the backend row/run
        interface instead.
        """
        backend = self._backend
        if isinstance(backend, DenseBackend):
            return backend.array
        raise TypeError(
            f"store backend {backend.kind!r} has no dense id array; use "
            "dense_ids(), convert('dense'), or the backend row interface"
        )

    def dense_ids(self) -> np.ndarray:
        """The id grid as a dense ndarray (materializes lossless copies)."""
        return self._backend.to_dense()

    @property
    def approx_error(self) -> float | None:
        """Measured lookup error fraction (``None`` for exact backends)."""
        return self._backend.error

    @property
    def nbytes(self) -> int:
        """Resident bytes of the id grid plus the interned table."""
        return self._backend.nbytes() + _table_nbytes(self._table)

    def row_view(self, row: int) -> np.ndarray:
        """One grid row (flat leading index) as a dense id array."""
        return self._backend.row_view(row)

    def set_row_runs(
        self, row: int, vals: np.ndarray, ends: np.ndarray
    ) -> None:
        """Overwrite one grid row with runs (see :class:`GridBackend`)."""
        self._backend.set_row_runs(row, vals, ends)

    def convert(
        self, kind: str, *, max_error: float = 0.05
    ) -> "ResultStore":
        """This store rebacked onto another grid backend.

        Exact conversions (``dense`` <-> ``rle``) preserve content and
        therefore :meth:`fingerprint` byte-for-byte; ``quad`` is lossy
        with measured error <= ``max_error``.  The interned table
        backing is shared (and stays lazy); converting a mapped store
        materializes fresh arrays, so the result does not keep the
        source's mmap alive.  Returns ``self`` when already on ``kind``.
        """
        if kind not in BACKENDS:
            raise ValueError(
                f"unknown grid backend {kind!r}; expected one of {BACKENDS}"
            )
        if kind == self.backend_kind:
            return self
        backend: GridBackend
        if kind == "dense":
            backend = DenseBackend(self._backend.to_dense())
        elif kind == "rle":
            backend = RLEBackend.from_dense(self._backend.to_dense())
        else:
            backend = QuadBackend.from_dense(
                self._backend.to_dense(), max_error
            )
        return ResultStore(self.shape, backend, self._table)

    @property
    def table(self) -> list[Result]:
        """The interned result tuples, indexed by id.

        A :class:`ConsForestTable` backing is upgraded to a plain list on
        first access, so every list-level consumer (audits, equality,
        serialization, fault injection) sees the same materialized table
        a list-building constructor would have produced.  Id-level reads
        that should stay lazy go through :meth:`result_tuple`.
        """
        table = self._table
        if type(table) is not list:
            table = self._table = table.materialize()
        return table

    @table.setter
    def table(
        self, value: list[Result] | ConsForestTable | PackedTable
    ) -> None:
        self._table = value

    def result_tuple(self, rid: int) -> Result:
        """Result tuple of one id without materializing a lazy table."""
        table = self._table
        if type(table) is list:
            return table[rid]
        return table.result(rid)

    def table_view(self) -> list[Result]:
        """The interned table as a list, *without* upgrading a lazy backing.

        Read-only sweeps (fingerprints, audits, iteration, equality) go
        through this view: a :class:`ConsForestTable`/:class:`PackedTable`
        backing is materialized transiently for the caller but
        ``self._table`` stays lazy, so a routine health sweep never
        defeats the vectorized builder's deferred interning.  Mutating
        consumers (:meth:`intern`, fault injection) use the upgrading
        :attr:`table` property instead.
        """
        table = self._table
        if type(table) is list:
            return table
        return table.materialize()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, shape: Sequence[int], results: Mapping[Cell, Result]
    ) -> "ResultStore":
        """Intern a ``cell -> result`` mapping covering every cell."""
        shape = tuple(int(extent) for extent in shape)
        num = 1
        for extent in shape:
            num *= extent
        flat = np.empty(num, dtype=np.int32)
        table: list[Result] = []
        intern: dict[Result, int] = {}
        for k, cell in enumerate(product(*(range(e) for e in shape))):
            result = results[cell]
            rid = intern.get(result)
            if rid is None:
                rid = len(table)
                table.append(result)
                intern[result] = rid
            flat[k] = rid
        store = cls(shape, flat.reshape(shape), table)
        store._intern = intern
        return store

    def intern(self, result: Result) -> int:
        """Id of ``result``, adding it to the table when new."""
        if self._intern is None:
            self._intern = {r: i for i, r in enumerate(self.table)}
        rid = self._intern.get(result)
        if rid is None:
            rid = len(self.table)
            self.table.append(result)
            self._intern[result] = rid
        return rid

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Total number of cells."""
        return self._backend.num_cells

    @property
    def distinct_count(self) -> int:
        """Number of distinct results — an O(1) read of the table size."""
        return len(self._table)

    def id_at(self, cell: Cell) -> int:
        """Result id of one cell (``KeyError`` outside the grid)."""
        if len(cell) != len(self.shape):
            raise KeyError(cell)
        for c, extent in zip(cell, self.shape):
            if not 0 <= c < extent:
                raise KeyError(cell)
        return self._backend.id_at(cell)

    def result_at(self, cell: Cell) -> Result:
        """Canonical result of one cell (``KeyError`` outside the grid)."""
        return self.result_tuple(self.id_at(cell))

    def lookup_batch(self, cells: np.ndarray) -> list[Result]:
        """Results for an ``(m, d)`` array of cell indices, in one pass."""
        if cells.shape[0] == 0:
            return []
        ids = self._backend.lookup_batch_ids(cells)
        table = self._table
        if type(table) is not list:
            result = table.result
            return [result(i) for i in ids.tolist()]
        return [table[i] for i in ids.tolist()]

    def union_at_corners(
        self, cell: Cell, axes: Sequence[int]
    ) -> tuple[int, ...]:
        """Sorted union of the results of a hypercube of adjacent cells.

        ``cell`` is the lower corner; the ``2^len(axes)`` cells offset by
        0 or 1 along each axis in ``axes`` are gathered (every index must
        stay inside the grid).  This is the candidate-collection step of
        exact boundary resolution: a query on the closed/open edge between
        cells can only be answered by points appearing in one of the cells
        that share the edge.  Distinct result ids are deduplicated before
        the tuple union, so the merge cost tracks the number of distinct
        neighbouring regions, not ``2^b``.
        """
        ids = {self.id_at(cell)}
        for bits in range(1, 1 << len(axes)):
            probe = list(cell)
            for k, axis in enumerate(axes):
                if bits >> k & 1:
                    probe[axis] += 1
            ids.add(self.id_at(tuple(probe)))
        if len(ids) == 1:
            return self.result_tuple(ids.pop())
        union: set[int] = set()
        for rid in ids:
            union.update(self.result_tuple(rid))
        return tuple(sorted(union))

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the store (shape, id grid, result table).

        Recorded when a diagram is attached to the serving engine and
        re-checked by :meth:`audit`-driven health sweeps: any in-memory
        mutation of the id grid or the table — including single-bit flips
        that stay structurally valid — changes the digest.  Computed over
        :meth:`table_view`, so fingerprinting a lazily interned store
        never upgrades it and the digest is identical before and after
        materialization.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.shape).encode())
        self._backend.fingerprint_section(digest)
        digest.update(repr(self.table_view()).encode())
        return digest.hexdigest()

    def audit(self, num_points: int | None = None) -> str:
        """Verify structural invariants; return the content fingerprint.

        Raises :class:`~repro.errors.AuditError` on the first violation:
        id-grid shape/range, canonical (sorted, deduplicated) table
        entries, id range against ``num_points`` when given, duplicate
        interned entries, a stale ``_intern`` acceleration map, and
        unreferenced table slots.  Reads the table through
        :meth:`table_view`, so auditing a lazily interned store leaves it
        lazy.
        """
        if self._backend.shape != self.shape:
            raise AuditError(
                f"id grid of shape {self._backend.shape} for store shape "
                f"{self.shape}"
            )
        entries = self.table_view()
        if self.num_cells:
            low, high = self._backend.min_max()
            if low < 0 or high >= len(entries):
                raise AuditError(
                    f"cell ids span [{low}, {high}] but the table has "
                    f"{len(entries)} entries"
                )
        seen: dict[tuple[int, ...], int] = {}
        for rid, result in enumerate(entries):
            if not isinstance(result, tuple):
                raise AuditError(f"table[{rid}] is not a tuple: {result!r}")
            if list(result) != sorted(set(result)):
                raise AuditError(
                    f"table[{rid}] = {result} is not a sorted id set"
                )
            if result and (
                result[0] < 0
                or (num_points is not None and result[-1] >= num_points)
            ):
                raise AuditError(
                    f"table[{rid}] = {result} references unknown points"
                )
            if result in seen:
                raise AuditError(
                    f"table[{rid}] duplicates table[{seen[result]}]"
                )
            seen[result] = rid
        if self._intern is not None and self._intern != seen:
            raise AuditError("intern map disagrees with the result table")
        # Lossy backends (quad) may merge an id entirely out of the
        # grid, so only exact backends assert full table coverage.
        if self.num_cells and self._backend.exact:
            referenced = np.zeros(len(entries), dtype=bool)
            self._backend.mark_referenced(referenced)
            if not referenced.all():
                missing = int(np.nonzero(~referenced)[0][0])
                raise AuditError(f"table[{missing}] is never referenced")
        return self.fingerprint()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Cell, Result]]:
        """Iterate ``(cell, result)`` pairs in row-major order."""
        table = self.table_view()
        backend = self._backend
        if isinstance(backend, DenseBackend):
            flat = backend.array.reshape(-1)
            for cell, rid in zip(
                product(*(range(e) for e in self.shape)), flat.tolist()
            ):
                yield cell, table[rid]
            return
        for row, prefix in enumerate(
            product(*(range(e) for e in self.shape[:-1]))
        ):
            for y, rid in enumerate(backend.row_view(row).tolist()):
                yield prefix + (y,), table[rid]

    def to_dict(self) -> dict[Cell, Result]:
        """Materialize the historical ``dict[cell, result]`` view."""
        return dict(self.items())

    def distinct_results(self) -> set[Result]:
        """The set of distinct results (the table, as a set)."""
        return set(self.table_view())

    def flip(self, axes: Sequence[int]) -> "ResultStore":
        """A store with the id array mirrored along ``axes`` (shared table).

        Mirroring cell ``c`` to ``extent - 1 - c`` on an axis is exactly the
        rank-space reflection used to reduce an arbitrary quadrant
        orientation to the first quadrant.
        """
        axes = tuple(axes)
        if not axes:
            return ResultStore(
                self.shape, self._backend.copy(), list(self.table_view())
            )
        return ResultStore(
            self.shape, self._backend.flip(axes), list(self.table_view())
        )

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------
    def _canonical(self) -> tuple[np.ndarray, list[Result]]:
        """Relabel ids by first occurrence, for id-order-independent equality."""
        flat = self._backend.to_dense().reshape(-1)
        uniq, first, inverse = np.unique(
            flat, return_index=True, return_inverse=True
        )
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[order] = np.arange(len(uniq))
        canon_ids = rank[inverse.reshape(-1)]
        table = self.table_view()
        canon_table = [table[int(uniq[k])] for k in order]
        return canon_ids, canon_table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultStore):
            return NotImplemented
        if self.shape != other.shape:
            return False
        if self.table_view() == other.table_view() and np.array_equal(
            self._backend.to_dense(), other._backend.to_dense()
        ):
            return True
        a_ids, a_table = self._canonical()
        b_ids, b_table = other._canonical()
        return a_table == b_table and bool(np.array_equal(a_ids, b_ids))

    def __len__(self) -> int:
        return self.num_cells

    def __repr__(self) -> str:
        backend = (
            "" if self.backend_kind == "dense"
            else f", backend={self.backend_kind!r}"
        )
        return (
            f"ResultStore(shape={self.shape}, cells={self.num_cells}, "
            f"distinct={self.distinct_count}{backend})"
        )
