"""Compact array-backed storage of per-cell diagram results.

A skyline diagram assigns one canonical result (a sorted tuple of point
ids) to each of its ``O(n^d)`` cells, but the number of *distinct* results
is far smaller — for 2-D quadrant diagrams it is bounded by the number of
skyline polyominos.  Storing one Python tuple per cell therefore wastes
both memory and time (every dict insert hashes a cell tuple, every
comparison walks a result tuple).

:class:`ResultStore` exploits this redundancy: the distinct results are
*interned* once into a table (position = result id) and the per-cell
assignment is a dense ``int32`` ndarray of shape ``grid.shape``.  Result
equality becomes integer equality, cell lookup becomes an array read, and
batch point location reduces to one fancy-indexing expression.  The store
is the shared backing of :class:`~repro.diagram.base.SkylineDiagram` and
:class:`~repro.diagram.base.DynamicDiagram`; the historical
``dict[cell, result]`` interface survives as iteration (:meth:`items`) and
conversion (:meth:`to_dict`) views, so dict-producing construction
algorithms keep working unchanged through :meth:`from_dict`.
"""

from __future__ import annotations

import hashlib
from bisect import insort
from collections.abc import Mapping, Sequence
from itertools import product
from typing import Iterator

import numpy as np

from repro.errors import AuditError

Cell = tuple[int, ...]
Result = tuple[int, ...]


class ConsForestTable:
    """An interned result table stored as a cons forest, materialized lazily.

    Node ``rid >= 1`` holds the result of corner group ``rep[rid - 1]``
    merged into the result of its parent node ``par[rid - 1] + 1``
    (``par == -1`` points at the empty result, id 0).  Parents always
    have smaller ids than their children, so the whole table materializes
    in a single forward pass and a single node materializes by walking
    its parent chain to the nearest already-built ancestor.

    The vectorized quadrant executor emits this forest directly: every
    provisional scan node is provably distinct (each contains a corner
    group introduced in its own scan row, and point ids partition across
    corner groups), so the forest *is* the interned table and building
    the Python result tuples can be deferred until something reads them.
    :class:`ResultStore` upgrades the forest to a plain list the first
    time ``store.table`` is accessed; id-level queries go through
    :meth:`result` and touch only the chains they need.
    """

    __slots__ = ("_rep", "_par", "_groups", "_cache")

    def __init__(
        self,
        rep: np.ndarray,
        par: np.ndarray,
        groups: Sequence[Result],
    ) -> None:
        self._rep = rep
        self._par = par
        self._groups = groups
        self._cache: list[Result | None] | None = None

    def __len__(self) -> int:
        return int(self._rep.size) + 1

    def result(self, rid: int) -> Result:
        """Result tuple of one id, materializing (and caching) its chain."""
        if rid == 0:
            return ()
        cache = self._cache
        if cache is None:
            cache = self._cache = [None] * (int(self._rep.size) + 1)
            cache[0] = ()
        got = cache[rid]
        if got is not None:
            return got
        par = self._par.item
        chain: list[int] = []
        node = rid
        while cache[node] is None:
            chain.append(node)
            node = par(node - 1) + 1
        merged = list(cache[node])
        groups = self._groups
        rep = self._rep.item
        for node in reversed(chain):
            for pid in groups[rep(node - 1)]:
                insort(merged, pid)
            cache[node] = tuple(merged)
        return cache[rid]

    def __getitem__(self, rid: int) -> Result:
        return self.result(int(rid))

    def materialize(self) -> list[Result]:
        """The full table as a plain list, built in one forward pass."""
        groups = self._groups
        table: list[Result] = [()]
        append = table.append
        for gi, p in zip(self._rep.tolist(), self._par.tolist()):
            group = groups[gi]
            if p < 0:
                tup = group
            else:
                merged = list(table[p + 1])
                for pid in group:
                    insort(merged, pid)
                tup = tuple(merged)
            append(tup)
        return table


class PackedTable:
    """An interned result table stored as packed (CSR) index arrays.

    ``values[offsets[rid]:offsets[rid + 1]]`` holds the sorted point ids
    of result ``rid``.  This is the zero-copy on-disk layout of the v3
    snapshot format: both arrays may be views straight into an mmapped
    save envelope, so N serving workers share one physical copy of the
    table.  Tuples are built lazily per id (and cached), exactly like
    :class:`ConsForestTable`; ``store.table`` access upgrades to a plain
    list via :meth:`materialize`.
    """

    __slots__ = ("_offsets", "_values", "_cache")

    def __init__(self, offsets: np.ndarray, values: np.ndarray) -> None:
        self._offsets = offsets
        self._values = values
        self._cache: list[Result | None] | None = None

    def __len__(self) -> int:
        return int(self._offsets.size) - 1

    def result(self, rid: int) -> Result:
        """Result tuple of one id, materializing (and caching) it."""
        cache = self._cache
        if cache is None:
            cache = self._cache = [None] * (int(self._offsets.size) - 1)
        got = cache[rid]
        if got is not None:
            return got
        lo = int(self._offsets[rid])
        hi = int(self._offsets[rid + 1])
        tup = tuple(self._values[lo:hi].tolist())
        cache[rid] = tup
        return tup

    def __getitem__(self, rid: int) -> Result:
        return self.result(int(rid))

    def materialize(self) -> list[Result]:
        """The full table as a plain list, in one pass over the arrays."""
        offsets = self._offsets.tolist()
        values = self._values.tolist()
        return [
            tuple(values[offsets[rid] : offsets[rid + 1]])
            for rid in range(len(offsets) - 1)
        ]


class ResultStore:
    """Interned per-cell results over a dense integer grid.

    Parameters
    ----------
    shape:
        Cells per axis.
    ids:
        ``int32`` ndarray of that shape; ``ids[cell]`` indexes ``table``.
        Defaults to all-zero with a one-entry table holding the empty
        result.
    table:
        The interned result tuples, indexed by id.  Entries must be unique;
        every entry should be referenced by at least one cell (builders in
        this package guarantee both).

    Examples
    --------
    >>> store = ResultStore.from_dict((2, 1), {(0, 0): (0,), (1, 0): ()})
    >>> store.result_at((0, 0))
    (0,)
    >>> store.distinct_count
    2
    """

    __slots__ = ("shape", "ids", "_table", "_intern", "_mmap")

    def __init__(
        self,
        shape: Sequence[int],
        ids: np.ndarray | None = None,
        table: list[Result] | ConsForestTable | PackedTable | None = None,
    ) -> None:
        self.shape: tuple[int, ...] = tuple(int(extent) for extent in shape)
        if ids is None:
            ids = np.zeros(self.shape, dtype=np.int32)
            table = [()]
        elif table is None:
            raise ValueError("ids without a result table")
        if tuple(ids.shape) != self.shape:
            raise ValueError(
                f"id array of shape {tuple(ids.shape)} for store shape "
                f"{self.shape}"
            )
        self.ids: np.ndarray = ids
        self._table: list[Result] | ConsForestTable | PackedTable = (
            table if table is not None else [()]
        )
        self._intern: dict[Result, int] | None = None
        # Keeps an mmap alive when the arrays are views into a mapped
        # snapshot (set by repro.index.serialize.map_diagram).
        self._mmap = None

    @property
    def table(self) -> list[Result]:
        """The interned result tuples, indexed by id.

        A :class:`ConsForestTable` backing is upgraded to a plain list on
        first access, so every list-level consumer (audits, equality,
        serialization, fault injection) sees the same materialized table
        a list-building constructor would have produced.  Id-level reads
        that should stay lazy go through :meth:`result_tuple`.
        """
        table = self._table
        if type(table) is not list:
            table = self._table = table.materialize()
        return table

    @table.setter
    def table(
        self, value: list[Result] | ConsForestTable | PackedTable
    ) -> None:
        self._table = value

    def result_tuple(self, rid: int) -> Result:
        """Result tuple of one id without materializing a lazy table."""
        table = self._table
        if type(table) is list:
            return table[rid]
        return table.result(rid)

    def table_view(self) -> list[Result]:
        """The interned table as a list, *without* upgrading a lazy backing.

        Read-only sweeps (fingerprints, audits, iteration, equality) go
        through this view: a :class:`ConsForestTable`/:class:`PackedTable`
        backing is materialized transiently for the caller but
        ``self._table`` stays lazy, so a routine health sweep never
        defeats the vectorized builder's deferred interning.  Mutating
        consumers (:meth:`intern`, fault injection) use the upgrading
        :attr:`table` property instead.
        """
        table = self._table
        if type(table) is list:
            return table
        return table.materialize()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls, shape: Sequence[int], results: Mapping[Cell, Result]
    ) -> "ResultStore":
        """Intern a ``cell -> result`` mapping covering every cell."""
        shape = tuple(int(extent) for extent in shape)
        num = 1
        for extent in shape:
            num *= extent
        flat = np.empty(num, dtype=np.int32)
        table: list[Result] = []
        intern: dict[Result, int] = {}
        for k, cell in enumerate(product(*(range(e) for e in shape))):
            result = results[cell]
            rid = intern.get(result)
            if rid is None:
                rid = len(table)
                table.append(result)
                intern[result] = rid
            flat[k] = rid
        store = cls(shape, flat.reshape(shape), table)
        store._intern = intern
        return store

    def intern(self, result: Result) -> int:
        """Id of ``result``, adding it to the table when new."""
        if self._intern is None:
            self._intern = {r: i for i, r in enumerate(self.table)}
        rid = self._intern.get(result)
        if rid is None:
            rid = len(self.table)
            self.table.append(result)
            self._intern[result] = rid
        return rid

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        """Total number of cells."""
        return int(self.ids.size)

    @property
    def distinct_count(self) -> int:
        """Number of distinct results — an O(1) read of the table size."""
        return len(self._table)

    def id_at(self, cell: Cell) -> int:
        """Result id of one cell (``KeyError`` outside the grid)."""
        if len(cell) != len(self.shape):
            raise KeyError(cell)
        for c, extent in zip(cell, self.shape):
            if not 0 <= c < extent:
                raise KeyError(cell)
        return int(self.ids[tuple(cell)])

    def result_at(self, cell: Cell) -> Result:
        """Canonical result of one cell (``KeyError`` outside the grid)."""
        return self.result_tuple(self.id_at(cell))

    def lookup_batch(self, cells: np.ndarray) -> list[Result]:
        """Results for an ``(m, d)`` array of cell indices, in one pass."""
        if cells.shape[0] == 0:
            return []
        ids = self.ids[tuple(cells.T)]
        table = self._table
        if type(table) is not list:
            result = table.result
            return [result(i) for i in ids.tolist()]
        return [table[i] for i in ids.tolist()]

    def union_at_corners(
        self, cell: Cell, axes: Sequence[int]
    ) -> tuple[int, ...]:
        """Sorted union of the results of a hypercube of adjacent cells.

        ``cell`` is the lower corner; the ``2^len(axes)`` cells offset by
        0 or 1 along each axis in ``axes`` are gathered (every index must
        stay inside the grid).  This is the candidate-collection step of
        exact boundary resolution: a query on the closed/open edge between
        cells can only be answered by points appearing in one of the cells
        that share the edge.  Distinct result ids are deduplicated before
        the tuple union, so the merge cost tracks the number of distinct
        neighbouring regions, not ``2^b``.
        """
        ids = {self.id_at(cell)}
        for bits in range(1, 1 << len(axes)):
            probe = list(cell)
            for k, axis in enumerate(axes):
                if bits >> k & 1:
                    probe[axis] += 1
            ids.add(self.id_at(tuple(probe)))
        if len(ids) == 1:
            return self.result_tuple(ids.pop())
        union: set[int] = set()
        for rid in ids:
            union.update(self.result_tuple(rid))
        return tuple(sorted(union))

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Content hash of the store (shape, id grid, result table).

        Recorded when a diagram is attached to the serving engine and
        re-checked by :meth:`audit`-driven health sweeps: any in-memory
        mutation of the id grid or the table — including single-bit flips
        that stay structurally valid — changes the digest.  Computed over
        :meth:`table_view`, so fingerprinting a lazily interned store
        never upgrades it and the digest is identical before and after
        materialization.
        """
        digest = hashlib.sha256()
        digest.update(repr(self.shape).encode())
        digest.update(
            np.ascontiguousarray(self.ids, dtype=np.int64).tobytes()
        )
        digest.update(repr(self.table_view()).encode())
        return digest.hexdigest()

    def audit(self, num_points: int | None = None) -> str:
        """Verify structural invariants; return the content fingerprint.

        Raises :class:`~repro.errors.AuditError` on the first violation:
        id-grid shape/range, canonical (sorted, deduplicated) table
        entries, id range against ``num_points`` when given, duplicate
        interned entries, a stale ``_intern`` acceleration map, and
        unreferenced table slots.  Reads the table through
        :meth:`table_view`, so auditing a lazily interned store leaves it
        lazy.
        """
        if tuple(self.ids.shape) != self.shape:
            raise AuditError(
                f"id grid of shape {tuple(self.ids.shape)} for store shape "
                f"{self.shape}"
            )
        entries = self.table_view()
        if self.ids.size:
            low = int(self.ids.min())
            high = int(self.ids.max())
            if low < 0 or high >= len(entries):
                raise AuditError(
                    f"cell ids span [{low}, {high}] but the table has "
                    f"{len(entries)} entries"
                )
        seen: dict[tuple[int, ...], int] = {}
        for rid, result in enumerate(entries):
            if not isinstance(result, tuple):
                raise AuditError(f"table[{rid}] is not a tuple: {result!r}")
            if list(result) != sorted(set(result)):
                raise AuditError(
                    f"table[{rid}] = {result} is not a sorted id set"
                )
            if result and (
                result[0] < 0
                or (num_points is not None and result[-1] >= num_points)
            ):
                raise AuditError(
                    f"table[{rid}] = {result} references unknown points"
                )
            if result in seen:
                raise AuditError(
                    f"table[{rid}] duplicates table[{seen[result]}]"
                )
            seen[result] = rid
        if self._intern is not None and self._intern != seen:
            raise AuditError("intern map disagrees with the result table")
        if self.ids.size:
            referenced = np.zeros(len(entries), dtype=bool)
            referenced[self.ids.reshape(-1)] = True
            if not referenced.all():
                missing = int(np.nonzero(~referenced)[0][0])
                raise AuditError(f"table[{missing}] is never referenced")
        return self.fingerprint()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple[Cell, Result]]:
        """Iterate ``(cell, result)`` pairs in row-major order."""
        table = self.table_view()
        flat = self.ids.reshape(-1)
        for cell, rid in zip(
            product(*(range(e) for e in self.shape)), flat.tolist()
        ):
            yield cell, table[rid]

    def to_dict(self) -> dict[Cell, Result]:
        """Materialize the historical ``dict[cell, result]`` view."""
        return dict(self.items())

    def distinct_results(self) -> set[Result]:
        """The set of distinct results (the table, as a set)."""
        return set(self.table_view())

    def flip(self, axes: Sequence[int]) -> "ResultStore":
        """A store with the id array mirrored along ``axes`` (shared table).

        Mirroring cell ``c`` to ``extent - 1 - c`` on an axis is exactly the
        rank-space reflection used to reduce an arbitrary quadrant
        orientation to the first quadrant.
        """
        axes = tuple(axes)
        if not axes:
            return ResultStore(
                self.shape, self.ids.copy(), list(self.table_view())
            )
        flipped = np.ascontiguousarray(np.flip(self.ids, axis=axes))
        return ResultStore(self.shape, flipped, list(self.table_view()))

    # ------------------------------------------------------------------
    # Equality
    # ------------------------------------------------------------------
    def _canonical(self) -> tuple[np.ndarray, list[Result]]:
        """Relabel ids by first occurrence, for id-order-independent equality."""
        flat = self.ids.reshape(-1)
        uniq, first, inverse = np.unique(
            flat, return_index=True, return_inverse=True
        )
        order = np.argsort(first, kind="stable")
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[order] = np.arange(len(uniq))
        canon_ids = rank[inverse.reshape(-1)]
        table = self.table_view()
        canon_table = [table[int(uniq[k])] for k in order]
        return canon_ids, canon_table

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultStore):
            return NotImplemented
        if self.shape != other.shape:
            return False
        if self.table_view() == other.table_view() and np.array_equal(
            self.ids, other.ids
        ):
            return True
        a_ids, a_table = self._canonical()
        b_ids, b_table = other._canonical()
        return a_table == b_table and bool(np.array_equal(a_ids, b_ids))

    def __len__(self) -> int:
        return self.num_cells

    def __repr__(self) -> str:
        return (
            f"ResultStore(shape={self.shape}, cells={self.num_cells}, "
            f"distinct={self.distinct_count})"
        )
