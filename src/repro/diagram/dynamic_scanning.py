"""Algorithm 7 — the scanning algorithm for the dynamic skyline diagram.

Crossing a subcell boundary at grid value ``v`` flips the mapped-space order
``|a - q|`` vs ``|b - q|`` only for the pairs whose bisector lies at ``v``
(point lines flip nothing: ``|a - q|`` vs ``|b - q|`` orderings change only
at bisectors).  Hence the new subcell's dynamic skyline is contained in the
previous subcell's result plus the boundary's *contributing* points, and it
suffices to re-skyline that small candidate set:

``Sky(SC_{i,j}) = DynSky(Sky(SC_{i-1,j}) ∪ contributors(boundary i))``

The sweep computes ``Sky(SC_{0,0})`` from scratch, then walks the first
column bottom-up and each row left-to-right, re-skylining a candidate set
whose size tracks the skyline size rather than n.  Results are interned
directly into the array-backed :class:`~repro.diagram.store.ResultStore`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.diagram.base import DynamicDiagram
from repro.diagram.store import ResultStore
from repro.errors import BudgetExceededError
from repro.geometry.point import Dataset, ensure_dataset
from repro.geometry.subcell import SubcellGrid
from repro.resilience import (
    BudgetMeter,
    BuildBudget,
    PartialDiagram,
    as_meter,
)
from repro.skyline.queries import dynamic_skyline, dynamic_skyline_among


def dynamic_scanning(
    points: Dataset | Sequence[Sequence[float]],
    budget: BuildBudget | BudgetMeter | None = None,
) -> DynamicDiagram:
    """Build the dynamic skyline diagram with Algorithm 7.

    ``budget`` bounds the sweep cooperatively (one checkpoint per subcell
    row); on exhaustion the raised
    :class:`~repro.errors.BudgetExceededError` carries a
    :class:`~repro.resilience.PartialDiagram` over the bottom rows
    completed so far.

    >>> diagram = dynamic_scanning([(0, 0), (10, 10)])
    >>> diagram.query((4, 6))
    (0, 1)
    """
    dataset = ensure_dataset(points)
    meter = as_meter(budget)
    subcells = SubcellGrid(dataset)
    sx, sy = subcells.shape
    table: list[tuple[int, ...]] = []
    intern: dict[tuple[int, ...], int] = {}

    def intern_id(result: tuple[int, ...]) -> int:
        rid = intern.get(result)
        if rid is None:
            rid = len(table)
            table.append(result)
            intern[result] = rid
        return rid

    rows = np.empty((sy, sx), dtype=np.int32)  # row j contiguous; .T at end
    column_start = dynamic_skyline(dataset, subcells.representative((0, 0)))
    for j in range(sy):
        if j > 0:
            # Cross the horizontal boundary below row j.
            candidates = _merge_candidates(
                column_start, subcells.boundary_contributors(1, j)
            )
            column_start = dynamic_skyline_among(
                dataset, candidates, subcells.representative((0, j))
            )
        row = [0] * sx
        row[0] = intern_id(column_start)
        previous = column_start
        for i in range(1, sx):
            candidates = _merge_candidates(
                previous, subcells.boundary_contributors(0, i)
            )
            previous = dynamic_skyline_among(
                dataset, candidates, subcells.representative((i, j))
            )
            row[i] = intern_id(previous)
        rows[j] = row
        if meter is not None:
            try:
                meter.checkpoint(advance=sx, distinct=len(table))
            except BudgetExceededError as exc:
                if exc.partial is None:
                    exc.partial = PartialDiagram(
                        subcells,
                        {jj: rows[jj].copy() for jj in range(j + 1)},
                        list(table),
                        boundary_exact=False,
                    )
                raise
    store = ResultStore((sx, sy), np.ascontiguousarray(rows.T), table)
    return DynamicDiagram(subcells, store, algorithm="scanning")


def _merge_candidates(
    sky: tuple[int, ...], contributors: tuple[int, ...]
) -> tuple[int, ...]:
    """Union of two sorted id tuples (both deduplicated)."""
    merged: list[int] = []
    ia = ib = 0
    na, nb = len(sky), len(contributors)
    while ia < na and ib < nb:
        a, b = sky[ia], contributors[ib]
        if a < b:
            merged.append(a)
            ia += 1
        elif b < a:
            merged.append(b)
            ib += 1
        else:
            merged.append(a)
            ia += 1
            ib += 1
    merged.extend(sky[ia:])
    merged.extend(contributors[ib:])
    return tuple(merged)
