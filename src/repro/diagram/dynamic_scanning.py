"""Algorithm 7 — the scanning algorithm for the dynamic skyline diagram.

Crossing a subcell boundary at grid value ``v`` flips the mapped-space order
``|a - q|`` vs ``|b - q|`` only for the pairs whose bisector lies at ``v``
(point lines flip nothing: ``|a - q|`` vs ``|b - q|`` orderings change only
at bisectors).  Hence the new subcell's dynamic skyline is contained in the
previous subcell's result plus the boundary's *contributing* points, and it
suffices to re-skyline that small candidate set:

``Sky(SC_{i,j}) = DynSky(Sky(SC_{i-1,j}) ∪ contributors(boundary i))``

The sweep computes ``Sky(SC_{0,0})`` from scratch, then walks the first
column bottom-up and each row left-to-right, re-skylining a candidate set
whose size tracks the skyline size rather than n.  Results are interned
directly into the array-backed :class:`~repro.diagram.store.ResultStore`.

Construction runs through the shared
:class:`~repro.diagram.pipeline.BuildContext` pipeline.  Rows are
independent given their entering state — a chunk worker seeds its first
row's column start with one from-scratch dynamic skyline at the row's
representative point (exactly what the incremental boundary crossing would
have produced) — so the sweep shards into ``[lo, hi)`` row chunks whose
relabeled results merge byte-identically with the serial engine's.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.diagram.base import DynamicDiagram
from repro.diagram.pipeline import (
    BuildContext,
    BuildOptions,
    Interner,
    merge_chunk_tables,
    relabel_scan_order,
)
from repro.diagram.store import ResultStore
from repro.errors import BudgetExceededError
from repro.geometry.point import Dataset, ensure_dataset
from repro.geometry.subcell import SubcellGrid
from repro.resilience import BudgetMeter, BuildBudget, PartialDiagram
from repro.skyline.queries import dynamic_skyline, dynamic_skyline_among


def _scan_dynamic_rows(
    dataset: Dataset,
    subcells: SubcellGrid,
    lo: int,
    hi: int,
    interner: Interner,
    rows: np.ndarray,
    base: int,
    on_row=None,
) -> None:
    """The boundary-crossing row kernel: sweep rows ``lo`` to ``hi - 1``.

    Row ``lo``'s column start is computed from scratch (one dynamic
    skyline at the row's representative), so any row range runs
    independently of the rows below it.  Row ``j`` is written to
    ``rows[j - base]``; ``on_row(j)`` runs after each completed row.
    """
    sx, _ = subcells.shape
    intern_id = interner.intern
    column_start = dynamic_skyline(dataset, subcells.representative((0, lo)))
    for j in range(lo, hi):
        if j > lo:
            # Cross the horizontal boundary below row j.
            candidates = _merge_candidates(
                column_start, subcells.boundary_contributors(1, j)
            )
            column_start = dynamic_skyline_among(
                dataset, candidates, subcells.representative((0, j))
            )
        row = [0] * sx
        row[0] = intern_id(column_start)
        previous = column_start
        for i in range(1, sx):
            candidates = _merge_candidates(
                previous, subcells.boundary_contributors(0, i)
            )
            previous = dynamic_skyline_among(
                dataset, candidates, subcells.representative((i, j))
            )
            row[i] = intern_id(previous)
        rows[j - base] = row
        if on_row is not None:
            on_row(j)


def _dynamic_chunk_job(job):
    """One row-chunk worker: picklable, sees only points + a row range."""
    points, lo, hi = job
    dataset = Dataset(points)
    subcells = SubcellGrid(dataset)
    sx, _ = subcells.shape
    interner = Interner()
    local = np.empty((hi - lo, sx), dtype=np.int32)
    _scan_dynamic_rows(dataset, subcells, lo, hi, interner, local, lo)
    return relabel_scan_order(local, interner.table, flip=False)


def dynamic_scanning(
    points: Dataset | Sequence[Sequence[float]],
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> DynamicDiagram:
    """Build the dynamic skyline diagram with Algorithm 7.

    ``budget`` bounds the sweep cooperatively (one checkpoint per subcell
    row); on exhaustion the raised
    :class:`~repro.errors.BudgetExceededError` carries a
    :class:`~repro.resilience.PartialDiagram` over the bottom rows
    completed so far.  ``build_options`` selects the row executor and
    chunking; sharded builds produce byte-identical stores but carry no
    partial on interruption.

    >>> diagram = dynamic_scanning([(0, 0), (10, 10)])
    >>> diagram.query((4, 6))
    (0, 1)
    """
    dataset = ensure_dataset(points)
    ctx = BuildContext(
        budget, build_options, algorithm="scanning", kind="dynamic"
    )
    with ctx.phase("rank_space"):
        subcells = SubcellGrid(dataset)
        sx, sy = subcells.shape
    chunks = ctx.row_chunks(sy)
    rows = np.empty((sy, sx), dtype=np.int32)  # row j contiguous; .T at end
    if len(chunks) == 1:
        interner = Interner()

        def on_row(j: int) -> None:
            try:
                ctx.checkpoint(advance=sx, distinct=len(interner))
            except BudgetExceededError as exc:
                if exc.partial is None:
                    exc.partial = PartialDiagram(
                        subcells,
                        {jj: rows[jj].copy() for jj in range(j + 1)},
                        list(interner.table),
                        boundary_exact=False,
                    )
                raise

        with ctx.phase("row_scan"):
            _scan_dynamic_rows(
                dataset, subcells, 0, sy, interner, rows, 0, on_row
            )
            ctx.count_rows(sy)
        with ctx.phase("intern"):
            ctx.checkpoint(distinct=len(interner))
            table = interner.table
    else:
        pts = dataset.points
        jobs = [(pts, lo, hi) for lo, hi in chunks]

        def on_chunk(job, result) -> None:
            _, lo, hi = job
            ctx.count_rows(hi - lo)
            for _ in range(hi - lo):
                ctx.checkpoint(advance=sx)

        with ctx.phase("row_scan"):
            parts = ctx.executor.run(_dynamic_chunk_job, jobs, on_chunk)
        with ctx.phase("intern"):
            table = merge_chunk_tables(chunks, parts, rows)
            ctx.checkpoint(distinct=len(table))
    with ctx.phase("assemble"):
        store = ResultStore((sx, sy), np.ascontiguousarray(rows.T), table)
        diagram = DynamicDiagram(subcells, store, algorithm="scanning")
    return ctx.finish(diagram)


def _merge_candidates(
    sky: tuple[int, ...], contributors: tuple[int, ...]
) -> tuple[int, ...]:
    """Union of two sorted id tuples (both deduplicated)."""
    merged: list[int] = []
    ia = ib = 0
    na, nb = len(sky), len(contributors)
    while ia < na and ib < nb:
        a, b = sky[ia], contributors[ib]
        if a < b:
            merged.append(a)
            ia += 1
        elif b < a:
            merged.append(b)
            ib += 1
        else:
            merged.append(a)
            ia += 1
            ib += 1
    merged.extend(sky[ia:])
    merged.extend(contributors[ib:])
    return tuple(merged)
