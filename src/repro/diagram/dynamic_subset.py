"""Algorithm 6 — the subset algorithm for the dynamic skyline diagram.

The dynamic skyline of any query is a subset of its global skyline
(Sec. III), and the global skyline is constant within each coarse skyline
cell.  The subset algorithm therefore first builds the global diagram on
the coarse grid (with any quadrant construction algorithm), then computes
each subcell's dynamic skyline only among its containing cell's global
result — on average O(log n) candidates instead of n.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.diagram.global_diagram import global_diagram
from repro.geometry.point import Dataset, ensure_dataset
from repro.geometry.subcell import SubcellGrid
from repro.skyline.queries import dynamic_skyline_among


def dynamic_subset(
    points: Dataset | Sequence[Sequence[float]],
    quadrant_algorithm: Callable[[Dataset], SkylineDiagram] | None = None,
) -> DynamicDiagram:
    """Build the dynamic skyline diagram with Algorithm 6.

    ``quadrant_algorithm`` selects the construction used for the underlying
    global diagram (defaults to scanning).

    >>> diagram = dynamic_subset([(0, 0), (10, 10)])
    >>> diagram.query((4, 6))
    (0, 1)
    """
    dataset = ensure_dataset(points)
    subcells = SubcellGrid(dataset)
    coarse = global_diagram(dataset, quadrant_algorithm)
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    for subcell in subcells.subcells():
        candidates = coarse.result_at(subcells.containing_cell(subcell))
        representative = subcells.representative(subcell)
        results[subcell] = dynamic_skyline_among(
            dataset, candidates, representative
        )
    return DynamicDiagram(subcells, results, algorithm="subset")
