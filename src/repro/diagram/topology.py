"""Region topology: the adjacency structure of a skyline diagram.

A Voronoi diagram is more than a lookup table — its dual (the Delaunay
triangulation) drives navigation and incremental algorithms.  The skyline
diagram has the same dual view: polyominos that share a boundary edge form
the *region adjacency graph*, where every edge is one "result change"
event.  This module builds that graph (networkx) and uses it for

* counting how different two query locations' results can be (shortest
  crossing path),
* enumerating the neighbours of a region (all results reachable with an
  arbitrarily small query perturbation).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.diagram.base import DynamicDiagram, SkylineDiagram
from repro.diagram.merge import cell_labels
from repro.errors import QueryError


def region_adjacency(
    diagram: SkylineDiagram | DynamicDiagram,
) -> "nx.Graph":
    """Build the region adjacency graph of a 2-D diagram.

    Nodes are polyomino ids carrying their ``result``; edges connect
    side-adjacent polyominos and carry ``boundary`` — the number of shared
    cell edges (a proxy for how likely a random query motion crosses the
    pair's border).

    >>> from repro.diagram import quadrant_scanning
    >>> graph = region_adjacency(quadrant_scanning([(1, 1)]))
    >>> graph.number_of_nodes(), graph.number_of_edges()
    (2, 1)
    """
    shape = diagram.grid.shape
    if len(shape) != 2:
        raise QueryError("region adjacency is defined for 2-D diagrams")
    polyominos = diagram.polyominos()
    labels = cell_labels(polyominos)
    graph = nx.Graph()
    for poly in polyominos:
        graph.add_node(poly.ident, result=poly.result, size=poly.size)
    sx, sy = shape
    for i in range(sx):
        for j in range(sy):
            here = labels[(i, j)]
            for neighbour in ((i + 1, j), (i, j + 1)):
                other = labels.get(neighbour)
                if other is None or other == here:
                    continue
                if graph.has_edge(here, other):
                    graph[here][other]["boundary"] += 1
                else:
                    graph.add_edge(here, other, boundary=1)
    return graph


def region_of(
    diagram: SkylineDiagram | DynamicDiagram, query: Sequence[float]
) -> int:
    """Polyomino id containing a query point."""
    labels = cell_labels(diagram.polyominos())
    return labels[diagram.grid.locate(query)]


def crossing_distance(
    diagram: SkylineDiagram | DynamicDiagram,
    start: Sequence[float],
    end: Sequence[float],
    graph: "nx.Graph | None" = None,
) -> int:
    """Minimum number of result changes between two query locations.

    This is the shortest path in the region adjacency graph — a lower
    bound on (and usually smaller than) the number of changes along the
    straight segment, since a clever route can dodge slivers.

    >>> from repro.diagram import quadrant_scanning
    >>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
    >>> crossing_distance(diagram, (0, 0), (100, 100))
    3
    """
    if graph is None:
        graph = region_adjacency(diagram)
    source = region_of(diagram, start)
    target = region_of(diagram, end)
    return nx.shortest_path_length(graph, source, target)


def neighbouring_results(
    diagram: SkylineDiagram | DynamicDiagram,
    query: Sequence[float],
    graph: "nx.Graph | None" = None,
) -> list[tuple[int, ...]]:
    """Results adjacent to the query's region (one boundary crossing away).

    Useful for sensitivity analysis: every answer a small perturbation of
    the query could produce.
    """
    if graph is None:
        graph = region_adjacency(diagram)
    region = region_of(diagram, query)
    return sorted(
        graph.nodes[other]["result"] for other in graph.neighbors(region)
    )
