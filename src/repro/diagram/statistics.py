"""Descriptive statistics of a skyline diagram.

The paper's complexity analyses bound the diagram's size by
``O(min(s, n)^2)`` cells and ``O(min(s, n)^2 * n)`` storage; this module
measures the actual structure — how many regions, how large their results,
how skewed the region sizes — which is what a capacity-planning user needs
and what experiment E3 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.diagram.base import DynamicDiagram, SkylineDiagram


@dataclass(frozen=True)
class DiagramStatistics:
    """Summary of one diagram's structure.

    Attributes mirror the quantities of the paper's analyses: cells (the
    grid), regions (the output), result sizes (the per-cell storage
    factor), and the implied storage estimate in stored point ids.
    """

    num_points: int
    num_cells: int
    num_regions: int
    min_result_size: int
    mean_result_size: float
    max_result_size: int
    mean_region_size: float
    max_region_size: int
    stored_ids: int

    @property
    def compression_ratio(self) -> float:
        """Cells per region — how much merging shrinks the diagram."""
        return self.num_cells / self.num_regions

    def as_dict(self) -> dict:
        """Plain-dict view (handy for logging and tables)."""
        return {
            "num_points": self.num_points,
            "num_cells": self.num_cells,
            "num_regions": self.num_regions,
            "min_result_size": self.min_result_size,
            "mean_result_size": self.mean_result_size,
            "max_result_size": self.max_result_size,
            "mean_region_size": self.mean_region_size,
            "max_region_size": self.max_region_size,
            "stored_ids": self.stored_ids,
            "compression_ratio": self.compression_ratio,
        }


def diagram_statistics(
    diagram: SkylineDiagram | DynamicDiagram,
) -> DiagramStatistics:
    """Measure a diagram's structure.

    >>> from repro.diagram import quadrant_scanning
    >>> stats = diagram_statistics(quadrant_scanning([(2, 8), (5, 4)]))
    >>> stats.num_cells, stats.num_regions
    (9, 4)
    >>> stats.max_result_size
    2
    """
    result_sizes = [len(result) for _, result in diagram.cells()]
    polyominos = diagram.polyominos()
    region_sizes = [poly.size for poly in polyominos]
    return DiagramStatistics(
        num_points=len(diagram.grid.dataset),
        num_cells=len(result_sizes),
        num_regions=len(polyominos),
        min_result_size=min(result_sizes),
        mean_result_size=sum(result_sizes) / len(result_sizes),
        max_result_size=max(result_sizes),
        mean_region_size=sum(region_sizes) / len(region_sizes),
        max_region_size=max(region_sizes),
        stored_ids=sum(len(poly.result) for poly in polyominos),
    )
