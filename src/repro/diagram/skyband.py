"""k-skyband diagrams — the k-th order Voronoi counterpart.

The paper's analogy runs deeper than k = 1: just as the k-th order Voronoi
diagram captures regions of constant kNN result, a *k-skyband diagram*
captures regions of constant k-skyband (points dominated by fewer than k
others among the quadrant's candidates).  The skyline-cell argument is
unchanged — no point lies inside a cell, so dominator counts are constant
per cell — and two constructions carry over directly:

* ``skyband_baseline``: count dominators per cell from scratch, the
  Algorithm 1 analogue;
* ``skyband_sweep``: the Algorithm 2 analogue over the *full* dominance
  graph with exposure threshold k — crossing a grid line decrements the
  dominated points' counts, and a point surfaces exactly when its count
  drops below k.

This is an extension beyond the paper (its future-work direction implied
by the k-th order Voronoi analogy of Sec. I), built from the same
substrates and validated against brute force in the test suite.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.diagram.base import SkylineDiagram
from repro.diagram.pipeline import BuildContext, BuildOptions
from repro.dsg.graph import DirectedSkylineGraph
from repro.errors import AuditError, BudgetExceededError, DimensionalityError
from repro.geometry.dominance import dominates
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset
from repro.resilience import BudgetMeter, BuildBudget, PartialDiagram


class SkybandDiagram(SkylineDiagram):
    """A skyline diagram whose cell results are k-skybands."""

    __slots__ = ("k",)

    def __init__(self, grid, results, k: int, algorithm: str) -> None:
        super().__init__(
            grid, results, kind="quadrant", mask=0, algorithm=algorithm
        )
        self.k = k

    def _audit_semantics(self, level: str, sample_stride: int) -> None:
        # Theorem 1's recurrence holds for k = 1 only; spot-check cells by
        # recomputing the k-skyband from scratch instead (sparser sample —
        # each recomputation is O(n^2), not a multiset merge).
        from repro.skyline.queries import quadrant_skyband

        grid = self.grid
        stride = max(1, sample_stride)
        if level == "full":
            stride = 1
        elif level == "structure":
            stride *= 7
        for index, cell in enumerate(grid.cells()):
            if stride > 1 and index % stride:
                continue
            expected = quadrant_skyband(
                grid.dataset, grid.representative(cell), self.k
            )
            if self.result_at(cell) != expected:
                raise AuditError(
                    f"cell {cell}: stored {self.result_at(cell)}, "
                    f"recomputed {self.k}-skyband is {expected}"
                )

    def __repr__(self) -> str:
        return (
            f"SkybandDiagram(k={self.k}, algorithm={self.algorithm!r}, "
            f"n={len(self.grid.dataset)}, cells={self.grid.num_cells})"
        )


def _validate(dataset: Dataset, k: int) -> None:
    if dataset.dim != 2:
        raise DimensionalityError("skyband diagrams are implemented in 2-D")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")


def skyband_baseline(
    points: Dataset | Sequence[Sequence[float]],
    k: int,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkybandDiagram:
    """Per-cell dominator counting (the Algorithm 1 analogue), O(n^4).

    >>> diagram = skyband_baseline([(1, 1), (2, 2), (3, 3)], k=2)
    >>> diagram.result_at((0, 0))
    (0, 1)
    """
    dataset = ensure_dataset(points)
    _validate(dataset, k)
    # Column-major with per-cell recomputation: inherently sequential, so
    # the context pins the executor to serial regardless of the options.
    ctx = BuildContext(
        budget,
        build_options,
        algorithm="baseline",
        kind="skyband",
        serial_only=True,
    )
    with ctx.phase("rank_space"):
        grid = Grid(dataset)
        sx, sy = grid.shape
    pts = dataset.points
    ranks = grid.ranks
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    with ctx.phase("row_scan"):
        for i in range(sx):
            column = [pid for pid in range(len(pts)) if ranks[pid][0] > i]
            for j in range(sy):
                candidates = [pid for pid in column if ranks[pid][1] > j]
                band: list[int] = []
                for a in candidates:
                    dominators = sum(
                        1 for b in candidates if dominates(pts[b], pts[a])
                    )
                    if dominators < k:
                        band.append(a)
                results[(i, j)] = tuple(band)
            # Column-major fill: no whole completed query rows to salvage.
            ctx.checkpoint(advance=sy)
        ctx.count_rows(sx)
    with ctx.phase("assemble"):
        diagram = SkybandDiagram(grid, results, k=k, algorithm="baseline")
    return ctx.finish(diagram)


def skyband_sweep(
    points: Dataset | Sequence[Sequence[float]],
    k: int,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkybandDiagram:
    """Incremental dominator-count sweep (the Algorithm 2 analogue).

    Uses the full dominance graph with exposure threshold k: one counter
    update per dominance pair per crossed grid line, so the work tracks
    the number of dominance pairs exactly as the paper's DSG construction
    tracks its links.

    ``budget`` checkpoints once per completed row; the
    :class:`~repro.errors.BudgetExceededError` raised on exhaustion
    carries a partial over the bottom rows swept so far (raw result
    tuples — the sweep has no interned table).

    >>> diagram = skyband_sweep([(1, 1), (2, 2), (3, 3)], k=2)
    >>> diagram.result_at((1, 0))
    (1, 2)
    """
    dataset = ensure_dataset(points)
    _validate(dataset, k)
    # The sweep mutates one shared dominance graph row to row — a
    # sequential dependency — so the executor is pinned to serial.
    ctx = BuildContext(
        budget,
        build_options,
        algorithm="sweep",
        kind="skyband",
        serial_only=True,
    )
    with ctx.phase("rank_space"):
        grid = Grid(dataset)
        dsg = DirectedSkylineGraph(dataset, links="full", threshold=k)
        sx, sy = grid.shape
        on_vline: list[list[int]] = [[] for _ in range(sx)]
        on_hline: list[list[int]] = [[] for _ in range(sy)]
        for pid, (rx, ry) in enumerate(grid.ranks):
            on_vline[rx].append(pid)
            on_hline[ry].append(pid)

    results: dict[tuple[int, int], tuple[int, ...]] = {}
    with ctx.phase("row_scan"):
        row_band = set(dsg.skyline())
        base = dsg.checkpoint()
        for j in range(sy):
            band = set(row_band)
            row_checkpoint = dsg.checkpoint()
            for i in range(sx):
                results[(i, j)] = tuple(sorted(band))
                if i + 1 < sx:
                    crossing = on_vline[i + 1]
                    exposed = dsg.remove_batch(crossing)
                    band.difference_update(crossing)
                    band.update(exposed)
            dsg.rollback(row_checkpoint)
            try:
                ctx.checkpoint(advance=sx)
            except BudgetExceededError as exc:
                if exc.partial is None:
                    exc.partial = PartialDiagram(
                        grid,
                        {
                            jj: [results[(ii, jj)] for ii in range(sx)]
                            for jj in range(j + 1)
                        },
                        None,
                        boundary_exact=True,
                    )
                raise
            if j + 1 < sy:
                crossing = on_hline[j + 1]
                exposed = dsg.remove_batch(crossing)
                row_band.difference_update(crossing)
                row_band.update(exposed)
        dsg.rollback(base)
        ctx.count_rows(sy)
    with ctx.phase("assemble"):
        diagram = SkybandDiagram(grid, results, k=k, algorithm="sweep")
    return ctx.finish(diagram)
