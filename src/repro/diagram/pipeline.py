"""The unified construction pipeline shared by every diagram builder.

The paper's constructions (Algorithms 3, 5, 7 and their extensions) share
one shape — build the rank-space grid, scan rows, intern results, assemble
the store-backed diagram — and, before this module, each constructor also
re-implemented its own budget-checkpoint and result-interning plumbing.
:class:`BuildContext` centralizes that plumbing and decomposes every build
into named *phases*:

``rank_space``
    coordinate compression: the vertex :class:`~repro.geometry.grid.Grid`
    (or :class:`~repro.geometry.subcell.SubcellGrid`) and any per-row
    precomputation derived from it;
``row_scan``
    the per-row kernels (the only phase a :class:`RowExecutor` can shard);
``intern``
    interning results into the shared table (for sharded builds, merging
    the per-chunk tables into one canonical
    :class:`~repro.diagram.store.ResultStore` table);
``assemble``
    building the store and the diagram object.

Each phase is timed into a :class:`BuildReport` attached to the finished
diagram (``diagram.build_report``) and surfaced through
``SkylineDatabase.health()``, ``query_annotated`` and the benchmark
harness.

Row executors
-------------
The journal version of the paper (arXiv:1812.01663) emphasizes that the
scanning sweeps are row-independent: any scan row can be recomputed from
the dataset alone, so the row range shards into chunks that build
concurrently.  The :class:`RowExecutor` contract is deliberately narrow:

* a *job* is a picklable tuple (the dataset's points plus a ``[lo, hi)``
  row range) and the *worker* is a module-level function, so jobs can
  cross a process boundary;
* each worker returns its chunk's rows relabeled into **scan-order-first
  occurrence** ids plus the matching table slice
  (:func:`relabel_scan_order`), so merging chunks in global scan order
  reproduces, byte for byte, the id grid and interned table the serial
  engine would have produced — parallelism never changes the artifact,
  which is what lets the differential verifier compare executors by
  content fingerprint;
* budget checkpoints run **parent-side** as chunks complete (workers
  never observe the meter or the fault-injection hook), so cancellation
  and budget accounting stay deterministic per row: serial and sharded
  builds charge the same number of checkpoints and cells.

Three implementations are registered in :data:`EXECUTOR_REGISTRY`:
:class:`SerialRowExecutor` (in-process, also used with ``chunk_rows`` to
exercise the shard/seed/merge machinery deterministically),
:class:`ProcessRowExecutor` (a ``concurrent.futures`` process pool,
``fork`` start method where available) and :class:`VectorizedRowExecutor`
(the numpy sparse-event engine).  Budget-interrupted sharded builds carry
no :class:`~repro.resilience.PartialDiagram` — chunk results are not a
serving-ordered row prefix — so the degradation ladder falls through to
from-scratch evaluation instead.

The vectorized executor is a *capability marker* rather than a job
runner: a constructor that implements a sparse array kernel declares
``vector_capable=True`` to its :class:`BuildContext` and, when the
resolved executor is vectorized, runs that kernel in place of the
per-cell scan.  Constructors without such a kernel (the dynamic subcell
scan, the column-major high-dimensional builders) silently resolve
``executor="vectorized"`` to the serial executor, and the
:class:`BuildReport` records the executor that actually ran — honesty
over aspiration.  Budget checkpoints for the vectorized engine run per
*row block* (``chunk_rows`` rows, default :data:`VECTOR_BLOCK_ROWS`)
instead of per row: coarser granularity is the documented price of
taking the Python interpreter out of the inner loop, and the completed
row suffix still ships as an exact partial on exhaustion.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.diagram.store import BACKENDS
from repro.errors import BudgetExceededError
from repro.resilience import BudgetMeter, BuildBudget, as_meter

__all__ = [
    "BuildContext",
    "BuildOptions",
    "BuildReport",
    "EXECUTORS",
    "EXECUTOR_REGISTRY",
    "Interner",
    "PHASES",
    "ProcessRowExecutor",
    "SerialRowExecutor",
    "VECTOR_BLOCK_ROWS",
    "VectorizedRowExecutor",
    "relabel_scan_order",
]

PHASES = ("rank_space", "row_scan", "intern", "assemble")

EXECUTORS = ("serial", "process", "vectorized")

#: Default rows per budget-checkpoint block for the vectorized executor
#: (overridden by ``BuildOptions.chunk_rows``).
VECTOR_BLOCK_ROWS = 256


@dataclass(frozen=True)
class BuildOptions:
    """How one diagram construction should execute.

    Parameters
    ----------
    executor:
        ``"serial"`` (default), ``"process"`` or ``"vectorized"``.  Only
        the row-independent scanning constructions shard their
        ``row_scan`` phase, and only constructions with a sparse array
        kernel honour ``"vectorized"``; every other builder (skyband
        sweep, high-dimensional scan, maintenance, the dynamic subcell
        scan) accepts the options for the phases/telemetry and runs
        serially regardless — the attached ``BuildReport`` names the
        executor that actually ran.
    workers:
        Process-pool size for the ``process`` executor (default: the CPU
        count).
    chunk_rows:
        Rows per shard.  Defaults to an even split over the workers; with
        the serial executor, setting this forces in-process sharding —
        the cheapest way to exercise the seed/relabel/merge path.  The
        vectorized executor uses it as the rows-per-budget-checkpoint
        block (default :data:`VECTOR_BLOCK_ROWS`).
    telemetry:
        Optional sink called as ``telemetry(phase_name, payload)`` after
        every phase, with ``payload`` carrying at least ``seconds``.
    backend:
        Grid backend for the finished store: ``"dense"`` (default),
        ``"rle"`` (run-length compressed, content-identical to dense) or
        ``"quad"`` (quadtree-merged, approximate within ``quad_error``).
        Constructors that assemble a dense store are converted in
        ``BuildContext.finish``; the vectorized quadrant executor writes
        RLE runs natively, skipping the dense grid entirely.
    quad_error:
        Mismatched-cell fraction budget for ``backend="quad"``.
    """

    executor: str = "serial"
    workers: int | None = None
    chunk_rows: int | None = None
    telemetry: Callable[[str, dict], None] | None = None
    backend: str = "dense"
    quad_error: float = 0.05

    def __post_init__(self) -> None:
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(
                f"chunk_rows must be >= 1, got {self.chunk_rows}"
            )
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if not 0.0 <= self.quad_error < 1.0:
            raise ValueError(
                f"quad_error must be in [0, 1), got {self.quad_error}"
            )


@dataclass
class BuildReport:
    """Per-build telemetry attached to every finished diagram.

    ``phases`` maps phase name to wall-clock seconds; ``rows_scanned``
    counts completed scan rows (grid rows for the 2-D scans, columns or
    flat chunks for the column-major builders); ``checkpoints`` is the
    budget meter's checkpoint count when a meter ran (0 otherwise).
    """

    algorithm: str = "unknown"
    kind: str = "quadrant"
    executor: str = "serial"
    workers: int = 1
    phases: dict[str, float] = field(default_factory=dict)
    rows_scanned: int = 0
    cells: int = 0
    distinct_results: int = 0
    checkpoints: int = 0
    elapsed: float = 0.0
    backend: str = "dense"
    backend_fallback: str | None = None
    store_nbytes: int = 0

    def as_dict(self) -> dict:
        """A JSON-ready copy (health endpoints, benchmark records)."""
        return {
            "algorithm": self.algorithm,
            "kind": self.kind,
            "executor": self.executor,
            "workers": self.workers,
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
            "rows_scanned": self.rows_scanned,
            "cells": self.cells,
            "distinct_results": self.distinct_results,
            "checkpoints": self.checkpoints,
            "elapsed": round(self.elapsed, 6),
            "backend": self.backend,
            "backend_fallback": self.backend_fallback,
            "store_nbytes": self.store_nbytes,
        }


class Interner:
    """An interned result-tuple table: ``table[intern(result)] is result``.

    The one dict-and-list idiom every constructor used to hand-roll.
    ``seed_empty`` pre-seeds id 0 with the empty tuple (the quadrant
    engines' off-grid sentinel).
    """

    __slots__ = ("table", "_ids")

    def __init__(self, seed_empty: bool = False) -> None:
        self.table: list[tuple[int, ...]] = [()] if seed_empty else []
        self._ids: dict[tuple[int, ...], int] = {(): 0} if seed_empty else {}

    def intern(self, result: tuple[int, ...]) -> int:
        rid = self._ids.get(result)
        if rid is None:
            rid = len(self.table)
            self.table.append(result)
            self._ids[result] = rid
        return rid

    def __len__(self) -> int:
        return len(self.table)


class SerialRowExecutor:
    """Run row-chunk jobs in-process, in job order."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)

    def run(self, worker, jobs: Sequence, on_chunk=None) -> list:
        out = []
        for job in jobs:
            result = worker(job)
            if on_chunk is not None:
                on_chunk(job, result)
            out.append(result)
        return out


class ProcessRowExecutor:
    """Run row-chunk jobs on a process pool; results return in job order.

    ``on_chunk`` (the parent-side budget checkpoint) fires as chunks
    complete; a raised :class:`~repro.errors.BudgetExceededError` cancels
    the not-yet-started chunks and propagates.
    """

    name = "process"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = max(1, workers or os.cpu_count() or 1)

    def run(self, worker, jobs: Sequence, on_chunk=None) -> list:
        from concurrent.futures import ProcessPoolExecutor, as_completed
        import multiprocessing

        if "fork" in multiprocessing.get_all_start_methods():
            mp_context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX fallback
            mp_context = multiprocessing.get_context()
        results: list = [None] * len(jobs)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(jobs)), mp_context=mp_context
        ) as pool:
            futures = {
                pool.submit(worker, job): index
                for index, job in enumerate(jobs)
            }
            try:
                for future in as_completed(futures):
                    index = futures[future]
                    results[index] = future.result()
                    if on_chunk is not None:
                        on_chunk(jobs[index], results[index])
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        return results


class VectorizedRowExecutor:
    """Marker executor for the numpy sparse-event row kernels.

    The vectorized engines do not fan row chunks out to workers — they
    replace the per-cell Python loop with sparse transition events and
    whole-grid array materialization — so ``run`` simply executes jobs
    in order (the serial contract).  Its value is the *name*: a
    ``BuildContext`` resolving to this executor tells a
    ``vector_capable`` constructor to take its array path, and the
    ``BuildReport`` then records ``executor="vectorized"``.
    """

    name = "vectorized"

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, workers)

    def run(self, worker, jobs: Sequence, on_chunk=None) -> list:
        out = []
        for job in jobs:
            result = worker(job)
            if on_chunk is not None:
                on_chunk(job, result)
            out.append(result)
        return out


#: The row-executor registry: ``BuildOptions.executor`` name -> class.
#: :data:`EXECUTORS` (the validated option values) is its key view.
EXECUTOR_REGISTRY = {
    "serial": SerialRowExecutor,
    "process": ProcessRowExecutor,
    "vectorized": VectorizedRowExecutor,
}


def _make_executor(options: BuildOptions, vector_capable: bool = False):
    if options.executor == "process":
        return ProcessRowExecutor(options.workers)
    if options.executor == "vectorized" and vector_capable:
        return VectorizedRowExecutor(options.workers or 1)
    return SerialRowExecutor(options.workers or 1)


class BuildContext:
    """Shared state for one diagram construction.

    Bundles the budget meter (cooperative cancellation), the clock, the
    resolved :class:`RowExecutor`, the telemetry sink and the growing
    :class:`BuildReport`.  Constructors keep accepting the historical
    plain ``budget=`` argument — the context normalizes it through
    :func:`~repro.resilience.as_meter`, so passing a shared
    :class:`~repro.resilience.BudgetMeter` (the global diagram's 2^d
    sub-builds) works unchanged.

    ``serial_only`` pins the executor to serial for builders whose scan
    has a sequential dependency; the options' phases/telemetry still
    apply.  ``vector_capable`` declares that the constructor implements
    a sparse array kernel: only then does ``executor="vectorized"``
    resolve to a :class:`VectorizedRowExecutor` — otherwise it degrades
    to serial and the report says so.
    """

    def __init__(
        self,
        budget: BuildBudget | BudgetMeter | None = None,
        options: BuildOptions | None = None,
        clock: Callable[[], float] | None = None,
        algorithm: str = "unknown",
        kind: str = "quadrant",
        serial_only: bool = False,
        vector_capable: bool = False,
    ) -> None:
        self.options = options if options is not None else BuildOptions()
        self.meter = as_meter(budget, clock)
        self._clock = clock if clock is not None else time.monotonic
        self._started = self._clock()
        self._cancelled: str | None = None
        if serial_only:
            self.executor = SerialRowExecutor()
        else:
            self.executor = _make_executor(self.options, vector_capable)
        self.report = BuildReport(
            algorithm=algorithm,
            kind=kind,
            executor=self.executor.name,
            workers=self.executor.workers,
        )

    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str):
        """Time a named phase into the report (and the telemetry sink)."""
        start = self._clock()
        try:
            yield
        finally:
            seconds = max(0.0, self._clock() - start)
            self.report.phases[name] = (
                self.report.phases.get(name, 0.0) + seconds
            )
            sink = self.options.telemetry
            if sink is not None:
                sink(
                    name,
                    {
                        "seconds": seconds,
                        "algorithm": self.report.algorithm,
                        "kind": self.report.kind,
                        "executor": self.report.executor,
                    },
                )

    def checkpoint(self, advance: int = 0, distinct: int | None = None) -> None:
        """One cooperative budget checkpoint (no-op without a meter)."""
        if self._cancelled is not None:
            raise BudgetExceededError(
                f"build cancelled: {self._cancelled}",
                budget=self.meter.budget if self.meter is not None else None,
                progress=(
                    self.meter.progress() if self.meter is not None else None
                ),
            )
        if self.meter is not None:
            self.meter.checkpoint(advance=advance, distinct=distinct)

    def cancel(self, reason: str = "cancelled by caller") -> None:
        """Request cooperative cancellation at the next checkpoint."""
        self._cancelled = reason

    def count_rows(self, rows: int) -> None:
        self.report.rows_scanned += rows

    # ------------------------------------------------------------------
    def row_chunks(
        self, total_rows: int, topmost_first: bool = False
    ) -> list[tuple[int, int]]:
        """Shard ``[0, total_rows)`` into the executor's row chunks.

        Serial without ``chunk_rows`` returns the single full-range chunk
        (the unsharded fast path); the vectorized executor defaults to
        :data:`VECTOR_BLOCK_ROWS`-row budget-checkpoint blocks.
        ``topmost_first`` orders chunks for the quadrant scan, which
        consumes rows top-down.
        """
        chunk = self.options.chunk_rows
        if chunk is None:
            if self.executor.name == "serial":
                return [(0, total_rows)]
            if self.executor.name == "vectorized":
                chunk = VECTOR_BLOCK_ROWS
            else:
                chunk = -(-total_rows // self.executor.workers)  # ceil div
        chunk = max(1, chunk)
        chunks = [
            (lo, min(lo + chunk, total_rows))
            for lo in range(0, total_rows, chunk)
        ]
        if topmost_first:
            chunks.reverse()
        return chunks

    def finish(self, diagram):
        """Stamp final counters and attach the report to the diagram.

        The single backend-conversion choke point: any constructor that
        assembled a dense store while the options asked for a compressed
        or approximate one is converted here (timed as the ``backend``
        phase), so every build path honours ``BuildOptions(backend=...)``
        without per-constructor plumbing.  Paths that already produced
        the target backend (the vectorized executor's native RLE runs)
        pass through untouched.
        """
        store = getattr(diagram, "store", None)
        target = self.options.backend
        if (
            store is not None
            and target != "dense"
            and store.backend_kind != target
        ):
            with self.phase("backend"):
                diagram._store = store = store.convert(
                    target, max_error=self.options.quad_error
                )
            diagram._kernel = None
        self.report.elapsed = max(0.0, self._clock() - self._started)
        if store is not None:
            self.report.cells = store.num_cells
            self.report.distinct_results = store.distinct_count
            self.report.backend = store.backend_kind
            self.report.store_nbytes = store.nbytes
        if self.meter is not None:
            self.report.checkpoints = self.meter.checkpoints
        diagram.build_report = self.report
        return diagram


# ----------------------------------------------------------------------
# Deterministic chunk merging
# ----------------------------------------------------------------------
def relabel_scan_order(
    rows: np.ndarray,
    table: list[tuple[int, ...]],
    flip: bool = False,
) -> tuple[np.ndarray, list[tuple[int, ...]]]:
    """Renumber a chunk's local ids by first occurrence in scan order.

    ``rows`` is the chunk's ``(num_rows, row_width)`` id grid in row-index
    order; ``flip`` selects the quadrant scan order (descending rows,
    descending columns) over the dynamic one (ascending, ascending).
    Returns the relabeled grid plus the table restricted to the ids the
    grid actually uses, ordered by that first occurrence — seed-row-only
    entries are dropped, so merged stores keep the audit invariant that
    every table entry is referenced.

    Interning the returned tables chunk-by-chunk in global scan order
    reproduces the serial engine's table exactly: the serial intern order
    *is* first occurrence in scan order.
    """
    flat = (rows[::-1, ::-1] if flip else rows).reshape(-1)
    used, first, inverse = np.unique(
        flat, return_index=True, return_inverse=True
    )
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(used), dtype=np.int32)
    rank[order] = np.arange(len(used), dtype=np.int32)
    relabeled = rank[inverse].reshape(rows.shape)
    if flip:
        relabeled = relabeled[::-1, ::-1]
    ordered_table = [table[int(used[k])] for k in order.tolist()]
    return np.ascontiguousarray(relabeled), ordered_table


def merge_chunk_tables(
    chunks: Sequence[tuple[int, int]],
    parts: Sequence[tuple[np.ndarray, list[tuple[int, ...]]]],
    rows_out: np.ndarray,
) -> list[tuple[int, ...]]:
    """Merge relabeled chunk results into one grid and canonical table.

    ``chunks`` must be in global scan order (the order the serial engine
    would have visited them); each part's local ids are mapped through a
    shared :class:`Interner` and written into ``rows_out[lo:hi]``.
    """
    interner = Interner()
    for (lo, hi), (local_rows, local_table) in zip(chunks, parts):
        mapping = np.fromiter(
            (interner.intern(result) for result in local_table),
            dtype=np.int32,
            count=len(local_table),
        )
        rows_out[lo:hi] = mapping[local_rows]
    return interner.table
