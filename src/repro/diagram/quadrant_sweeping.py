"""Algorithm 4 — the O(n^2) sweeping construction (Theorem 2).

Instead of full grid lines, two *half-open* grid lines are drawn from each
point — one downward, one leftward.  Theorem 2: every region of the
resulting arrangement is a skyline polyomino.  The algorithm therefore
produces the diagram's geometry directly, without ever computing a skyline:

1. compute the intersection points of the half-open segments and link each
   to its left/right and lower/upper neighbours (Lines 1–11 of Algorithm 4);
2. for every interior intersection point ``g``, trace the polyomino having
   ``g`` as its upper-right corner: one step left, then repeated
   (lower, right) steps until the walk returns to ``g``'s vertical line
   (Lines 12–16, Example 5).

Everything is done in rank space.  The vertical line at x-rank ``a`` spans
ranks ``[0, vtop(a)]`` where ``vtop(a)`` is the highest y-rank among points
on that line; symmetrically ``hright(b)`` for horizontal lines.  Rank 0 on
either axis is the domain boundary the half-open segments run into.

An optional annotation step attaches per-polyomino skyline results (the
polyomino with upper-right corner ``(a, b)`` answers like cell
``(a-1, b-1)``); the paper's timing experiments build geometry only, and so
do ours.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import DimensionalityError, QueryError
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset

Vertex = tuple[int, int]  # (x-rank, y-rank); rank 0 is the boundary axis


@dataclass(frozen=True)
class SweepPolyomino:
    """One polyomino traced by the sweeping algorithm.

    Attributes
    ----------
    corner:
        Upper-right corner ``(a, b)`` in 1-based grid ranks.
    vertices:
        Closed boundary walk starting at ``corner`` (rank coordinates; the
        final implicit edge climbs ``corner``'s vertical line back up).
    """

    corner: Vertex
    vertices: tuple[Vertex, ...] = field(repr=False)


class SweepDiagram:
    """Result of the sweeping construction: polyomino geometry.

    The diagram partitions the plane into ``len(polyominos)`` staircase
    regions plus the unbounded outer region (whose skyline is empty).
    """

    __slots__ = ("grid", "vtop", "hright", "polyominos", "_results")

    def __init__(
        self,
        grid: Grid,
        vtop: list[int],
        hright: list[int],
        polyominos: list[SweepPolyomino],
    ) -> None:
        self.grid = grid
        self.vtop = vtop
        self.hright = hright
        self.polyominos = polyominos
        self._results: dict[Vertex, tuple[int, ...]] | None = None

    # ------------------------------------------------------------------
    @property
    def num_regions(self) -> int:
        """Number of regions including the unbounded empty-result region."""
        return len(self.polyominos) + 1

    def _region_corner(self, i: int, j: int) -> Vertex | None:
        """Upper-right corner of the region containing cell ``(i, j)``.

        ``None`` for the unbounded outer region.  Walks right past
        non-blocking vertical segments, then up past non-blocking
        horizontal segments, repeating until the upper-right corner
        stabilizes: a vertical segment at rank ``a`` blocks horizontally at
        row ``j`` iff ``vtop(a) >= j+1``, and symmetrically for horizontal
        segments (staircase regions make this terminate in at most
        ``min(sx, sy)`` rounds; amortized O(1) thanks to the monotone
        walk).
        """
        sx, sy = self.grid.shape
        a, b = i, j
        while True:
            moved = False
            while a + 1 <= sx - 1 and self.vtop[a + 1] < b + 1:
                a += 1
                moved = True
            while b + 1 <= sy - 1 and self.hright[b + 1] < a + 1:
                b += 1
                moved = True
            if not moved:
                break
        if a == sx - 1 and b == sy - 1:
            return None  # unbounded outer region
        return (a + 1, b + 1)

    def cell_partition(self) -> dict[tuple[int, int], Vertex | None]:
        """Map every skyline cell to its region's upper-right corner.

        Cells in the unbounded outer region map to ``None``.  This
        rasterization is O(#cells) and is used for cross-validation
        against the cell-merging algorithms.
        """
        sx, sy = self.grid.shape
        return {
            (i, j): self._region_corner(i, j)
            for j in range(sy)
            for i in range(sx)
        }

    def results(self) -> dict[Vertex, tuple[int, ...]]:
        """Annotate every polyomino with its skyline result (cached).

        Annotation runs the scanning algorithm once and reads the cell just
        inside each corner; the sweep itself never computes skylines.
        """
        if self._results is None:
            from repro.diagram.quadrant_scanning import quadrant_scanning

            cell_diagram = quadrant_scanning(self.grid.dataset)
            self._results = {
                poly.corner: cell_diagram.result_at(
                    (poly.corner[0] - 1, poly.corner[1] - 1)
                )
                for poly in self.polyominos
            }
        return self._results

    def query(self, query: Sequence[float]) -> tuple[int, ...]:
        """Answer a first-quadrant skyline query via the polyomino geometry."""
        i = bisect_left(self.grid.xs, float(query[0]))
        j = bisect_left(self.grid.ys, float(query[1]))
        corner = self._region_corner(i, j)
        if corner is None:
            return ()
        return self.results()[corner]

    def __repr__(self) -> str:
        return (
            f"SweepDiagram(n={len(self.grid.dataset)}, "
            f"polyominos={len(self.polyominos)})"
        )


def quadrant_sweeping(
    points: Dataset | Sequence[Sequence[float]],
) -> SweepDiagram:
    """Build the first-quadrant skyline diagram geometry with Algorithm 4.

    >>> sweep = quadrant_sweeping([(2, 8), (5, 4), (9, 1)])
    >>> len(sweep.polyominos)   # 6 staircase regions + the outer region
    6
    >>> sweep.polyominos[0].corner
    (1, 1)
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError("quadrant_sweeping is 2-D only")
    grid = Grid(dataset)
    num_x = len(grid.xs)  # vertical lines, ranks 1..num_x
    num_y = len(grid.ys)

    # Segment extents in rank space (index 0 unused: rank 0 is the axis).
    vtop = [0] * (num_x + 1)
    hright = [0] * (num_y + 1)
    for rx, ry in grid.ranks:
        vtop[rx] = max(vtop[rx], ry)
        hright[ry] = max(hright[ry], rx)

    # Intersection points, linked by neighbours along each line.  A vertex
    # (a, b) with a,b >= 1 exists iff the vertical segment at rank a reaches
    # row b and the horizontal segment at rank b reaches column a.
    hline_vertices: list[list[int]] = [list(range(num_x + 1))]  # bottom axis
    for b in range(1, num_y + 1):
        row = [0]
        row.extend(a for a in range(1, hright[b] + 1) if vtop[a] >= b)
        hline_vertices.append(row)
    vline_vertices: list[list[int]] = [list(range(num_y + 1))]  # left axis
    for a in range(1, num_x + 1):
        col = [0]
        col.extend(b for b in range(1, vtop[a] + 1) if hright[b] >= a)
        vline_vertices.append(col)

    def left_neighbour(a: int, b: int) -> Vertex:
        # Every vertex on the top edge carries a vertical segment reaching
        # down at least to the edge, so no skipping is needed going left.
        row = hline_vertices[b]
        pos = bisect_left(row, a)
        if pos == 0:
            raise QueryError(f"vertex ({a},{b}) has no left neighbour")
        return (row[pos - 1], b)

    def lower_crossing(a: int, b: int) -> Vertex:
        # Next vertex below (a, b) where the horizontal segment genuinely
        # crosses this vertical line.  A segment *ending* on the line
        # (hright == a) pokes left only and does not bound the face being
        # traced on the right, so such tips are skipped.  Rank 0 is the
        # bottom axis and always stops the descent.
        col = vline_vertices[a]
        pos = bisect_left(col, b) - 1
        while pos > 0 and hright[col[pos]] == a:
            pos -= 1
        if pos < 0:
            raise QueryError(f"vertex ({a},{b}) has no lower crossing")
        return (a, col[pos])

    def right_crossing(a: int, b: int) -> Vertex:
        # Next vertex to the right where the face boundary turns: either a
        # vertical segment rising above this horizontal line (the face's
        # closing right edge) or the line's own right endpoint (the face
        # wraps down around the tip).  Vertical tips pointing down from the
        # line (vtop == b before its end) are skipped.
        row = hline_vertices[b]
        pos = bisect_right(row, a)
        last = len(row) - 1
        while pos < last and b != 0 and vtop[row[pos]] == b:
            pos += 1
        if pos > last:
            raise QueryError(f"vertex ({a},{b}) has no right crossing")
        return (row[pos], b)

    polyominos: list[SweepPolyomino] = []
    for b in range(1, num_y + 1):
        for a in hline_vertices[b]:
            if a == 0:
                continue
            # Trace the polyomino whose upper-right corner is (a, b):
            # one step left along the top edge, then alternating
            # (down, right) along the lower-left staircase until the walk
            # returns to the corner's vertical line (Algorithm 4).
            start = (a, b)
            walk = [start]
            current = left_neighbour(a, b)
            walk.append(current)
            while current[0] != a:
                current = lower_crossing(*current)
                walk.append(current)
                current = right_crossing(*current)
                walk.append(current)
            polyominos.append(
                SweepPolyomino(corner=start, vertices=tuple(walk))
            )
    return SweepDiagram(grid, vtop, hright, polyominos)
