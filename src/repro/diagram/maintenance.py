"""Incremental maintenance of quadrant skyline diagrams.

A practical extension beyond the paper: inserting or deleting one point
does not require rebuilding the whole diagram.  A point ``p`` is a
candidate only for cells strictly below-left of it, so

* **insert**: only the lower-left block of ``p`` changes, and each affected
  cell updates in O(|result|) — ``p`` either joins the staircase (evicting
  the members it dominates) or is dominated and changes nothing.  Cells in
  a split column/row inherit the split cell's result.
* **delete**: again only the lower-left block; cells that did not list
  ``p`` keep their result (anything ``p`` dominated is also dominated by
  ``p``'s own dominator), and cells that did are repaired by re-admitting
  the points ``p`` directly hid.

Both operations return a new :class:`SkylineDiagram` (diagrams are
immutable); deletion renumbers ids above the removed one, mirroring how
the dataset shrinks.  Only first-quadrant (``mask=0``) diagrams are
supported — other orientations maintain their reflections.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.diagram.base import SkylineDiagram
from repro.diagram.pipeline import BuildContext, BuildOptions
from repro.errors import QueryError
from repro.geometry.dominance import dominates
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, as_point
from repro.resilience import BudgetMeter, BuildBudget


def _check(diagram: SkylineDiagram) -> None:
    from repro.diagram.skyband import SkybandDiagram

    if isinstance(diagram, SkybandDiagram):
        raise QueryError(
            "incremental maintenance applies skyline update rules; "
            "rebuild k-skyband diagrams instead"
        )
    if diagram.kind != "quadrant" or diagram.mask != 0:
        raise QueryError(
            "incremental maintenance supports first-quadrant diagrams only"
        )
    if diagram.dim != 2:
        raise QueryError("incremental maintenance is implemented in 2-D")


def _column_origin(old_axis, new_axis) -> list[int]:
    """For each new cell column, the old column covering its interval."""
    origins = []
    old_i = 0
    for i in range(len(new_axis) + 1):
        # New column i spans (new_axis[i-1], new_axis[i]); advance past old
        # lines that end at or before the column's lower bound.
        if i > 0:
            value = new_axis[i - 1]
            while old_i < len(old_axis) and old_axis[old_i] <= value:
                old_i += 1
        origins.append(old_i)
    return origins


def insert_point(
    diagram: SkylineDiagram,
    point: Sequence[float],
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Insert one point, updating only its lower-left block of cells.

    The new point's id is ``len(old dataset)``.  ``budget`` checkpoints
    once per cell column; the original diagram is untouched on
    exhaustion (maintenance is copy-on-write), so a caller can fall back
    to serving the stale snapshot or rebuilding.

    >>> from repro.diagram import quadrant_scanning
    >>> updated = insert_point(quadrant_scanning([(5, 5)]), (2, 2))
    >>> updated.result_at((0, 0))
    (1,)
    """
    _check(diagram)
    # Copy-on-write over the old diagram's cells: sequential by nature, so
    # the context pins the executor to serial regardless of the options.
    ctx = BuildContext(
        budget,
        build_options,
        algorithm=f"{diagram.algorithm}+insert",
        kind="maintenance",
        serial_only=True,
    )
    p = as_point(point)
    old = diagram.grid.dataset
    with ctx.phase("rank_space"):
        new_dataset = Dataset([*old.points, p])
        new_grid = Grid(new_dataset)
        new_id = len(old)
        rx, ry = new_grid.rank_of(new_id)
        x_origin = _column_origin(diagram.grid.axes[0], new_grid.axes[0])
        y_origin = _column_origin(diagram.grid.axes[1], new_grid.axes[1])

    sx, sy = new_grid.shape
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    pts = old.points
    with ctx.phase("row_scan"):
        for i in range(sx):
            for j in range(sy):
                result = diagram.result_at((x_origin[i], y_origin[j]))
                if i < rx and j < ry:
                    # p is a candidate of this cell.
                    if not any(dominates(pts[q], p) for q in result):
                        kept = [
                            q for q in result if not dominates(p, pts[q])
                        ]
                        kept.append(new_id)
                        result = tuple(sorted(kept))
                results[(i, j)] = result
            ctx.checkpoint(advance=sy)
        ctx.count_rows(sx)
    with ctx.phase("assemble"):
        updated = SkylineDiagram(
            new_grid,
            results,
            kind="quadrant",
            mask=0,
            algorithm=f"{diagram.algorithm}+insert",
        )
    return ctx.finish(updated)


def delete_point(
    diagram: SkylineDiagram,
    point_id: int,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Delete one point, repairing only its lower-left block of cells.

    Ids above ``point_id`` shift down by one (the dataset contracts).
    ``budget`` checkpoints once per cell column, as in
    :func:`insert_point`.

    >>> from repro.diagram import quadrant_scanning
    >>> diagram = quadrant_scanning([(1, 1), (2, 2)])
    >>> delete_point(diagram, 0).result_at((0, 0))
    (0,)
    """
    _check(diagram)
    ctx = BuildContext(
        budget,
        build_options,
        algorithm=f"{diagram.algorithm}+delete",
        kind="maintenance",
        serial_only=True,
    )
    old = diagram.grid.dataset
    if not 0 <= point_id < len(old):
        raise QueryError(f"point id {point_id} out of range")
    if len(old) == 1:
        raise QueryError("cannot delete the last point of a diagram")
    p = old[point_id]
    with ctx.phase("rank_space"):
        remaining = [q for i, q in enumerate(old.points) if i != point_id]
        new_dataset = Dataset(remaining)
        new_grid = Grid(new_dataset)

    def remap(old_pid: int) -> int:
        return old_pid if old_pid < point_id else old_pid - 1

    # The points p hid: any cell candidate dominated by p whose other
    # dominators are all gone resurfaces.  Lexicographic order guarantees a
    # resurfacing dominator is re-admitted before the points it dominates,
    # so checking against the growing survivor list below is sound.
    hidden = sorted(
        (
            i
            for i, q in enumerate(old.points)
            if i != point_id and dominates(p, q)
        ),
        key=lambda i: old.points[i],
    )
    old_ranks = diagram.grid.ranks
    pts = old.points

    # For each new cell column, a representative old column covering it
    # (when p's grid line vanishes, the two merged old columns agree after
    # the repair, so either representative works).
    x_source = _column_origin(diagram.grid.axes[0], new_grid.axes[0])
    y_source = _column_origin(diagram.grid.axes[1], new_grid.axes[1])

    sx, sy = new_grid.shape
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    with ctx.phase("row_scan"):
        for i in range(sx):
            old_i = x_source[i]
            for j in range(sy):
                old_j = y_source[j]
                result = diagram.result_at((old_i, old_j))
                if point_id in result:
                    survivors = [q for q in result if q != point_id]
                    for candidate in hidden:
                        crx, cry = old_ranks[candidate]
                        if crx <= old_i or cry <= old_j:
                            continue  # not a candidate of this cell
                        if not any(
                            dominates(pts[s], pts[candidate])
                            for s in survivors
                        ):
                            survivors.append(candidate)
                    result = tuple(sorted(survivors))
                results[(i, j)] = tuple(sorted(remap(q) for q in result))
            ctx.checkpoint(advance=sy)
        ctx.count_rows(sx)
    with ctx.phase("assemble"):
        updated = SkylineDiagram(
            new_grid,
            results,
            kind="quadrant",
            mask=0,
            algorithm=f"{diagram.algorithm}+delete",
        )
    return ctx.finish(updated)
