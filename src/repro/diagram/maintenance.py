"""Incremental maintenance of quadrant skyline diagrams.

A practical extension beyond the paper: inserting or deleting one point
does not require rebuilding the whole diagram.  A point ``p`` with ranks
``(rx, ry)`` is a candidate only for the cells strictly below-left of it
(``i < rx`` and ``j < ry``), so an update *dirties* exactly that
lower-left block and every other cell keeps its result verbatim (modulo
the one split/merged grid line and, for deletion, the id renumbering).

Both operations run directly on the :class:`~repro.diagram.store.
ResultStore` arrays through the shared build pipeline:

* the **clean rows** (``j >= ry``) are copied from the old id grid in one
  vectorized fancy-index over the remapped columns — no per-cell Python
  work;
* the **dirty rows** (``j < ry``) are re-scanned with the same delta-form
  row kernel the scanning constructor uses: :func:`~repro.diagram.
  quadrant_scanning._seed_state` rebuilds the entering scan state at the
  dirty boundary from the dataset alone, and :func:`~repro.diagram.
  quadrant_scanning._scan_rows` sweeps only the ``ry`` dirty rows;
* the two blocks then merge in global scan order
  (:func:`~repro.diagram.pipeline.relabel_scan_order` +
  :func:`_merge_at_boundary`, which deduplicates the dirty chunk against
  only the clean block's bottom row instead of hashing the whole clean
  table), so the updated store is **byte-identical** (content
  fingerprint) to a from-scratch serial build over the updated dataset —
  incremental maintenance never changes the artifact.

Updates are copy-on-write and budget-aware: a
:class:`~repro.resilience.BuildBudget` checkpoints per re-scanned row,
and on exhaustion the raised :class:`~repro.errors.BudgetExceededError`
carries an exact :class:`~repro.resilience.PartialDiagram` over the rows
completed before the interruption while the original diagram stays
untouched.  Only first-quadrant (``mask=0``) 2-D diagrams are supported —
other orientations maintain their reflections.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.diagram.base import SkylineDiagram
from repro.diagram.pipeline import (
    BuildContext,
    BuildOptions,
    relabel_scan_order,
)
from repro.diagram.quadrant_scanning import (
    _corner_rows,
    _scan_rows,
    _seed_state,
)
from repro.diagram.store import ResultStore
from repro.errors import BudgetExceededError, QueryError
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, as_point
from repro.resilience import BudgetMeter, BuildBudget, PartialDiagram

__all__ = ["delete_point", "insert_point"]


def _check(diagram: SkylineDiagram) -> None:
    from repro.diagram.skyband import SkybandDiagram

    if isinstance(diagram, SkybandDiagram):
        raise QueryError(
            "incremental maintenance applies skyline update rules; "
            "rebuild k-skyband diagrams instead"
        )
    if diagram.kind != "quadrant" or diagram.mask != 0:
        raise QueryError(
            "incremental maintenance supports first-quadrant diagrams only"
        )
    if diagram.dim != 2:
        raise QueryError("incremental maintenance is implemented in 2-D")


def _column_origin(old_axis, new_axis) -> list[int]:
    """For each new cell column, the old column covering its interval."""
    origins = []
    old_i = 0
    for i in range(len(new_axis) + 1):
        # New column i spans (new_axis[i-1], new_axis[i]); advance past old
        # lines that end at or before the column's lower bound.
        if i > 0:
            value = new_axis[i - 1]
            while old_i < len(old_axis) and old_axis[old_i] <= value:
                old_i += 1
        origins.append(old_i)
    return origins


def _splice_dirty(
    ctx: BuildContext,
    new_grid: Grid,
    new_id: int,
    old_store: ResultStore,
    old_table,
    x_origin: list[int],
    y_origin: list[int],
    dirty_hi: int,
    dirty_rows: np.ndarray,
    partial_rows,
) -> list | None:
    """Insert fast path: splice the new point into copies of the old rows.

    A new point ``p`` *changes* a dirty cell only where it enters the
    result — the cells seeing no strict dominator of ``p``.  Per dirty
    row that is one column interval ``[lo(j), rx)`` where ``lo(j)`` is
    the largest x-rank among dominators whose y-rank exceeds the row
    (the dominator staircase).  On those cells ``p`` is undominated
    among the candidates, so

        ``Sky(C ∪ {p}) = {p} ∪ {s ∈ Sky(C) : p does not dominate s}``

    — a pure splice of the copied old result that needs no re-scan; the
    non-splice clause holds because any non-skyline candidate stays
    dominated by a surviving maximal point (domination is transitive).
    Every other dirty cell keeps the old column-remapped result
    verbatim, by the same covering-column argument as the clean block.

    Returns the dirty rows' lookup table (the old table plus the spliced
    tail), or ``None`` when the appearance region references so many
    distinct results that the row kernel is the cheaper engine (the
    splice pays one Python tuple rebuild per distinct region result; the
    kernel pays per dirty cell).

    Budget checkpoints run once per completed row, matching the kernel
    path's semantics (``partial_rows`` sees rows ``[j, dirty_hi)``).
    """
    sx = new_grid.shape[0]
    rxp, _ = new_grid.rank_of(new_id)
    ranks = np.asarray(new_grid.ranks, dtype=np.int64)
    rx, ry = ranks[:, 0], ranks[:, 1]
    ryp = int(ry[new_id])
    dom = (rx <= rxp) & (ry <= ryp) & ((rx < rxp) | (ry < ryp))
    dom[new_id] = False
    dom_ids = np.nonzero(dom)[0]
    if len(dom_ids):
        d_rx = rx[dom_ids]
        d_ry = ry[dom_ids]
        order = np.argsort(d_ry, kind="stable")
        ry_sorted = d_ry[order]
        suffix_max = np.maximum.accumulate(d_rx[order][::-1])[::-1]
        pos = np.searchsorted(ry_sorted, np.arange(dirty_hi), side="right")
        lo = np.where(
            pos < len(dom_ids),
            suffix_max[np.minimum(pos, len(dom_ids) - 1)],
            0,
        )
        lo = np.minimum(lo, rxp)
    else:
        lo = np.zeros(dirty_hi, dtype=np.int64)
    base = np.ascontiguousarray(
        old_store.ids[np.ix_(x_origin, y_origin[:dirty_hi])].T,
        dtype=np.int32,
    )
    segments = [
        base[j, lo[j] : rxp] for j in range(dirty_hi) if lo[j] < rxp
    ]
    used = (
        np.unique(np.concatenate(segments))
        if segments
        else np.empty(0, dtype=np.int64)
    )
    if len(used) * 8 > dirty_hi * sx:
        return None
    # Points the new point dominates — these leave any result p joins.
    shadowed = (rx >= rxp) & (ry >= ryp) & ((rx > rxp) | (ry > ryp))
    dom_set = set(np.nonzero(shadowed)[0].tolist())
    map_arr = np.zeros(max(1, len(old_table)), dtype=np.int32)
    tail: list[tuple[int, ...]] = []
    seen: dict[tuple[int, ...], int] = {}
    next_id = len(old_table)
    for u in used.tolist():
        # The new id is the largest, so appending keeps the tuple sorted.
        spliced = tuple(
            s for s in old_table[u] if s not in dom_set
        ) + (new_id,)
        hit = seen.get(spliced)
        if hit is None:
            seen[spliced] = hit = next_id
            tail.append(spliced)
            next_id += 1
        map_arr[u] = hit
    table = list(old_table) + tail
    dirty_rows[:] = base
    for j in range(dirty_hi - 1, -1, -1):
        if lo[j] < rxp:
            segment = dirty_rows[j, lo[j] : rxp]
            dirty_rows[j, lo[j] : rxp] = map_arr[segment]
        try:
            ctx.checkpoint(advance=sx, distinct=len(table))
        except BudgetExceededError as exc:
            if exc.partial is None:
                exc.partial = PartialDiagram(
                    new_grid,
                    partial_rows(j, dirty_rows, table),
                    None,
                    boundary_exact=True,
                )
            raise
    return table


def _merge_at_boundary(
    clean_local: np.ndarray,
    clean_table: list,
    dirty_local: np.ndarray,
    dirty_table: list,
    dirty_hi: int,
    rows_out: np.ndarray,
) -> list:
    """Merge the clean and dirty chunks without hashing the clean table.

    The clean chunk leads the global scan order and its table entries are
    distinct (an injective id remap of distinct old results), so its
    merged ids are ``0..C-1`` verbatim.  The dirty chunk only needs
    deduplication against the clean results that can recur below the
    boundary — and those all appear in the clean block's *bottom* row
    (``j = dirty_hi``):

    A cell's candidate set is antitone in its position, and for nested
    candidate sets ``A ⊇ B ⊇ C`` with ``Sky(A) = Sky(C) = S``, also
    ``Sky(B) = S`` (each point of ``S`` is undominated in ``A`` hence in
    ``B``; each point of ``B \\ S`` lies in ``A`` and is strictly
    dominated by some maximal point of ``A``, i.e. by ``S`` — with or
    without duplicate points).  So if a dirty cell ``(i1, j1)`` and a
    clean cell ``(i2, j2)`` share result ``S``, the corner cell
    ``(min(i1, i2), j)`` is sandwiched for every ``j1 <= j <= j2`` and
    carries ``S`` across row ``dirty_hi``.  Deduplicating against that
    one row's results replaces a dict over the full clean table (about
    as large as the cell count) with one over at most ``sx`` entries.
    """
    rows_out[dirty_hi:] = clean_local
    boundary: dict = {}
    if rows_out.shape[0] > dirty_hi:
        for i in np.unique(clean_local[0]).tolist():
            boundary[clean_table[i]] = i
    next_id = len(clean_table)
    mapping = np.empty(max(1, len(dirty_table)), dtype=np.int32)
    tail = []
    for k, result in enumerate(dirty_table):
        hit = boundary.get(result)
        if hit is None:
            mapping[k] = next_id
            tail.append(result)
            next_id += 1
        else:
            mapping[k] = hit
    rows_out[:dirty_hi] = mapping[dirty_local]
    return clean_table + tail


def _rescan_update(
    ctx: BuildContext,
    diagram: SkylineDiagram,
    new_grid: Grid,
    x_origin: list[int],
    y_origin: list[int],
    dirty_hi: int,
    remap_table,
    new_point_id: int | None = None,
) -> SkylineDiagram:
    """Shared dirty-region engine behind both maintenance operations.

    Rows ``[dirty_hi, sy)`` of the new grid are clean: they are the old
    rows ``y_origin[j]`` with columns remapped through ``x_origin``, so
    one fancy-index copies the whole block.  Rows ``[0, dirty_hi)`` are
    re-scanned from the new dataset with the scanning constructor's own
    row kernel.  ``remap_table`` post-processes the clean block's
    restricted result table (deletion renumbers ids; insertion is the
    identity).  Both blocks merge in global scan order, which makes the
    result byte-identical to a fresh serial build.
    """
    old_store = diagram.store
    sx, sy = new_grid.shape
    with ctx.phase("row_scan"):
        # Clean block first — it is the *top* of the scan order.  The
        # copy is one vectorized gather; the checkpoint charges its cells
        # so time/cell budgets account for the whole update honestly.
        clean_rows = old_store.ids[np.ix_(x_origin, y_origin[dirty_hi:])].T
        clean_rows = np.ascontiguousarray(clean_rows, dtype=np.int32)
        old_table = old_store.table_view()

        def partial_rows(upto: int, scan_rows, scan_table) -> dict:
            """Completed-suffix rows as raw tuples (mixed id spaces)."""
            remapped = remap_table(
                [old_table[i] for i in range(len(old_table))]
            )
            rows: dict[int, list] = {}
            for jj in range(dirty_hi, sy):
                rows[jj] = [
                    remapped[i]
                    for i in clean_rows[jj - dirty_hi].tolist()
                ]
            for jj in range(upto, dirty_hi):
                rows[jj] = [
                    scan_table[i] for i in scan_rows[jj].tolist()
                ]
            return rows

        try:
            ctx.checkpoint(advance=(sy - dirty_hi) * sx)
        except BudgetExceededError as exc:
            if exc.partial is None:
                exc.partial = PartialDiagram(
                    new_grid,
                    partial_rows(dirty_hi, None, None),
                    None,
                    boundary_exact=True,
                )
            raise

        # Dirty block: an insert first tries the splice fast path —
        # overwrite only the new point's appearance staircase in a copy
        # of the old rows; otherwise re-scan rows [0, dirty_hi) with the
        # delta-form kernel, seeded at the dirty boundary from the
        # dataset alone.
        dirty_rows = np.empty((dirty_hi, sx), dtype=np.int32)
        table = None
        if new_point_id is not None:
            table = _splice_dirty(
                ctx,
                new_grid,
                new_point_id,
                old_store,
                old_table,
                x_origin,
                y_origin,
                dirty_hi,
                dirty_rows,
                partial_rows,
            )
        if table is None:
            row_corners, row_corner_cols = _corner_rows(new_grid)
            upper, diff_events, diff_deltas, table, intern = _seed_state(
                new_grid, dirty_hi
            )

            def on_row(j: int) -> None:
                try:
                    ctx.checkpoint(advance=sx, distinct=len(table))
                except BudgetExceededError as exc:
                    if exc.partial is None:
                        exc.partial = PartialDiagram(
                            new_grid,
                            partial_rows(j, dirty_rows, table),
                            None,
                            boundary_exact=True,
                        )
                    raise

            _scan_rows(
                sx,
                row_corners,
                row_corner_cols,
                0,
                dirty_hi,
                upper,
                diff_events,
                diff_deltas,
                table,
                intern,
                dirty_rows,
                0,
                on_row,
            )
        ctx.count_rows(dirty_hi)
    with ctx.phase("intern"):
        # Treat the clean copy and the re-scan as two chunks of a sharded
        # build: relabel each into scan-order-first-occurrence ids, then
        # merge topmost first — exactly the path that makes process-pool
        # builds byte-identical to serial.
        #
        # The clean block usually gets a cheaper relabel: the old store's
        # table is already in scan-first-occurrence order (every build
        # path guarantees byte-identity with serial), and a column map
        # that never *drops* a column (insert always; delete when the
        # victim shares its x grid line) preserves the relative order of
        # first occurrences — duplicated columns sit adjacent in scan
        # order and cannot reorder anything.  Ascending old id therefore
        # IS first-occurrence order, and a presence mask replaces the
        # O(cells log cells) sort inside relabel_scan_order.  A dropped
        # column can move an id's first occurrence past another's, so
        # that case keeps the general relabel.
        if sx >= old_store.ids.shape[0]:
            counts = np.bincount(
                clean_rows.ravel(), minlength=len(old_table)
            )
            used = np.nonzero(counts)[0]
            rank = np.zeros(max(1, len(old_table)), dtype=np.int32)
            rank[used] = np.arange(len(used), dtype=np.int32)
            clean_local = rank[clean_rows]
            if len(used) == len(old_table):
                clean_table = list(old_table)
            else:
                clean_table = list(
                    map(old_table.__getitem__, used.tolist())
                )
        else:
            clean_local, clean_table = relabel_scan_order(
                clean_rows, old_table, flip=True
            )
        clean_table = remap_table(clean_table)
        dirty_local, dirty_table = relabel_scan_order(
            dirty_rows, table, flip=True
        )
        rows_out = np.empty((sy, sx), dtype=np.int32)
        merged = _merge_at_boundary(
            clean_local,
            clean_table,
            dirty_local,
            dirty_table,
            dirty_hi,
            rows_out,
        )
        ctx.checkpoint(distinct=len(merged))
    with ctx.phase("assemble"):
        store = ResultStore(
            (sx, sy), np.ascontiguousarray(rows_out.T), merged
        )
        updated = SkylineDiagram(
            new_grid,
            store,
            kind="quadrant",
            mask=0,
            algorithm=ctx.report.algorithm,
        )
    return ctx.finish(updated)


def insert_point(
    diagram: SkylineDiagram,
    point: Sequence[float],
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Insert one point, re-scanning only its dirty lower-left rows.

    The new point's id is ``len(old dataset)``.  Only rows strictly below
    the point's y-rank are re-scanned (``build_report.rows_scanned``
    counts exactly those); everything above is a vectorized copy of the
    old store.  The returned diagram's store is byte-identical to a fresh
    serial build over the extended dataset.  ``budget`` checkpoints once
    per re-scanned row; the original diagram is untouched on exhaustion
    (maintenance is copy-on-write) and the raised error carries an exact
    partial over the completed rows.

    >>> from repro.diagram import quadrant_scanning
    >>> updated = insert_point(quadrant_scanning([(5, 5)]), (2, 2))
    >>> updated.result_at((0, 0))
    (1,)
    """
    _check(diagram)
    ctx = BuildContext(
        budget,
        build_options,
        algorithm=f"{diagram.algorithm}+insert",
        kind="maintenance",
        serial_only=True,
    )
    p = as_point(point)
    old = diagram.grid.dataset
    with ctx.phase("rank_space"):
        new_dataset = Dataset([*old.points, p])
        new_grid = Grid(new_dataset)
        new_id = len(old)
        _, ry = new_grid.rank_of(new_id)
        x_origin = _column_origin(diagram.grid.axes[0], new_grid.axes[0])
        y_origin = _column_origin(diagram.grid.axes[1], new_grid.axes[1])
    # Point ids are append-only on insert, so the clean block's table
    # entries carry over verbatim.
    return _rescan_update(
        ctx,
        diagram,
        new_grid,
        x_origin,
        y_origin,
        ry,
        lambda table: table,
        new_point_id=new_id,
    )


def delete_point(
    diagram: SkylineDiagram,
    point_id: int,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Delete one point, re-scanning only its dirty lower-left rows.

    Ids above ``point_id`` shift down by one (the dataset contracts); the
    victim never appears in a clean cell's result (a point is only listed
    where it is a candidate, and its candidate region *is* the dirty
    block), so the clean block carries over with a pure id renumbering.
    ``budget`` checkpoints as in :func:`insert_point`.

    >>> from repro.diagram import quadrant_scanning
    >>> diagram = quadrant_scanning([(1, 1), (2, 2)])
    >>> delete_point(diagram, 0).result_at((0, 0))
    (0,)
    """
    _check(diagram)
    ctx = BuildContext(
        budget,
        build_options,
        algorithm=f"{diagram.algorithm}+delete",
        kind="maintenance",
        serial_only=True,
    )
    old = diagram.grid.dataset
    if not 0 <= point_id < len(old):
        raise QueryError(f"point id {point_id} out of range")
    if len(old) == 1:
        raise QueryError("cannot delete the last point of a diagram")
    with ctx.phase("rank_space"):
        _, victim_ry = diagram.grid.rank_of(point_id)
        remaining = [q for i, q in enumerate(old.points) if i != point_id]
        new_grid = Grid(Dataset(remaining))
        x_origin = _column_origin(diagram.grid.axes[0], new_grid.axes[0])
        y_origin = _column_origin(diagram.grid.axes[1], new_grid.axes[1])
        # New rows whose interval lies below the victim's y grid line are
        # dirty; y_origin is monotone, so they form the prefix of rows
        # mapping to old rows < victim_ry.
        sy = new_grid.shape[1]
        dirty_hi = next(
            (j for j in range(sy) if y_origin[j] >= victim_ry), sy
        )

    def remap_table(table):
        # Results are sorted, so a max id below the victim means no id
        # shifts — keep the tuple (the common case for late victims).
        return [
            result
            if not result or result[-1] < point_id
            else tuple(q - 1 if q > point_id else q for q in result)
            for result in table
        ]

    return _rescan_update(
        ctx, diagram, new_grid, x_origin, y_origin, dirty_hi, remap_table
    )
