"""Incremental maintenance of quadrant skyline diagrams.

A practical extension beyond the paper: inserting or deleting one point
does not require rebuilding the whole diagram.  A point ``p`` with ranks
``(rx, ry)`` is a candidate only for the cells strictly below-left of it
(``i < rx`` and ``j < ry``), so an update *dirties* exactly that
lower-left block and every other cell keeps its result verbatim (modulo
the one split/merged grid line and, for deletion, the id renumbering).

Both operations run directly on the :class:`~repro.diagram.store.
ResultStore` arrays through the shared build pipeline:

* the **clean rows** (``j >= ry``) are copied from the old id grid in one
  vectorized fancy-index over the remapped columns — no per-cell Python
  work;
* the **dirty rows** (``j < ry``) are re-scanned with the same delta-form
  row kernel the scanning constructor uses: :func:`~repro.diagram.
  quadrant_scanning._seed_state` rebuilds the entering scan state at the
  dirty boundary from the dataset alone, and :func:`~repro.diagram.
  quadrant_scanning._scan_rows` sweeps only the ``ry`` dirty rows;
* the two blocks then merge in global scan order
  (:func:`~repro.diagram.pipeline.relabel_scan_order` +
  :func:`_merge_at_boundary`, which deduplicates the dirty chunk against
  only the clean block's bottom row instead of hashing the whole clean
  table), so the updated store is **byte-identical** (content
  fingerprint) to a from-scratch serial build over the updated dataset —
  incremental maintenance never changes the artifact.

Updates are copy-on-write and budget-aware: a
:class:`~repro.resilience.BuildBudget` checkpoints per re-scanned row,
and on exhaustion the raised :class:`~repro.errors.BudgetExceededError`
carries an exact :class:`~repro.resilience.PartialDiagram` over the rows
completed before the interruption while the original diagram stays
untouched.  Only first-quadrant (``mask=0``) 2-D diagrams are supported —
other orientations maintain their reflections.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.diagram.base import SkylineDiagram
from repro.diagram.pipeline import (
    BuildContext,
    BuildOptions,
    relabel_scan_order,
)
from repro.diagram.quadrant_scanning import (
    _corner_rows,
    _scan_rows,
    _seed_state,
)
from repro.diagram.store import ResultStore, _RLERowBuilder
from repro.errors import BudgetExceededError, QueryError
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, as_point
from repro.resilience import BudgetMeter, BuildBudget, PartialDiagram

__all__ = ["apply_ops", "delete_point", "insert_point"]


def _default_options(
    diagram: SkylineDiagram, build_options: BuildOptions | None
) -> BuildOptions | None:
    """Maintenance preserves the input store's backend unless told not to.

    With no explicit ``build_options`` an update of an RLE diagram stays
    RLE (taking the run-domain path when eligible) and a quad diagram
    re-merges at its own epsilon; passing options with a different
    ``backend`` converts the updated store instead.
    """
    if build_options is not None:
        return build_options
    kind = diagram.store.backend_kind
    if kind == "dense":
        return None
    if kind == "quad":
        return BuildOptions(
            backend="quad", quad_error=diagram.store.backend.epsilon
        )
    return BuildOptions(backend=kind)


def _check(diagram: SkylineDiagram) -> None:
    from repro.diagram.skyband import SkybandDiagram

    if isinstance(diagram, SkybandDiagram):
        raise QueryError(
            "incremental maintenance applies skyline update rules; "
            "rebuild k-skyband diagrams instead"
        )
    if diagram.kind != "quadrant" or diagram.mask != 0:
        raise QueryError(
            "incremental maintenance supports first-quadrant diagrams only"
        )
    if diagram.dim != 2:
        raise QueryError("incremental maintenance is implemented in 2-D")


def _column_origin(old_axis, new_axis) -> list[int]:
    """For each new cell column, the old column covering its interval."""
    origins = []
    old_i = 0
    for i in range(len(new_axis) + 1):
        # New column i spans (new_axis[i-1], new_axis[i]); advance past old
        # lines that end at or before the column's lower bound.
        if i > 0:
            value = new_axis[i - 1]
            while old_i < len(old_axis) and old_axis[old_i] <= value:
                old_i += 1
        origins.append(old_i)
    return origins


def _gather_block(
    store: ResultStore, x_origin: Sequence[int], y_cols: Sequence[int]
) -> np.ndarray:
    """Gather old cells ``(x_origin[i], y_cols[jj])`` as a rows-of-y block.

    Shape ``(len(y_cols), len(x_origin))`` int32 — row ``jj`` is scan row
    ``jj``, column ``i`` is store row ``i`` — matching the dense
    ``ids[np.ix_(x_origin, y_cols)].T`` gather.  RLE stores stay in the
    run domain: one ``searchsorted`` per referenced old row
    (``O(m log runs)`` instead of materializing the ``O(cells)`` grid).
    """
    if store.backend_kind == "dense":
        block = store.ids[np.ix_(x_origin, y_cols)].T
        return np.ascontiguousarray(block, dtype=np.int32)
    backend = store.backend
    xo = list(x_origin)
    y_arr = np.asarray(y_cols, dtype=np.int64)
    out = np.empty((y_arr.size, len(xo)), dtype=np.int32)
    cache: dict[int, np.ndarray] = {}
    for i, r in enumerate(xo):
        col = cache.get(r)
        if col is None:
            if backend.kind == "rle":
                vals, ends = backend.row_runs(r)
                col = vals[np.searchsorted(ends, y_arr, side="right")]
            else:
                col = backend.row_view(r)[y_arr]
            cache[r] = col
        out[:, i] = col
    return out


def _rle_suffix_runs(
    backend, x_origin: Sequence[int], y_origin: Sequence[int],
    dirty_hi: int, sy: int,
):
    """Clip each referenced old row's runs to the clean suffix, run-domain.

    The clean suffix of a new store row with origin ``r`` holds old row
    ``r``'s values at columns ``y_origin[dirty_hi:]``.  In the run
    domain that resampling is: map each old run end ``e`` to
    ``dirty_hi + #{sampled columns < e}`` (one ``searchsorted``) and
    keep the runs still covering at least one sampled column.  Returns

    * ``suffix``: old row -> ``(vals, ends)`` with *raw old* run values
      and new-row ends in ``(dirty_hi, sy]``;
    * ``used``: ascending unique raw ids over all suffixes — exactly the
      ids the dense gather would have seen, in the same order, so the
      presence relabel built on it is byte-identical to the dense path;
    * ``boundary_raw``: per new store row, the raw id at scan row
      ``dirty_hi`` (empty when there is no clean block).
    """
    xo = list(x_origin)
    y_arr = np.asarray(y_origin[dirty_hi:], dtype=np.int64)
    suffix: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    chunks = []
    for r in dict.fromkeys(xo):
        vals, ends = backend.row_runs(r)
        ne = np.searchsorted(y_arr, ends, side="left").astype(np.int64)
        ne += dirty_hi
        keep = np.empty(ne.size, dtype=bool)
        if ne.size:
            keep[0] = ne[0] > dirty_hi
            keep[1:] = ne[1:] > ne[:-1]
        sv = np.ascontiguousarray(vals[keep])
        suffix[r] = (sv, np.ascontiguousarray(ne[keep]))
        chunks.append(sv)
    used = (
        np.unique(np.concatenate(chunks))
        if chunks
        else np.empty(0, dtype=np.int64)
    )
    if y_arr.size:
        boundary_raw = np.asarray(
            [int(suffix[r][0][0]) for r in xo], dtype=np.int64
        )
    else:
        boundary_raw = np.empty(0, dtype=np.int64)
    return suffix, used, boundary_raw


def _rle_assemble(
    x_origin: Sequence[int],
    suffix: dict,
    rank: np.ndarray,
    dirty_final: np.ndarray,
    dirty_hi: int,
    sx: int,
    sy: int,
):
    """Stitch dirty-prefix columns and remapped clean suffixes per row.

    Each new store row is the compressed column ``i`` of the merged
    dirty block followed by its old row's clipped suffix runs remapped
    through ``rank`` (raw old id -> merged id), fusing the boundary run
    when the two sides agree at ``dirty_hi``.  The builder's row-delta
    sharing then matches what a fresh compressed build would produce.
    """
    builder = _RLERowBuilder((sx, sy))
    dirty_cols = np.ascontiguousarray(dirty_final.T) if dirty_hi else None
    for i, r in enumerate(x_origin):
        sv, se = suffix[r]
        sv = rank[sv]
        if dirty_cols is not None:
            col = dirty_cols[i]
            change = np.nonzero(col[1:] != col[:-1])[0]
            pv = np.empty(change.size + 1, dtype=np.int32)
            pe = np.empty(change.size + 1, dtype=np.int64)
            pv[:-1] = col[change]
            pe[:-1] = change + 1
            pv[-1] = col[-1]
            pe[-1] = dirty_hi
            if sv.size and pv[-1] == sv[0]:
                pv = pv[:-1]
                pe = pe[:-1]
            sv = np.concatenate((pv, sv))
            se = np.concatenate((pe, se))
        builder.add_row(sv, se)
    return builder.build()


def _splice_dirty(
    ctx: BuildContext,
    new_grid: Grid,
    new_id: int,
    old_store: ResultStore,
    old_table,
    x_origin: list[int],
    y_origin: list[int],
    dirty_hi: int,
    dirty_rows: np.ndarray,
    partial_rows,
) -> list | None:
    """Insert fast path: splice the new point into copies of the old rows.

    A new point ``p`` *changes* a dirty cell only where it enters the
    result — the cells seeing no strict dominator of ``p``.  Per dirty
    row that is one column interval ``[lo(j), rx)`` where ``lo(j)`` is
    the largest x-rank among dominators whose y-rank exceeds the row
    (the dominator staircase).  On those cells ``p`` is undominated
    among the candidates, so

        ``Sky(C ∪ {p}) = {p} ∪ {s ∈ Sky(C) : p does not dominate s}``

    — a pure splice of the copied old result that needs no re-scan; the
    non-splice clause holds because any non-skyline candidate stays
    dominated by a surviving maximal point (domination is transitive).
    Every other dirty cell keeps the old column-remapped result
    verbatim, by the same covering-column argument as the clean block.

    Returns the dirty rows' lookup table (the old table plus the spliced
    tail), or ``None`` when the appearance region references so many
    distinct results that the row kernel is the cheaper engine (the
    splice pays one Python tuple rebuild per distinct region result; the
    kernel pays per dirty cell).

    Budget checkpoints run once per completed row, matching the kernel
    path's semantics (``partial_rows`` sees rows ``[j, dirty_hi)``).
    """
    sx = new_grid.shape[0]
    rxp, _ = new_grid.rank_of(new_id)
    ranks = np.asarray(new_grid.ranks, dtype=np.int64)
    rx, ry = ranks[:, 0], ranks[:, 1]
    ryp = int(ry[new_id])
    dom = (rx <= rxp) & (ry <= ryp) & ((rx < rxp) | (ry < ryp))
    dom[new_id] = False
    dom_ids = np.nonzero(dom)[0]
    if len(dom_ids):
        d_rx = rx[dom_ids]
        d_ry = ry[dom_ids]
        order = np.argsort(d_ry, kind="stable")
        ry_sorted = d_ry[order]
        suffix_max = np.maximum.accumulate(d_rx[order][::-1])[::-1]
        pos = np.searchsorted(ry_sorted, np.arange(dirty_hi), side="right")
        lo = np.where(
            pos < len(dom_ids),
            suffix_max[np.minimum(pos, len(dom_ids) - 1)],
            0,
        )
        lo = np.minimum(lo, rxp)
    else:
        lo = np.zeros(dirty_hi, dtype=np.int64)
    base = _gather_block(old_store, x_origin, y_origin[:dirty_hi])
    segments = [
        base[j, lo[j] : rxp] for j in range(dirty_hi) if lo[j] < rxp
    ]
    used = (
        np.unique(np.concatenate(segments))
        if segments
        else np.empty(0, dtype=np.int64)
    )
    if len(used) * 8 > dirty_hi * sx:
        return None
    # Points the new point dominates — these leave any result p joins.
    shadowed = (rx >= rxp) & (ry >= ryp) & ((rx > rxp) | (ry > ryp))
    dom_set = set(np.nonzero(shadowed)[0].tolist())
    map_arr = np.zeros(max(1, len(old_table)), dtype=np.int32)
    tail: list[tuple[int, ...]] = []
    seen: dict[tuple[int, ...], int] = {}
    next_id = len(old_table)
    for u in used.tolist():
        # The new id is the largest, so appending keeps the tuple sorted.
        spliced = tuple(
            s for s in old_table[u] if s not in dom_set
        ) + (new_id,)
        hit = seen.get(spliced)
        if hit is None:
            seen[spliced] = hit = next_id
            tail.append(spliced)
            next_id += 1
        map_arr[u] = hit
    table = list(old_table) + tail
    dirty_rows[:] = base
    for j in range(dirty_hi - 1, -1, -1):
        if lo[j] < rxp:
            segment = dirty_rows[j, lo[j] : rxp]
            dirty_rows[j, lo[j] : rxp] = map_arr[segment]
        try:
            ctx.checkpoint(advance=sx, distinct=len(table))
        except BudgetExceededError as exc:
            if exc.partial is None:
                exc.partial = PartialDiagram(
                    new_grid,
                    partial_rows(j, dirty_rows, table),
                    None,
                    boundary_exact=True,
                )
            raise
    return table


def _merge_at_boundary(
    clean_local: np.ndarray,
    clean_table: list,
    dirty_local: np.ndarray,
    dirty_table: list,
    dirty_hi: int,
    rows_out: np.ndarray,
) -> list:
    """Merge the clean and dirty chunks without hashing the clean table.

    The clean chunk leads the global scan order and its table entries are
    distinct (an injective id remap of distinct old results), so its
    merged ids are ``0..C-1`` verbatim.  The dirty chunk only needs
    deduplication against the clean results that can recur below the
    boundary — and those all appear in the clean block's *bottom* row
    (``j = dirty_hi``):

    A cell's candidate set is antitone in its position, and for nested
    candidate sets ``A ⊇ B ⊇ C`` with ``Sky(A) = Sky(C) = S``, also
    ``Sky(B) = S`` (each point of ``S`` is undominated in ``A`` hence in
    ``B``; each point of ``B \\ S`` lies in ``A`` and is strictly
    dominated by some maximal point of ``A``, i.e. by ``S`` — with or
    without duplicate points).  So if a dirty cell ``(i1, j1)`` and a
    clean cell ``(i2, j2)`` share result ``S``, the corner cell
    ``(min(i1, i2), j)`` is sandwiched for every ``j1 <= j <= j2`` and
    carries ``S`` across row ``dirty_hi``.  Deduplicating against that
    one row's results replaces a dict over the full clean table (about
    as large as the cell count) with one over at most ``sx`` entries.
    """
    rows_out[dirty_hi:] = clean_local
    boundary_ids = (
        np.unique(clean_local[0]).tolist()
        if rows_out.shape[0] > dirty_hi
        else []
    )
    mapping, merged = _merge_tables(boundary_ids, clean_table, dirty_table)
    rows_out[:dirty_hi] = mapping[dirty_local]
    return merged


def _merge_tables(
    boundary_ids: list, clean_table: list, dirty_table: list
) -> tuple[np.ndarray, list]:
    """Dedup the dirty table against the clean boundary results.

    Returns ``(mapping, merged)``: ``mapping[k]`` is the merged id of
    dirty-local id ``k``, and ``merged`` extends ``clean_table`` with
    the genuinely new dirty results in dirty scan order.
    """
    boundary = {clean_table[i]: i for i in boundary_ids}
    next_id = len(clean_table)
    mapping = np.empty(max(1, len(dirty_table)), dtype=np.int32)
    tail = []
    for k, result in enumerate(dirty_table):
        hit = boundary.get(result)
        if hit is None:
            mapping[k] = next_id
            tail.append(result)
            next_id += 1
        else:
            mapping[k] = hit
    return mapping, clean_table + tail


def _rescan_update(
    ctx: BuildContext,
    diagram: SkylineDiagram,
    new_grid: Grid,
    x_origin: list[int],
    y_origin: list[int],
    dirty_hi: int,
    remap_table,
    new_point_id: int | None = None,
) -> SkylineDiagram:
    """Shared dirty-region engine behind both maintenance operations.

    Rows ``[dirty_hi, sy)`` of the new grid are clean: they are the old
    rows ``y_origin[j]`` with columns remapped through ``x_origin``, so
    one fancy-index copies the whole block.  Rows ``[0, dirty_hi)`` are
    re-scanned from the new dataset with the scanning constructor's own
    row kernel.  ``remap_table`` post-processes the clean block's
    restricted result table (deletion renumbers ids; insertion is the
    identity).  Both blocks merge in global scan order, which makes the
    result byte-identical to a fresh serial build.
    """
    old_store = diagram.store
    sx, sy = new_grid.shape
    # Run-domain fast path: an RLE store updating toward an RLE target
    # splices the clean suffix run-by-run — the old grid is never
    # materialized.  It requires the cheap presence relabel below, which
    # in turn requires a column map that never drops a column.
    direct_rle = (
        old_store.backend_kind == "rle"
        and ctx.options.backend == "rle"
        and sx >= old_store.shape[0]
    )
    if old_store.backend_kind != "dense" and not direct_rle:
        # Honest accounting: a compressed/approximate store that cannot
        # take the run-domain path is densified here, modified, and
        # recompressed to the target backend by ``ctx.finish``.
        ctx.report.backend_fallback = "densify"
    with ctx.phase("row_scan"):
        # Clean block first — it is the *top* of the scan order.  The
        # copy is one vectorized gather (skipped entirely on the
        # run-domain path); the checkpoint charges its cells so
        # time/cell budgets account for the whole update honestly.
        clean_rows = (
            None
            if direct_rle
            else _gather_block(old_store, x_origin, y_origin[dirty_hi:])
        )
        old_table = old_store.table_view()

        def partial_rows(upto: int, scan_rows, scan_table) -> dict:
            """Completed-suffix rows as raw tuples (mixed id spaces)."""
            remapped = remap_table(
                [old_table[i] for i in range(len(old_table))]
            )
            block = (
                clean_rows
                if clean_rows is not None
                else _gather_block(old_store, x_origin, y_origin[dirty_hi:])
            )
            rows: dict[int, list] = {}
            for jj in range(dirty_hi, sy):
                rows[jj] = [
                    remapped[i]
                    for i in block[jj - dirty_hi].tolist()
                ]
            for jj in range(upto, dirty_hi):
                rows[jj] = [
                    scan_table[i] for i in scan_rows[jj].tolist()
                ]
            return rows

        try:
            ctx.checkpoint(advance=(sy - dirty_hi) * sx)
        except BudgetExceededError as exc:
            if exc.partial is None:
                exc.partial = PartialDiagram(
                    new_grid,
                    partial_rows(dirty_hi, None, None),
                    None,
                    boundary_exact=True,
                )
            raise

        # Dirty block: an insert first tries the splice fast path —
        # overwrite only the new point's appearance staircase in a copy
        # of the old rows; otherwise re-scan rows [0, dirty_hi) with the
        # delta-form kernel, seeded at the dirty boundary from the
        # dataset alone.
        dirty_rows = np.empty((dirty_hi, sx), dtype=np.int32)
        table = None
        if new_point_id is not None:
            table = _splice_dirty(
                ctx,
                new_grid,
                new_point_id,
                old_store,
                old_table,
                x_origin,
                y_origin,
                dirty_hi,
                dirty_rows,
                partial_rows,
            )
        if table is None:
            row_corners, row_corner_cols = _corner_rows(new_grid)
            upper, diff_events, diff_deltas, table, intern = _seed_state(
                new_grid, dirty_hi
            )

            def on_row(j: int) -> None:
                try:
                    ctx.checkpoint(advance=sx, distinct=len(table))
                except BudgetExceededError as exc:
                    if exc.partial is None:
                        exc.partial = PartialDiagram(
                            new_grid,
                            partial_rows(j, dirty_rows, table),
                            None,
                            boundary_exact=True,
                        )
                    raise

            _scan_rows(
                sx,
                row_corners,
                row_corner_cols,
                0,
                dirty_hi,
                upper,
                diff_events,
                diff_deltas,
                table,
                intern,
                dirty_rows,
                0,
                on_row,
            )
        ctx.count_rows(dirty_hi)
    with ctx.phase("intern"):
        # Treat the clean copy and the re-scan as two chunks of a sharded
        # build: relabel each into scan-order-first-occurrence ids, then
        # merge topmost first — exactly the path that makes process-pool
        # builds byte-identical to serial.
        #
        # The clean block usually gets a cheaper relabel: the old store's
        # table is already in scan-first-occurrence order (every build
        # path guarantees byte-identity with serial), and a column map
        # that never *drops* a column (insert always; delete when the
        # victim shares its x grid line) preserves the relative order of
        # first occurrences — duplicated columns sit adjacent in scan
        # order and cannot reorder anything.  Ascending old id therefore
        # IS first-occurrence order, and a presence mask replaces the
        # O(cells log cells) sort inside relabel_scan_order.  A dropped
        # column can move an id's first occurrence past another's, so
        # that case keeps the general relabel.
        clean_local = None
        if direct_rle:
            # Same presence relabel, computed over run values instead of
            # cells; ``used`` is ascending either way, so the clean ids
            # come out byte-identical to the dense gather's.
            suffix_runs, used, boundary_raw = _rle_suffix_runs(
                old_store.backend, x_origin, y_origin, dirty_hi, sy
            )
            rank = np.zeros(max(1, len(old_table)), dtype=np.int32)
            rank[used] = np.arange(len(used), dtype=np.int32)
            if len(used) == len(old_table):
                clean_table = list(old_table)
            else:
                clean_table = list(
                    map(old_table.__getitem__, used.tolist())
                )
        elif sx >= old_store.shape[0]:
            counts = np.bincount(
                clean_rows.ravel(), minlength=len(old_table)
            )
            used = np.nonzero(counts)[0]
            rank = np.zeros(max(1, len(old_table)), dtype=np.int32)
            rank[used] = np.arange(len(used), dtype=np.int32)
            clean_local = rank[clean_rows]
            if len(used) == len(old_table):
                clean_table = list(old_table)
            else:
                clean_table = list(
                    map(old_table.__getitem__, used.tolist())
                )
        else:
            clean_local, clean_table = relabel_scan_order(
                clean_rows, old_table, flip=True
            )
        clean_table = remap_table(clean_table)
        dirty_local, dirty_table = relabel_scan_order(
            dirty_rows, table, flip=True
        )
        if direct_rle:
            boundary_ids = (
                np.unique(rank[boundary_raw]).tolist()
                if sy > dirty_hi
                else []
            )
            mapping, merged = _merge_tables(
                boundary_ids, clean_table, dirty_table
            )
            dirty_final = mapping[dirty_local]
            rows_out = None
        else:
            rows_out = np.empty((sy, sx), dtype=np.int32)
            merged = _merge_at_boundary(
                clean_local,
                clean_table,
                dirty_local,
                dirty_table,
                dirty_hi,
                rows_out,
            )
        ctx.checkpoint(distinct=len(merged))
    with ctx.phase("assemble"):
        if direct_rle:
            backend = _rle_assemble(
                x_origin, suffix_runs, rank, dirty_final, dirty_hi, sx, sy
            )
            store = ResultStore((sx, sy), backend, merged)
        else:
            store = ResultStore(
                (sx, sy), np.ascontiguousarray(rows_out.T), merged
            )
        updated = SkylineDiagram(
            new_grid,
            store,
            kind="quadrant",
            mask=0,
            algorithm=ctx.report.algorithm,
        )
    return ctx.finish(updated)


def insert_point(
    diagram: SkylineDiagram,
    point: Sequence[float],
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Insert one point, re-scanning only its dirty lower-left rows.

    The new point's id is ``len(old dataset)``.  Only rows strictly below
    the point's y-rank are re-scanned (``build_report.rows_scanned``
    counts exactly those); everything above is a vectorized copy of the
    old store.  The returned diagram's store is byte-identical to a fresh
    serial build over the extended dataset.  ``budget`` checkpoints once
    per re-scanned row; the original diagram is untouched on exhaustion
    (maintenance is copy-on-write) and the raised error carries an exact
    partial over the completed rows.

    >>> from repro.diagram import quadrant_scanning
    >>> updated = insert_point(quadrant_scanning([(5, 5)]), (2, 2))
    >>> updated.result_at((0, 0))
    (1,)
    """
    _check(diagram)
    ctx = BuildContext(
        budget,
        _default_options(diagram, build_options),
        algorithm=f"{diagram.algorithm}+insert",
        kind="maintenance",
        serial_only=True,
    )
    p = as_point(point)
    old = diagram.grid.dataset
    with ctx.phase("rank_space"):
        new_dataset = Dataset([*old.points, p])
        new_grid = Grid(new_dataset)
        new_id = len(old)
        _, ry = new_grid.rank_of(new_id)
        x_origin = _column_origin(diagram.grid.axes[0], new_grid.axes[0])
        y_origin = _column_origin(diagram.grid.axes[1], new_grid.axes[1])
    # Point ids are append-only on insert, so the clean block's table
    # entries carry over verbatim.
    return _rescan_update(
        ctx,
        diagram,
        new_grid,
        x_origin,
        y_origin,
        ry,
        lambda table: table,
        new_point_id=new_id,
    )


def delete_point(
    diagram: SkylineDiagram,
    point_id: int,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Delete one point, re-scanning only its dirty lower-left rows.

    Ids above ``point_id`` shift down by one (the dataset contracts); the
    victim never appears in a clean cell's result (a point is only listed
    where it is a candidate, and its candidate region *is* the dirty
    block), so the clean block carries over with a pure id renumbering.
    ``budget`` checkpoints as in :func:`insert_point`.

    >>> from repro.diagram import quadrant_scanning
    >>> diagram = quadrant_scanning([(1, 1), (2, 2)])
    >>> delete_point(diagram, 0).result_at((0, 0))
    (0,)
    """
    _check(diagram)
    ctx = BuildContext(
        budget,
        _default_options(diagram, build_options),
        algorithm=f"{diagram.algorithm}+delete",
        kind="maintenance",
        serial_only=True,
    )
    old = diagram.grid.dataset
    if not 0 <= point_id < len(old):
        raise QueryError(f"point id {point_id} out of range")
    if len(old) == 1:
        raise QueryError("cannot delete the last point of a diagram")
    with ctx.phase("rank_space"):
        _, victim_ry = diagram.grid.rank_of(point_id)
        remaining = [q for i, q in enumerate(old.points) if i != point_id]
        new_grid = Grid(Dataset(remaining))
        x_origin = _column_origin(diagram.grid.axes[0], new_grid.axes[0])
        y_origin = _column_origin(diagram.grid.axes[1], new_grid.axes[1])
        # New rows whose interval lies below the victim's y grid line are
        # dirty; y_origin is monotone, so they form the prefix of rows
        # mapping to old rows < victim_ry.
        sy = new_grid.shape[1]
        dirty_hi = next(
            (j for j in range(sy) if y_origin[j] >= victim_ry), sy
        )

    def remap_table(table):
        # Results are sorted, so a max id below the victim means no id
        # shifts — keep the tuple (the common case for late victims).
        return [
            result
            if not result or result[-1] < point_id
            else tuple(q - 1 if q > point_id else q for q in result)
            for result in table
        ]

    return _rescan_update(
        ctx, diagram, new_grid, x_origin, y_origin, dirty_hi, remap_table
    )


def apply_ops(
    diagram: SkylineDiagram,
    ops: Sequence[tuple[str, Sequence[float] | int]],
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Apply a batch of updates with *one* union dirty-block re-scan.

    ``ops`` is a sequence of ``("insert", point)`` / ``("delete", id)``
    pairs in journal order, delete ids addressing the journal-prospective
    dataset exactly as the update queue records them.  Instead of ``k``
    sequential maintenance passes the ops compose: the final dataset is
    computed directly, the dirty region is the **union** of every
    surviving op's lower-left block (an insert later deleted cancels
    entirely and dirties nothing), and a single re-scan covers the
    union while the complement carries over from the old store with a
    composed id renumbering.  The result is byte-identical (content
    fingerprint) to applying the ops one at a time — and to a fresh
    serial build over the final dataset.

    >>> from repro.diagram import quadrant_scanning
    >>> d = apply_ops(
    ...     quadrant_scanning([(5, 5), (1, 9)]),
    ...     [("insert", (2, 2)), ("delete", 0)],
    ... )
    >>> d.result_at((0, 0))
    (1,)
    """
    _check(diagram)
    old = diagram.grid.dataset
    # Replay the journal over position labels: survivors keep their
    # relative order, inserts append, and a delete of a still-pending
    # insert cancels the pair.
    labels: list[tuple[bool, int]] = [(False, i) for i in range(len(old))]
    inserted: list = []
    for op, value in ops:
        if op == "insert":
            labels.append((True, len(inserted)))
            inserted.append(as_point(value))
        elif op == "delete":
            idx = int(value)
            if not 0 <= idx < len(labels):
                raise QueryError(f"point id {idx} out of range")
            if len(labels) == 1:
                raise QueryError(
                    "cannot delete the last point of a diagram"
                )
            del labels[idx]
        else:
            raise QueryError(f"unknown update op {op!r}")
    if len(labels) == len(old) and not any(is_new for is_new, _ in labels):
        return diagram  # every op cancelled against another
    ctx = BuildContext(
        budget,
        _default_options(diagram, build_options),
        algorithm=f"{diagram.algorithm}+batch",
        kind="maintenance",
        serial_only=True,
    )
    with ctx.phase("rank_space"):
        points = []
        final_of_old: dict[int, int] = {}
        for pos, (is_new, i) in enumerate(labels):
            if is_new:
                points.append(inserted[i])
            else:
                points.append(old.points[i])
                final_of_old[i] = pos
        new_dataset = Dataset(points)
        new_grid = Grid(new_dataset)
        x_origin = _column_origin(diagram.grid.axes[0], new_grid.axes[0])
        y_origin = _column_origin(diagram.grid.axes[1], new_grid.axes[1])
        sy = new_grid.shape[1]
        # Union of the dirty lower-left blocks: a point only changes
        # results strictly below its y grid line, so the union of row
        # prefixes is the row prefix of the max bound.
        dirty_hi = 0
        for pos, (is_new, _) in enumerate(labels):
            if is_new:
                dirty_hi = max(dirty_hi, new_grid.rank_of(pos)[1])
        for victim in set(range(len(old))) - set(final_of_old):
            victim_ry = diagram.grid.rank_of(victim)[1]
            bound = next(
                (j for j in range(sy) if y_origin[j] >= victim_ry), sy
            )
            dirty_hi = max(dirty_hi, bound)
        # Composed renumbering of surviving old ids (monotone, so the
        # remapped result tuples stay sorted); victims never appear in
        # clean results — their candidate regions are inside the union.
        identity = all(i == pos for i, pos in final_of_old.items())
        shift = np.zeros(max(1, len(old)), dtype=np.int64)
        for i, pos in final_of_old.items():
            shift[i] = pos

    def remap_table(table):
        if identity:
            return table if isinstance(table, list) else list(table)
        return [
            tuple(int(shift[q]) for q in result) for result in table
        ]

    return _rescan_update(
        ctx, diagram, new_grid, x_origin, y_origin, dirty_hi, remap_table
    )
