"""Algorithm 5 — the baseline dynamic skyline diagram.

For every skyline subcell, map all points to the first quadrant of an
interior representative query (``|p - q|`` per axis) and compute the
traditional skyline of the mapped points.  O(n^5) unbounded, or
O(min(s^4, n^4) * n) under a bounded domain — exactly the paper's analysis.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.diagram.base import DynamicDiagram
from repro.geometry.point import Dataset, ensure_dataset
from repro.geometry.subcell import SubcellGrid
from repro.skyline.queries import dynamic_skyline


def dynamic_baseline(
    points: Dataset | Sequence[Sequence[float]],
) -> DynamicDiagram:
    """Build the dynamic skyline diagram with Algorithm 5.

    >>> diagram = dynamic_baseline([(0, 0), (10, 10)])
    >>> diagram.query((1, 1))
    (0,)
    >>> diagram.query((4, 6))   # between the bisectors: both undominated
    (0, 1)
    """
    dataset = ensure_dataset(points)
    subcells = SubcellGrid(dataset)
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    for subcell in subcells.subcells():
        representative = subcells.representative(subcell)
        results[subcell] = dynamic_skyline(dataset, representative)
    return DynamicDiagram(subcells, results, algorithm="baseline")
