"""Algorithm 3 — the scanning skyline-diagram construction (Theorem 1).

Scanning cells from the top-right corner down and left, each cell's skyline
is the saturating multiset expression over its three upper/right neighbours:

``Sky(C_{i,j}) = Sky(C_{i+1,j}) + Sky(C_{i,j+1}) - Sky(C_{i+1,j+1})``

except cells with a point on their upper-right corner, whose skyline is that
point (and its duplicates).  No skyline computation is ever performed.

The paper proves Theorem 1 for points in general position; this
implementation relies on a slightly stronger fact verified in the test
suite: with coordinate compression (tied coordinates share one grid line)
and *saturating* multiset subtraction, the identity holds for arbitrary
inputs, including duplicates.  The key case is a candidate dominated by
both a point on the upper line and a point on the right line — it is then
counted ``1 + 1 - 1`` minus two memberships, and saturation clamps the
−1 to the correct 0.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro._util import multiset_add_sub
from repro.diagram.base import SkylineDiagram
from repro.errors import DimensionalityError
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset


def quadrant_scanning(
    points: Dataset | Sequence[Sequence[float]],
    intern_results: bool = True,
) -> SkylineDiagram:
    """Build the first-quadrant skyline diagram with Algorithm 3.

    ``intern_results`` shares one tuple among equal results and short-cuts
    the multiset expression when neighbours are pointer-identical; it is a
    pure optimization (ablated in E9c) and on by default.

    >>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
    >>> diagram.result_at((0, 0))
    (0, 1, 2)
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError(
            "quadrant_scanning is 2-D; use diagram.highdim for d > 2"
        )
    grid = Grid(dataset)
    sx, sy = grid.shape
    empty: tuple[int, ...] = ()
    # rows[j][i] holds Sky(C_{i,j}); one sentinel row/column of empties
    # stands in for the off-grid neighbours of the outermost cells.
    upper = [empty] * (sx + 1)  # row j+1 while processing row j
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    # Equal results share one tuple: the diagram holds O(n^2) cells but far
    # fewer distinct results, and interning both caps peak memory and makes
    # the frequent result-equality comparisons pointer comparisons.
    interned: dict[tuple[int, ...], tuple[int, ...]] = {empty: empty}
    for j in range(sy - 1, -1, -1):
        current = [empty] * (sx + 1)
        for i in range(sx - 1, -1, -1):
            corner = grid.corner_points((i + 1, j + 1))
            if corner:
                sky = corner  # already a sorted tuple of duplicates
            elif intern_results:
                right = current[i + 1]
                up = upper[i]
                up_right = upper[i + 1]
                if up is up_right:
                    # Common fast path: identical upper neighbours cancel.
                    sky = right
                elif right is up_right:
                    sky = up
                else:
                    sky = multiset_add_sub(right, up, up_right)
                    sky = interned.setdefault(sky, sky)
            else:
                sky = multiset_add_sub(
                    current[i + 1], upper[i], upper[i + 1]
                )
            current[i] = sky
            results[(i, j)] = sky
        upper = current
    return SkylineDiagram(grid, results, kind="quadrant", algorithm="scanning")
