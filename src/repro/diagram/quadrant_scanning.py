"""Algorithm 3 — the scanning skyline-diagram construction (Theorem 1).

Scanning cells from the top-right corner down and left, each cell's skyline
is the saturating multiset expression over its three upper/right neighbours:

``Sky(C_{i,j}) = Sky(C_{i+1,j}) + Sky(C_{i,j+1}) - Sky(C_{i+1,j+1})``

except cells with a point on their upper-right corner, whose skyline is that
point (and its duplicates).  No skyline computation is ever performed.

The paper proves Theorem 1 for points in general position; this
implementation relies on a slightly stronger fact verified in the test
suite: with coordinate compression (tied coordinates share one grid line)
and *saturating* multiset subtraction, the identity holds for arbitrary
inputs, including duplicates.  The key case is a candidate dominated by
both a point on the upper line and a point on the right line — it is then
counted ``1 + 1 - 1`` minus two memberships, and saturation clamps the
−1 to the correct 0.

The default engine operates on interned result *ids* row-at-a-time over the
array-backed :class:`~repro.diagram.store.ResultStore`.  The recurrence
only produces a new value at *event* columns — a point corner on the row's
upper line, or a column where the upper row's id changes (``up == upright``
makes the expression collapse to the right neighbour everywhere else) — so
whole constant runs are filled with one slice assignment, and each event
resolves either to an integer fast path or to the small-delta set identity
``sky = (right − sub) ∪ add`` derived in :func:`quadrant_scanning`.  The
seed dict-based implementation is kept as
:func:`quadrant_scanning_reference` for cross-validation and the E9c/E9d
ablations.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

import numpy as np

from repro._util import multiset_add_sub
from repro.diagram.base import SkylineDiagram
from repro.diagram.store import ResultStore
from repro.errors import BudgetExceededError, DimensionalityError
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset
from repro.resilience import BudgetMeter, BuildBudget, PartialDiagram, as_meter


def quadrant_scanning(
    points: Dataset | Sequence[Sequence[float]],
    intern_results: bool = True,
    budget: BuildBudget | BudgetMeter | None = None,
) -> SkylineDiagram:
    """Build the first-quadrant skyline diagram with Algorithm 3.

    ``intern_results`` selects the id-based array engine (the default);
    turning it off falls back to the plain-tuple reference path — a pure
    ablation arm (E9c) producing an identical diagram.

    ``budget`` bounds the construction cooperatively: the scan checkpoints
    once per completed row, and on exhaustion raises
    :class:`~repro.errors.BudgetExceededError` carrying a
    :class:`~repro.resilience.PartialDiagram` over the rows already built
    (the scan runs top row down, so the completed suffix is exact).  The
    reference path ignores the budget — it exists for ablations, not
    serving.

    >>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
    >>> diagram.result_at((0, 0))
    (0, 1, 2)
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError(
            "quadrant_scanning is 2-D; use diagram.highdim for d > 2"
        )
    if not intern_results:
        return quadrant_scanning_reference(dataset, intern_results=False)
    meter = as_meter(budget)
    grid = Grid(dataset)
    sx, sy = grid.shape

    # Point corners per cell row: the cell (i, j) owns the grid intersection
    # at ranks (i + 1, j + 1), so a point with ranks (rx, ry) is the corner
    # of cell (rx - 1, ry - 1).  Columns are kept descending, the scan order.
    row_corners: list[dict[int, tuple[int, ...]]] = [{} for _ in range(sy)]
    for (rx, ry), pids in grid._corner_index.items():
        row_corners[ry - 1][rx - 1] = pids
    row_corner_cols: list[list[int]] = [
        sorted(cols, reverse=True) for cols in row_corners
    ]

    # Interned results, addressed by id.  ``table`` holds the canonical
    # sorted tuples, on which the recurrence runs directly.  Cell results
    # are always id-*sets* (duplicate points get distinct ids), so the
    # saturating multiset expression ``right + up - up_right`` admits a
    # delta form: writing the upper row's transition at column i as exact
    # set deltas ``up = up_right + add - sub`` (``add = up − up_right`` and
    # ``sub = up_right − up``), a membership-count case split gives
    #
    #     sky = (right − sub) ∪ add
    #
    # — an id of ``add`` is in two additive terms, so one subtraction can
    # never cancel it (1 + 1 − 1, clamped); an id of ``sub`` is subtracted
    # once against at most one addition; all other ids follow ``right``.
    # ``add``/``sub`` are tiny (a point entering/leaving the skyline), so
    # the new result is built by deleting/insorting a couple of ids in the
    # already-sorted right neighbour — no sort, no set objects — and the
    # cell's own deltas against its right neighbour come out in
    # small-operand scans: ``sky − right = add − right`` and
    # ``right − sky = (right ∩ sub) − add``.
    table: list[tuple[int, ...]] = [()]
    intern: dict[tuple[int, ...], int] = {(): 0}
    table_append = table.append
    intern_get = intern.get
    rows = np.empty((sy, sx), dtype=np.int32)  # row j contiguous; .T at end
    # upper[i] holds the id of Sky(C_{i,j+1}); index sx is the off-grid
    # sentinel column whose skyline is empty (id 0), as is the whole
    # conceptual row above the grid.  Runs average only a couple of cells
    # on fragmented diagrams, so rows are plain Python lists: per-cell list
    # writes beat numpy's per-slice overhead at that granularity.
    upper: list[int] = [0] * (sx + 1)
    # Columns (descending) where the upper row's id differs from its right
    # neighbour, with the transition's ``(add, sub)`` delta pair in an
    # aligned list.  The diagram rows are produced right-to-left, so the
    # next row's diff columns fall out of the scan for free: a value can
    # only change where this row had an event.
    diff_events: list[int] = []
    diff_deltas: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    empty: tuple[int, ...] = ()
    for j in range(sy - 1, -1, -1):
        current = [0] * (sx + 1)
        corner_at = row_corners[j]
        corner_cols = row_corner_cols[j]
        nd = len(diff_events)
        nc = len(corner_cols)
        di = 0
        ci = 0
        val = 0
        run_end = sx  # cells in [prev event + 1, run_end) carry ``val``
        next_diff: list[int] = []
        next_diff_append = next_diff.append
        next_deltas: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        next_deltas_append = next_deltas.append
        # Merge the two descending event streams (upper-row diff columns,
        # this row's corner columns) with index pointers; a corner on a
        # diff column consumes both (the corner result wins).
        while di < nd or ci < nc:
            dcol = diff_events[di] if di < nd else -1
            ccol = corner_cols[ci] if ci < nc else -1
            if ccol >= dcol:
                i = ccol
                ci += 1
                if dcol == ccol:
                    di += 1
                corner = corner_at[i]
            else:
                i = dcol
                delta = diff_deltas[di]
                di += 1
                corner = None
            fill = run_end - i - 1
            if fill == 1:
                current[i + 1] = val
            elif fill > 1:
                current[i + 1 : run_end] = [val] * fill
            right = val
            if corner is not None:
                rid = intern_get(corner)
                if rid is None:
                    rid = len(table)
                    table_append(corner)
                    intern[corner] = rid
                if rid != right:
                    right_t = table[right]
                    next_deltas_append(
                        (
                            tuple([e for e in corner if e not in right_t]),
                            tuple([e for e in right_t if e not in corner]),
                        )
                    )
                    next_diff_append(i)
                val = rid
            elif right == upper[i + 1]:
                # right == up_right collapses the expression to ``up``; the
                # upper transition (up != up_right at every diff column) is
                # then this cell's transition verbatim.
                val = upper[i]
                next_deltas_append(delta)
                next_diff_append(i)
            else:
                add, sub = delta
                right_t = table[right]
                if sub:
                    lst = [e for e in right_t if e not in sub]
                else:
                    lst = list(right_t)
                for e in add:
                    # Manual insort keeps the canonical sorted order and
                    # skips ids already inherited from the right neighbour.
                    k = bisect_left(lst, e)
                    if k == len(lst) or lst[k] != e:
                        lst.insert(k, e)
                sky = tuple(lst)
                rid = intern_get(sky)
                if rid is None:
                    rid = len(table)
                    table_append(sky)
                    intern[sky] = rid
                if rid != right:
                    # Deltas are one id in the common case; reuse the tuple.
                    if not add:
                        new_add = empty
                    elif len(add) == 1:
                        new_add = empty if add[0] in right_t else add
                    else:
                        new_add = tuple(
                            [e for e in add if e not in right_t]
                        )
                    if not sub:
                        new_sub = empty
                    elif len(sub) == 1:
                        new_sub = (
                            sub
                            if sub[0] in right_t and sub[0] not in add
                            else empty
                        )
                    else:
                        new_sub = tuple(
                            [
                                e
                                for e in sub
                                if e in right_t and e not in add
                            ]
                        )
                    next_deltas_append((new_add, new_sub))
                    next_diff_append(i)
                val = rid
            current[i] = val
            run_end = i
        if run_end > 0:
            current[0:run_end] = [val] * run_end
        rows[j] = current[:sx]
        if meter is not None:
            try:
                meter.checkpoint(advance=sx, distinct=len(table))
            except BudgetExceededError as exc:
                if exc.partial is None:
                    exc.partial = PartialDiagram(
                        grid,
                        {jj: rows[jj].copy() for jj in range(j, sy)},
                        list(table),
                        boundary_exact=True,
                    )
                raise
        upper = current
        diff_events = next_diff
        diff_deltas = next_deltas
    store = ResultStore((sx, sy), np.ascontiguousarray(rows.T), table)
    return SkylineDiagram(grid, store, kind="quadrant", algorithm="scanning")


def quadrant_scanning_reference(
    points: Dataset | Sequence[Sequence[float]],
    intern_results: bool = True,
) -> SkylineDiagram:
    """The seed dict-based scanning construction, kept as a reference.

    Byte-for-byte the pre-store implementation: one Python dict entry per
    cell, tuple-valued recurrence, optional tuple interning with pointer
    fast paths.  Used to cross-validate the array engine and as the
    baseline arm of the store ablation (E9d) and the PR benchmark.
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError(
            "quadrant_scanning is 2-D; use diagram.highdim for d > 2"
        )
    grid = Grid(dataset)
    sx, sy = grid.shape
    empty: tuple[int, ...] = ()
    # rows[j][i] holds Sky(C_{i,j}); one sentinel row/column of empties
    # stands in for the off-grid neighbours of the outermost cells.
    upper = [empty] * (sx + 1)  # row j+1 while processing row j
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    # Equal results share one tuple: the diagram holds O(n^2) cells but far
    # fewer distinct results, and interning both caps peak memory and makes
    # the frequent result-equality comparisons pointer comparisons.
    interned: dict[tuple[int, ...], tuple[int, ...]] = {empty: empty}
    for j in range(sy - 1, -1, -1):
        current = [empty] * (sx + 1)
        for i in range(sx - 1, -1, -1):
            corner = grid.corner_points((i + 1, j + 1))
            if corner:
                sky = corner  # already a sorted tuple of duplicates
            elif intern_results:
                right = current[i + 1]
                up = upper[i]
                up_right = upper[i + 1]
                if up is up_right:
                    # Common fast path: identical upper neighbours cancel.
                    sky = right
                elif right is up_right:
                    sky = up
                else:
                    sky = multiset_add_sub(right, up, up_right)
                    sky = interned.setdefault(sky, sky)
            else:
                sky = multiset_add_sub(
                    current[i + 1], upper[i], upper[i + 1]
                )
            current[i] = sky
            results[(i, j)] = sky
        upper = current
    return SkylineDiagram(grid, results, kind="quadrant", algorithm="scanning")
