"""Algorithm 3 — the scanning skyline-diagram construction (Theorem 1).

Scanning cells from the top-right corner down and left, each cell's skyline
is the saturating multiset expression over its three upper/right neighbours:

``Sky(C_{i,j}) = Sky(C_{i+1,j}) + Sky(C_{i,j+1}) - Sky(C_{i+1,j+1})``

except cells with a point on their upper-right corner, whose skyline is that
point (and its duplicates).  No skyline computation is ever performed.

The paper proves Theorem 1 for points in general position; this
implementation relies on a slightly stronger fact verified in the test
suite: with coordinate compression (tied coordinates share one grid line)
and *saturating* multiset subtraction, the identity holds for arbitrary
inputs, including duplicates.  The key case is a candidate dominated by
both a point on the upper line and a point on the right line — it is then
counted ``1 + 1 - 1`` minus two memberships, and saturation clamps the
−1 to the correct 0.

The default engine operates on interned result *ids* row-at-a-time over the
array-backed :class:`~repro.diagram.store.ResultStore`.  The recurrence
only produces a new value at *event* columns — a point corner on the row's
upper line, or a column where the upper row's id changes (``up == upright``
makes the expression collapse to the right neighbour everywhere else) — so
whole constant runs are filled with one slice assignment, and each event
resolves either to an integer fast path or to the small-delta set identity
``sky = (right − sub) ∪ add`` derived in :func:`_scan_rows`.  The
seed dict-based implementation is kept as
:func:`quadrant_scanning_reference` for cross-validation and the E9c/E9d
ablations.

Construction runs through the shared
:class:`~repro.diagram.pipeline.BuildContext` pipeline.  Because a row
depends only on the row above it, and any row can be recomputed directly
from the dataset (:func:`_seed_state` — a single staircase sweep over the
points above it), the row scan shards into independent ``[lo, hi)`` row
chunks executed by the context's
:class:`~repro.diagram.pipeline.RowExecutor`.  Each chunk seeds its own
entering state, scans top-down, and is relabeled into scan-order ids
(:func:`~repro.diagram.pipeline.relabel_scan_order`) so the merged grid
and interned table are byte-identical to the serial engine's.

``BuildOptions(executor="vectorized")`` selects a third engine built on
a different decomposition of the same recurrence.  In rank space every
cell result is a monotone staircase: the groups visible from the cell,
columns ascending, row-ranks strictly descending — i.e. a path in a
*cons forest* where each node is ``(group, parent)`` and a node's parent
is the staircase member at the nearest column to the right whose rank is
strictly smaller (the classic previous-smaller-element structure).  Row
over row that structure is persistent: the corners entering a row carry
the globally minimal rank, so only columns left of the rightmost new
corner change, their new parent link is ``min(old link, nearest new
corner to the right)``, and everything else is inherited — all of which
is a handful of ``searchsorted``/``minimum`` array ops per row
(:func:`_quadrant_vectorized`).  Interning then vanishes from the build
entirely: every emitted node is provably distinct (each contains a
corner group introduced in its own row — see :func:`_vector_finalize`),
so node ids in scan order *are* the serial engine's intern ids, the
forest itself becomes the result table
(:class:`~repro.diagram.store.ConsForestTable`, materialized lazily),
and the id grid materializes with one run-length ``np.repeat`` decode
(:func:`_vector_decode`).  An optional numba JIT (:func:`_fill_runs`)
compiles the decode; without numba the numpy fallback produces the
identical artifact.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence

import numpy as np

from repro._util import multiset_add_sub
from repro.diagram.base import SkylineDiagram
from repro.diagram.pipeline import (
    BuildContext,
    BuildOptions,
    merge_chunk_tables,
    relabel_scan_order,
)
from repro.diagram.store import (
    ConsForestTable,
    ResultStore,
    RLEBackend,
    _multi_arange,
)
from repro.errors import BudgetExceededError, DimensionalityError
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset
from repro.resilience import BudgetMeter, BuildBudget, PartialDiagram

try:  # pragma: no cover - numba is an optional accelerator
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # the container path: pure numpy, same artifact
    _njit = None
    HAVE_NUMBA = False


def _corner_rows(
    grid: Grid,
) -> tuple[list[dict[int, tuple[int, ...]]], list[list[int]]]:
    """Point corners per cell row, with columns descending (the scan order).

    The cell (i, j) owns the grid intersection at ranks (i + 1, j + 1), so
    a point with ranks (rx, ry) is the corner of cell (rx - 1, ry - 1).
    """
    sx, sy = grid.shape
    row_corners: list[dict[int, tuple[int, ...]]] = [{} for _ in range(sy)]
    for (rx, ry), pids in grid._corner_index.items():
        row_corners[ry - 1][rx - 1] = pids
    row_corner_cols: list[list[int]] = [
        sorted(cols, reverse=True) for cols in row_corners
    ]
    return row_corners, row_corner_cols


def _seed_state(
    grid: Grid, hi: int
) -> tuple[
    list[int],
    list[int],
    list[tuple[tuple[int, ...], tuple[int, ...]]],
    list[tuple[int, ...]],
    dict[tuple[int, ...], int],
]:
    """Scan state entering row ``hi - 1``: row ``hi`` rebuilt independently.

    The top-down scan carries three things between rows: the upper row's
    ids, the columns where that row's value changes, and the change's
    ``(add, sub)`` deltas.  A chunk worker entering the grid at row
    ``hi - 1`` recomputes all three for row ``hi`` from the dataset alone:
    ``Sky(C_{i,hi})`` is the rank-space staircase of the points strictly
    above the row (ranks ``ry > hi``) restricted to columns right of
    ``i``, so one descending sweep maintaining the staircase yields every
    transition — the entrant group is the exact ``add``, the staircase
    members it evicts are the exact ``sub``.

    Returns ``(upper, diff_events, diff_deltas, table, intern)`` with
    table/intern holding the seed row's interned values (id 0 is the empty
    result, as everywhere).
    """
    sx, sy = grid.shape
    table: list[tuple[int, ...]] = [()]
    intern: dict[tuple[int, ...], int] = {(): 0}
    upper: list[int] = [0] * (sx + 1)
    diff_events: list[int] = []
    diff_deltas: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    if hi >= sy:  # the conceptual row above the grid: all empty
        return upper, diff_events, diff_deltas, table, intern
    # Candidates, bucketed by cell column.  Within a column only the lowest
    # duplicate group can appear in the row (it dominates the others).
    by_col: dict[int, tuple[int, tuple[int, ...]]] = {}
    for (rx, ry), pids in grid._corner_index.items():
        if ry > hi:
            col = rx - 1
            cur = by_col.get(col)
            if cur is None or ry < cur[0]:
                by_col[col] = (ry, pids)
    stair: list[tuple[int, tuple[int, ...]]] = []  # ry ascending
    transitions: list[tuple[int, int]] = []  # (column, interned id), desc
    for col in sorted(by_col, reverse=True):
        min_ry, group = by_col[col]
        evicted: list[int] = []
        while stair and stair[-1][0] >= min_ry:
            evicted.extend(stair.pop()[1])
        stair.append((min_ry, group))
        sky = tuple(sorted(pid for _, pids in stair for pid in pids))
        rid = intern.get(sky)
        if rid is None:
            rid = len(table)
            table.append(sky)
            intern[sky] = rid
        diff_events.append(col)
        diff_deltas.append((group, tuple(sorted(evicted))))
        transitions.append((col, rid))
    prev_col: int | None = None
    prev_rid = 0
    for col, rid in transitions:
        if prev_col is not None:
            for i in range(col + 1, prev_col + 1):
                upper[i] = prev_rid
        prev_col, prev_rid = col, rid
    if prev_col is not None:
        for i in range(prev_col + 1):
            upper[i] = prev_rid
    return upper, diff_events, diff_deltas, table, intern


def _scan_rows(
    sx: int,
    row_corners: list[dict[int, tuple[int, ...]]],
    row_corner_cols: list[list[int]],
    lo: int,
    hi: int,
    upper: list[int],
    diff_events: list[int],
    diff_deltas: list[tuple[tuple[int, ...], tuple[int, ...]]],
    table: list[tuple[int, ...]],
    intern: dict[tuple[int, ...], int],
    rows: np.ndarray,
    base: int,
    on_row=None,
) -> None:
    """The delta-form row kernel: scan rows ``hi - 1`` down to ``lo``.

    Cell results are always id-*sets* (duplicate points get distinct ids),
    so the saturating multiset expression ``right + up - up_right`` admits
    a delta form: writing the upper row's transition at column i as exact
    set deltas ``up = up_right + add - sub`` (``add = up − up_right`` and
    ``sub = up_right − up``), a membership-count case split gives

        sky = (right − sub) ∪ add

    — an id of ``add`` is in two additive terms, so one subtraction can
    never cancel it (1 + 1 − 1, clamped); an id of ``sub`` is subtracted
    once against at most one addition; all other ids follow ``right``.
    ``add``/``sub`` are tiny (a point entering/leaving the skyline), so
    the new result is built by deleting/insorting a couple of ids in the
    already-sorted right neighbour — no sort, no set objects — and the
    cell's own deltas against its right neighbour come out in
    small-operand scans: ``sky − right = add − right`` and
    ``right − sky = (right ∩ sub) − add``.

    Row ``j`` is written to ``rows[j - base]``; ``on_row(j)`` runs after
    each completed row (the serial path's budget checkpoint).
    """
    table_append = table.append
    intern_get = intern.get
    empty: tuple[int, ...] = ()
    for j in range(hi - 1, lo - 1, -1):
        current = [0] * (sx + 1)
        corner_at = row_corners[j]
        corner_cols = row_corner_cols[j]
        nd = len(diff_events)
        nc = len(corner_cols)
        di = 0
        ci = 0
        val = 0
        run_end = sx  # cells in [prev event + 1, run_end) carry ``val``
        next_diff: list[int] = []
        next_diff_append = next_diff.append
        next_deltas: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
        next_deltas_append = next_deltas.append
        # Merge the two descending event streams (upper-row diff columns,
        # this row's corner columns) with index pointers; a corner on a
        # diff column consumes both (the corner result wins).
        while di < nd or ci < nc:
            dcol = diff_events[di] if di < nd else -1
            ccol = corner_cols[ci] if ci < nc else -1
            if ccol >= dcol:
                i = ccol
                ci += 1
                if dcol == ccol:
                    di += 1
                corner = corner_at[i]
            else:
                i = dcol
                delta = diff_deltas[di]
                di += 1
                corner = None
            fill = run_end - i - 1
            if fill == 1:
                current[i + 1] = val
            elif fill > 1:
                current[i + 1 : run_end] = [val] * fill
            right = val
            if corner is not None:
                rid = intern_get(corner)
                if rid is None:
                    rid = len(table)
                    table_append(corner)
                    intern[corner] = rid
                if rid != right:
                    right_t = table[right]
                    next_deltas_append(
                        (
                            tuple([e for e in corner if e not in right_t]),
                            tuple([e for e in right_t if e not in corner]),
                        )
                    )
                    next_diff_append(i)
                val = rid
            elif right == upper[i + 1]:
                # right == up_right collapses the expression to ``up``; the
                # upper transition (up != up_right at every diff column) is
                # then this cell's transition verbatim.
                val = upper[i]
                next_deltas_append(delta)
                next_diff_append(i)
            else:
                add, sub = delta
                right_t = table[right]
                if sub:
                    lst = [e for e in right_t if e not in sub]
                else:
                    lst = list(right_t)
                for e in add:
                    # Manual insort keeps the canonical sorted order and
                    # skips ids already inherited from the right neighbour.
                    k = bisect_left(lst, e)
                    if k == len(lst) or lst[k] != e:
                        lst.insert(k, e)
                sky = tuple(lst)
                rid = intern_get(sky)
                if rid is None:
                    rid = len(table)
                    table_append(sky)
                    intern[sky] = rid
                if rid != right:
                    # Deltas are one id in the common case; reuse the tuple.
                    if not add:
                        new_add = empty
                    elif len(add) == 1:
                        new_add = empty if add[0] in right_t else add
                    else:
                        new_add = tuple(
                            [e for e in add if e not in right_t]
                        )
                    if not sub:
                        new_sub = empty
                    elif len(sub) == 1:
                        new_sub = (
                            sub
                            if sub[0] in right_t and sub[0] not in add
                            else empty
                        )
                    else:
                        new_sub = tuple(
                            [
                                e
                                for e in sub
                                if e in right_t and e not in add
                            ]
                        )
                    next_deltas_append((new_add, new_sub))
                    next_diff_append(i)
                val = rid
            current[i] = val
            run_end = i
        if run_end > 0:
            current[0:run_end] = [val] * run_end
        rows[j - base] = current[:sx]
        if on_row is not None:
            on_row(j)
        upper = current
        diff_events = next_diff
        diff_deltas = next_deltas


#: "No smaller-rank staircase member to the right" sentinel column for
#: the vectorized engine's previous-smaller-element links.
_PSE_NONE = np.iinfo(np.int64).max


def _vector_corner_rows(
    row_corners: list[dict[int, tuple[int, ...]]],
) -> tuple[list, list[tuple[int, ...]]]:
    """Array form of the corner index for the vectorized engine.

    Returns ``(per_row, group_tuples)``: ``per_row[j]`` is ``None`` for
    rows without corners, else ``(cols, gidx)`` int64 arrays ascending
    by cell column, and ``group_tuples[g]`` is group ``g``'s sorted
    point-id tuple — the corner tuples the serial engine interns
    verbatim.
    """
    per_row: list = [None] * len(row_corners)
    group_tuples: list[tuple[int, ...]] = []
    g = 0
    for j, corner_at in enumerate(row_corners):
        if not corner_at:
            continue
        cols = sorted(corner_at)
        group_tuples.extend(corner_at[col] for col in cols)
        per_row[j] = (
            np.asarray(cols, dtype=np.int64),
            np.arange(g, g + len(cols), dtype=np.int64),
        )
        g += len(cols)
    return per_row, group_tuples


def _vector_finalize(
    prov_rep_chunks: list[np.ndarray],
    prov_par_chunks: list[np.ndarray],
    group_tuples: list[tuple[int, ...]],
) -> ConsForestTable:
    """Assemble the emitted cons forest into the interned result table.

    Node ``k`` (ids ascend in scan order: rows top-down, columns
    right-to-left within a row) is the staircase ``group prov_rep[k]``
    consed onto parent ``prov_par[k]`` (``-1`` is the empty staircase).
    No deduplication pass is needed — the nodes are pairwise distinct:

    * A row's rightmost new corner carries the globally minimal row rank
      seen so far, so no later staircase member ever pops it and it is
      visible from every changed column.  Every node therefore contains
      a corner group introduced in its own row.
    * Point ids partition across corner groups, so a node can never
      equal one emitted in an earlier row (whose members all predate
      this row's groups).
    * Within a row, each changed column's staircase leads with the group
      *at* that column, which no staircase further right contains.

    Table id ``k + 1`` is therefore exactly the serial engine's intern
    id (the empty result is pre-seeded as id 0), and the table itself
    is the forest, materialized lazily by :class:`ConsForestTable`.
    """
    if not prov_rep_chunks:
        empty = np.empty(0, dtype=np.int64)
        return ConsForestTable(empty, empty, group_tuples)
    return ConsForestTable(
        np.concatenate(prov_rep_chunks),
        np.concatenate(prov_par_chunks),
        group_tuples,
    )


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba exists

    @_njit(cache=True)
    def _fill_runs_jit(values, counts, out):  # pragma: no cover
        pos = 0
        for k in range(values.shape[0]):
            v = values[k]
            for _ in range(counts[k]):
                out[pos] = v
                pos += 1


def _fill_runs(values: list[int], counts: list[int], total: int) -> np.ndarray:
    """Run-length decode ``values``/``counts`` into a flat int32 array.

    The one inner kernel worth a JIT: with numba present it runs as
    compiled machine code, without it ``np.repeat`` does the same fill at
    C speed — the artifact is identical either way.
    """
    vals = np.asarray(values, dtype=np.int32)
    lens = np.asarray(counts, dtype=np.int64)
    if HAVE_NUMBA:  # pragma: no cover - optional accelerator
        out = np.empty(total, dtype=np.int32)
        _fill_runs_jit(vals, lens, out)
        return out
    return np.repeat(vals, lens)


def _vector_decode(
    run_vals: list[np.ndarray],
    run_cnts: list[np.ndarray],
    nrows: int,
    sx: int,
) -> np.ndarray:
    """Materialize the scanned rows as a dense ``(nrows, sx)`` final-id grid.

    ``run_vals``/``run_cnts`` hold one run-length row per scanned row in
    scan order (top row first), with cons-forest node values (``-1`` the
    empty result).  Final ids are node ids shifted by one, so the whole
    grid decodes with one add and one ``np.repeat``, returned with row
    indices ascending.
    """
    vals = np.concatenate(run_vals) + 1
    cnts = np.concatenate(run_cnts)
    return _fill_runs(vals, cnts, nrows * sx).reshape(nrows, sx)[::-1]


def _emit_state_events(
    act_cols: np.ndarray,
    act_node: np.ndarray,
    limit: int,
    y: int,
    events: tuple[list, list, list, list],
) -> None:
    """Append change events for the active-state runs with ``x <= limit``.

    The native-RLE emission records the diagram as *change events* in
    store orientation: one event says column ``x`` reads node ``val``
    from trailing coordinate ``y`` up to that column's next event.  The
    current staircase state *is* a run encoding over ``x`` (run ``i``
    covers ``(act_cols[i-1], act_cols[i]]`` with node ``act_node[i]``,
    the final run the empty result), and a corner row changes every
    column up to its rightmost corner and none beyond — so the run
    prefix clipped at ``limit``, stamped with the boundary coordinate
    ``y``, captures exactly the cells whose value the corner row ends.
    """
    m = act_cols.size
    t = int(np.searchsorted(act_cols, limit, side="left")) if m else 0
    starts = np.empty(t + 1, dtype=np.int64)
    starts[0] = 0
    starts[1:] = act_cols[:t] + 1
    stops = np.empty(t + 1, dtype=np.int64)
    stops[:t] = act_cols[:t]
    stops[t] = limit
    vals = np.empty(t + 1, dtype=np.int64)
    vals[:t] = act_node[:t]
    vals[t] = act_node[t] if t < m else -1
    ev_xa, ev_len, ev_val, ev_y = events
    ev_xa.append(starts)
    ev_len.append(stops - starts + 1)
    ev_val.append(vals)
    ev_y.append(np.full(starts.size, y, dtype=np.int64))


def _events_to_rle(
    events: tuple[list, list, list, list],
    sx: int,
    width: int,
    y0: int = 0,
) -> RLEBackend:
    """Assemble accumulated change events into a packed x-major RLE grid.

    Expanding each event interval to per-column points and sorting by
    ``(x, y)`` *is* the run-length encoding of the transposed grid: run
    ``i`` of store row ``x`` holds its event's final id (node id plus
    one) from its own ``y`` up to the next event's ``y`` (``width`` for
    the last — the y-``0`` seeding event guarantees every column has
    one).  The event count equals the run count, so assembly stays
    proportional to the *compressed* size — the dense grid is never
    materialized.
    """
    lens = np.concatenate(events[1])
    xs = _multi_arange(np.concatenate(events[0]), lens)
    ys = np.repeat(np.concatenate(events[3]), lens) - y0
    vs = np.repeat(np.concatenate(events[2]), lens)
    order = np.lexsort((ys, xs))
    ys = ys[order]
    vs = vs[order]
    row_nruns = np.bincount(xs, minlength=sx).astype(np.int32)
    row_start = np.concatenate(
        ([0], np.cumsum(row_nruns[:-1], dtype=np.int64))
    )
    ends = np.empty(ys.size, dtype=np.int32)
    if ys.size:
        ends[:-1] = ys[1:]
        ends[row_start + row_nruns - 1] = width
    vals = (vs + 1).astype(np.int32)
    packed = RLEBackend((sx, width), row_start, row_nruns, vals, ends)
    return packed._dedup_rows()


def _quadrant_vectorized(
    ctx: BuildContext,
    grid: Grid,
    row_corners: list[dict[int, tuple[int, ...]]],
) -> SkylineDiagram:
    """The ``executor="vectorized"`` build path of :func:`quadrant_scanning`.

    Maintains the staircase structure of the module docstring as parallel
    arrays over the active columns — ``act_rep`` the visible group per
    column, ``act_pse`` the column of the nearest smaller-rank staircase
    member to the right (:data:`_PSE_NONE` when none), ``act_node`` the
    provisional cons node — and updates all of them with a handful of
    array ops per row: corners entering a row carry the minimal rank, so
    they reset their column's link, every active column left of the
    rightmost corner re-links to ``min(old link, nearest new corner)``,
    and columns to the right are untouched.  Each changed column emits
    one provisional node; rows emit their run-length encoding for the
    final decode.

    The budget checkpoint fires once per row block (``chunk_rows`` rows,
    default :data:`~repro.diagram.pipeline.VECTOR_BLOCK_ROWS`) with
    ``advance = rows * sx``, so cooperative cancellation and the
    fault-injection hook keep working at block granularity; ``distinct``
    reports the emitted node count plus the empty result — the exact
    table size, since every node is a distinct interned result.  On
    exhaustion the completed row suffix is finalized into an
    exact :class:`~repro.resilience.PartialDiagram`, same as the serial
    path.
    """
    sx, sy = grid.shape
    native_rle = ctx.options.backend == "rle"
    events: tuple[list, list, list, list] = ([], [], [], [])
    with ctx.phase("rank_space"):
        per_row, group_tuples = _vector_corner_rows(row_corners)
    sent = _PSE_NONE
    act_cols = np.empty(0, dtype=np.int64)
    act_rep = np.empty(0, dtype=np.int64)
    act_pse = np.empty(0, dtype=np.int64)
    act_node = np.empty(0, dtype=np.int64)
    next_id = 0
    prov_rep_chunks: list[np.ndarray] = []
    prov_par_chunks: list[np.ndarray] = []
    run_vals: list[np.ndarray] = []
    run_cnts: list[np.ndarray] = []
    left_edge = np.asarray([-1], dtype=np.int64)
    right_edge = np.asarray([sx - 1], dtype=np.int64)
    rows_done = 0
    with ctx.phase("row_scan"):
        for lo, hi in ctx.row_chunks(sy, topmost_first=True):
            for j in range(hi - 1, lo - 1, -1):
                corners = per_row[j]
                if native_rle and corners is not None and j + 1 < sy:
                    _emit_state_events(
                        act_cols, act_node, int(corners[0][-1]), j + 1, events
                    )
                if corners is not None:
                    ccols, cg = corners
                    m0 = act_cols.size
                    if m0:
                        pos = np.searchsorted(act_cols, ccols)
                        exist = (
                            act_cols[np.minimum(pos, m0 - 1)] == ccols
                        )
                        if exist.any():
                            act_rep[pos[exist]] = cg[exist]
                        new = ~exist
                        if new.any():
                            ins = pos[new]
                            act_cols = np.insert(act_cols, ins, ccols[new])
                            act_rep = np.insert(act_rep, ins, cg[new])
                            act_pse = np.insert(act_pse, ins, sent)
                            act_node = np.insert(act_node, ins, -1)
                    else:
                        act_cols = ccols.copy()
                        act_rep = cg.copy()
                        act_pse = np.full(ccols.size, sent, dtype=np.int64)
                        act_node = np.full(ccols.size, -1, dtype=np.int64)
                    nchanged = int(
                        np.searchsorted(act_cols, ccols[-1], side="right")
                    )
                    cpos = np.searchsorted(act_cols, ccols)
                    nidx = np.searchsorted(
                        ccols, act_cols[:nchanged], side="right"
                    )
                    nsc = np.where(
                        nidx < ccols.size,
                        ccols[np.minimum(nidx, ccols.size - 1)],
                        sent,
                    )
                    pse = np.minimum(act_pse[:nchanged], nsc)
                    pse[cpos] = sent
                    act_pse[:nchanged] = pse
                    act_node[:nchanged] = np.arange(
                        next_id + nchanged - 1,
                        next_id - 1,
                        -1,
                        dtype=np.int64,
                    )
                    ppos = np.minimum(
                        np.searchsorted(act_cols, pse), act_cols.size - 1
                    )
                    pnode = np.where(pse != sent, act_node[ppos], -1)
                    prov_rep_chunks.append(act_rep[nchanged - 1 :: -1].copy())
                    prov_par_chunks.append(pnode[::-1].copy())
                    next_id += nchanged
                if not native_rle:
                    run_vals.append(np.append(act_node, np.int64(-1)))
                    run_cnts.append(
                        np.diff(
                            np.concatenate((left_edge, act_cols, right_edge))
                        )
                    )
            rows_done = sy - lo
            ctx.count_rows(hi - lo)
            try:
                ctx.checkpoint(advance=(hi - lo) * sx, distinct=next_id + 1)
            except BudgetExceededError as exc:
                if exc.partial is None:
                    table = _vector_finalize(
                        prov_rep_chunks, prov_par_chunks, group_tuples
                    )
                    if native_rle:
                        _emit_state_events(
                            act_cols, act_node, sx - 1, lo, events
                        )
                        packed = _events_to_rle(events, sx, sy - lo, y0=lo)
                        dense = np.ascontiguousarray(packed.to_dense().T)
                    else:
                        dense = _vector_decode(
                            run_vals, run_cnts, rows_done, sx
                        )
                    exc.partial = PartialDiagram(
                        grid,
                        {jj: dense[jj - lo] for jj in range(lo, sy)},
                        table,
                        boundary_exact=True,
                    )
                raise
    with ctx.phase("intern"):
        table = _vector_finalize(
            prov_rep_chunks, prov_par_chunks, group_tuples
        )
        ctx.checkpoint(distinct=len(table))
    with ctx.phase("assemble"):
        if native_rle:
            _emit_state_events(act_cols, act_node, sx - 1, 0, events)
            store = ResultStore(
                (sx, sy), _events_to_rle(events, sx, sy), table
            )
        else:
            rows = _vector_decode(run_vals, run_cnts, sy, sx)
            store = ResultStore(
                (sx, sy),
                np.ascontiguousarray(rows.T.astype(np.int32, copy=False)),
                table,
            )
        diagram = SkylineDiagram(
            grid, store, kind="quadrant", algorithm="scanning"
        )
    return ctx.finish(diagram)


def _quadrant_chunk_job(job):
    """One row-chunk worker: picklable, sees only points + a row range.

    Rebuilds the grid (rank compression is cheap relative to the scan),
    seeds the entering state for its chunk, scans, and relabels its local
    ids into scan-order-first-occurrence so chunks merge deterministically.
    """
    points, lo, hi = job
    grid = Grid(Dataset(points))
    sx, _ = grid.shape
    row_corners, row_corner_cols = _corner_rows(grid)
    upper, diff_events, diff_deltas, table, intern = _seed_state(grid, hi)
    local = np.empty((hi - lo, sx), dtype=np.int32)
    _scan_rows(
        sx,
        row_corners,
        row_corner_cols,
        lo,
        hi,
        upper,
        diff_events,
        diff_deltas,
        table,
        intern,
        local,
        lo,
    )
    return relabel_scan_order(local, table, flip=True)


def quadrant_scanning(
    points: Dataset | Sequence[Sequence[float]],
    intern_results: bool = True,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Build the first-quadrant skyline diagram with Algorithm 3.

    ``intern_results`` selects the id-based array engine (the default);
    turning it off falls back to the plain-tuple reference path — a pure
    ablation arm (E9c) producing an identical diagram.

    ``budget`` bounds the construction cooperatively: the scan checkpoints
    once per completed row, and on exhaustion raises
    :class:`~repro.errors.BudgetExceededError` carrying a
    :class:`~repro.resilience.PartialDiagram` over the rows already built
    (the scan runs top row down, so the completed suffix is exact).  The
    reference path ignores the budget — it exists for ablations, not
    serving.

    ``build_options`` selects the row executor (serial, process pool or
    vectorized) and chunking; sharded builds produce byte-identical
    stores but carry no partial on interruption (chunk results are not a
    serving-ordered row prefix), so the degradation ladder falls through
    to scratch.  The vectorized executor runs the staircase array engine
    (:func:`_quadrant_vectorized`), checkpoints the budget once per row
    block, and keeps the serial partial-on-exhaustion contract.

    >>> diagram = quadrant_scanning([(2, 8), (5, 4), (9, 1)])
    >>> diagram.result_at((0, 0))
    (0, 1, 2)
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError(
            "quadrant_scanning is 2-D; use diagram.highdim for d > 2"
        )
    if not intern_results:
        return quadrant_scanning_reference(dataset, intern_results=False)
    ctx = BuildContext(
        budget,
        build_options,
        algorithm="scanning",
        kind="quadrant",
        vector_capable=True,
    )
    with ctx.phase("rank_space"):
        grid = Grid(dataset)
        sx, sy = grid.shape
        row_corners, row_corner_cols = _corner_rows(grid)
    if ctx.executor.name == "vectorized":
        return _quadrant_vectorized(ctx, grid, row_corners)
    chunks = ctx.row_chunks(sy, topmost_first=True)
    rows = np.empty((sy, sx), dtype=np.int32)
    if len(chunks) == 1:
        # Unsharded fast path: per-row checkpoints carry an exact partial
        # over the completed row suffix.
        table: list[tuple[int, ...]] = [()]
        intern: dict[tuple[int, ...], int] = {(): 0}

        def on_row(j: int) -> None:
            try:
                ctx.checkpoint(advance=sx, distinct=len(table))
            except BudgetExceededError as exc:
                if exc.partial is None:
                    exc.partial = PartialDiagram(
                        grid,
                        {jj: rows[jj].copy() for jj in range(j, sy)},
                        list(table),
                        boundary_exact=True,
                    )
                raise

        with ctx.phase("row_scan"):
            _scan_rows(
                sx,
                row_corners,
                row_corner_cols,
                0,
                sy,
                [0] * (sx + 1),
                [],
                [],
                table,
                intern,
                rows,
                0,
                on_row,
            )
            ctx.count_rows(sy)
        with ctx.phase("intern"):
            ctx.checkpoint(distinct=len(table))
    else:
        pts = dataset.points
        jobs = [(pts, lo, hi) for lo, hi in chunks]

        def on_chunk(job, result) -> None:
            _, lo, hi = job
            ctx.count_rows(hi - lo)
            for _ in range(hi - lo):
                ctx.checkpoint(advance=sx)

        with ctx.phase("row_scan"):
            parts = ctx.executor.run(_quadrant_chunk_job, jobs, on_chunk)
        with ctx.phase("intern"):
            table = merge_chunk_tables(chunks, parts, rows)
            ctx.checkpoint(distinct=len(table))
    with ctx.phase("assemble"):
        store = ResultStore((sx, sy), np.ascontiguousarray(rows.T), table)
        diagram = SkylineDiagram(
            grid, store, kind="quadrant", algorithm="scanning"
        )
    return ctx.finish(diagram)


def quadrant_scanning_reference(
    points: Dataset | Sequence[Sequence[float]],
    intern_results: bool = True,
) -> SkylineDiagram:
    """The seed dict-based scanning construction, kept as a reference.

    Byte-for-byte the pre-store implementation: one Python dict entry per
    cell, tuple-valued recurrence, optional tuple interning with pointer
    fast paths.  Used to cross-validate the array engine and as the
    baseline arm of the store ablation (E9d) and the PR benchmark.
    """
    dataset = ensure_dataset(points)
    if dataset.dim != 2:
        raise DimensionalityError(
            "quadrant_scanning is 2-D; use diagram.highdim for d > 2"
        )
    grid = Grid(dataset)
    sx, sy = grid.shape
    empty: tuple[int, ...] = ()
    # rows[j][i] holds Sky(C_{i,j}); one sentinel row/column of empties
    # stands in for the off-grid neighbours of the outermost cells.
    upper = [empty] * (sx + 1)  # row j+1 while processing row j
    results: dict[tuple[int, int], tuple[int, ...]] = {}
    # Equal results share one tuple: the diagram holds O(n^2) cells but far
    # fewer distinct results, and interning both caps peak memory and makes
    # the frequent result-equality comparisons pointer comparisons.
    interned: dict[tuple[int, ...], tuple[int, ...]] = {empty: empty}
    for j in range(sy - 1, -1, -1):
        current = [empty] * (sx + 1)
        for i in range(sx - 1, -1, -1):
            corner = grid.corner_points((i + 1, j + 1))
            if corner:
                sky = corner  # already a sorted tuple of duplicates
            elif intern_results:
                right = current[i + 1]
                up = upper[i]
                up_right = upper[i + 1]
                if up is up_right:
                    # Common fast path: identical upper neighbours cancel.
                    sky = right
                elif right is up_right:
                    sky = up
                else:
                    sky = multiset_add_sub(right, up, up_right)
                    sky = interned.setdefault(sky, sky)
            else:
                sky = multiset_add_sub(
                    current[i + 1], upper[i], upper[i + 1]
                )
            current[i] = sky
            results[(i, j)] = sky
        upper = current
    return SkylineDiagram(grid, results, kind="quadrant", algorithm="scanning")
