"""Diagram result types shared by all construction algorithms.

A :class:`SkylineDiagram` stores, for every skyline cell of a
:class:`~repro.geometry.grid.Grid`, the canonical query result (a sorted
tuple of point ids).  Two diagrams compare equal iff they were built over the
same points and assign the same result to every cell — which is how the four
construction algorithms are cross-validated.

A :class:`DynamicDiagram` is the same thing over the bisector-augmented
:class:`~repro.geometry.subcell.SubcellGrid`.

Both classes are backed by a compact
:class:`~repro.diagram.store.ResultStore` — an ``int32`` id grid plus an
interned result table — rather than a ``dict[cell, result]``.  Construction
algorithms may pass either a store (the fast path) or the historical dict,
which is interned on entry; :meth:`SkylineDiagram.cells` keeps the dict-like
iteration view.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Iterator

from repro.diagram.store import ResultStore
from repro.errors import QueryError
from repro.geometry.grid import Grid
from repro.geometry.polyomino import Polyomino
from repro.geometry.subcell import SubcellGrid

Cell = tuple[int, ...]
Result = tuple[int, ...]


class SkylineDiagram:
    """A quadrant or global skyline diagram over the skyline-cell grid.

    Parameters
    ----------
    grid:
        The compressed grid the diagram was built over.
    results:
        Either a :class:`~repro.diagram.store.ResultStore` of shape
        ``grid.shape`` or a mapping from cell index tuple to canonical
        result tuple covering every cell of the grid.
    kind:
        ``"quadrant"`` or ``"global"``.
    mask:
        Quadrant orientation bitmask (0 = the paper's first quadrant); kept
        ``0`` for global diagrams.
    algorithm:
        Name of the construction algorithm, for provenance.
    """

    __slots__ = ("grid", "kind", "mask", "algorithm", "_store", "_polyominos")

    def __init__(
        self,
        grid: Grid,
        results: dict[Cell, Result] | ResultStore,
        kind: str = "quadrant",
        mask: int = 0,
        algorithm: str = "unknown",
    ) -> None:
        if kind not in ("quadrant", "global"):
            raise ValueError(f"unknown diagram kind {kind!r}")
        if isinstance(results, ResultStore):
            if results.shape != grid.shape:
                raise ValueError(
                    f"store of shape {results.shape} cell results for grid "
                    f"shape {grid.shape} cells"
                )
            store = results
        else:
            if len(results) != grid.num_cells:
                raise ValueError(
                    f"{len(results)} cell results for {grid.num_cells} cells"
                )
            store = ResultStore.from_dict(grid.shape, results)
        self.grid = grid
        self.kind = kind
        self.mask = mask
        self.algorithm = algorithm
        self._store = store
        self._polyominos: list[Polyomino] | None = None

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality of the underlying grid."""
        return self.grid.dim

    @property
    def store(self) -> ResultStore:
        """The compact array-backed result store."""
        return self._store

    def result_at(self, cell: Cell) -> Result:
        """Canonical skyline result of one cell."""
        return self._store.result_at(cell)

    def cells(self) -> Iterator[tuple[Cell, Result]]:
        """Iterate over ``(cell, result)`` pairs (row-major order)."""
        return self._store.items()

    def query(self, query: Sequence[float]) -> Result:
        """Answer a skyline query by point location (O(d log n))."""
        return self._store.result_at(self.grid.locate(query))

    def query_batch(
        self, queries: Sequence[Sequence[float]]
    ) -> list[Result]:
        """Answer many skyline queries in one vectorized pass.

        Point location runs as one ``np.searchsorted`` per axis over the
        whole batch and the per-query results are reads of the interned
        table — the serving-side hot path.  Agrees with :meth:`query`
        query-for-query, including the lower-side tie rule on grid lines.
        """
        return self._store.lookup_batch(self.grid.locate_batch(queries))

    def query_points(self, query: Sequence[float]) -> list[tuple[float, ...]]:
        """Like :meth:`query` but returning point coordinates."""
        return [self.grid.dataset[i] for i in self.query(query)]

    def distinct_results(self) -> set[Result]:
        """The set of distinct skyline results across all cells."""
        return self._store.distinct_results()

    def polyominos(self) -> list[Polyomino]:
        """Merge cells into skyline polyominos (2-D only; cached)."""
        if self.dim != 2:
            raise QueryError("polyomino merging is only defined for 2-D grids")
        if self._polyominos is None:
            from repro.diagram.merge import merge_cells

            self._polyominos = merge_cells(
                self.grid.shape, self._store.to_dict()
            )
        return self._polyominos

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SkylineDiagram):
            return NotImplemented
        return (
            self.grid.axes == other.grid.axes
            and self.kind == other.kind
            and self.mask == other.mask
            and self._store == other._store
        )

    def __hash__(self) -> int:  # pragma: no cover - diagrams rarely hashed
        return hash((self.grid.axes, self.kind, self.mask))

    def __repr__(self) -> str:
        return (
            f"SkylineDiagram(kind={self.kind!r}, algorithm={self.algorithm!r}, "
            f"n={len(self.grid.dataset)}, cells={self.grid.num_cells}, "
            f"distinct={self._store.distinct_count})"
        )


class DynamicDiagram:
    """A dynamic skyline diagram over the skyline-subcell grid (2-D)."""

    __slots__ = ("subcells", "algorithm", "_store", "_polyominos")

    def __init__(
        self,
        subcells: SubcellGrid,
        results: dict[tuple[int, int], Result] | ResultStore,
        algorithm: str = "unknown",
    ) -> None:
        if isinstance(results, ResultStore):
            if results.shape != subcells.shape:
                raise ValueError(
                    f"store of shape {results.shape} subcell results for "
                    f"{subcells.num_subcells} subcells"
                )
            store = results
        else:
            if len(results) != subcells.num_subcells:
                raise ValueError(
                    f"{len(results)} subcell results for "
                    f"{subcells.num_subcells} subcells"
                )
            store = ResultStore.from_dict(subcells.shape, results)
        self.subcells = subcells
        self.algorithm = algorithm
        self._store = store
        self._polyominos: list[Polyomino] | None = None

    # ------------------------------------------------------------------
    @property
    def grid(self) -> SubcellGrid:
        """Alias kept for symmetry with :class:`SkylineDiagram`."""
        return self.subcells

    @property
    def store(self) -> ResultStore:
        """The compact array-backed result store."""
        return self._store

    def result_at(self, subcell: tuple[int, int]) -> Result:
        """Canonical dynamic skyline result of one subcell."""
        return self._store.result_at(subcell)

    def cells(self) -> Iterator[tuple[tuple[int, int], Result]]:
        """Iterate over ``(subcell, result)`` pairs (row-major order)."""
        return self._store.items()

    def query(self, query: Sequence[float]) -> Result:
        """Answer a dynamic skyline query by point location.

        Exact for queries strictly inside a subcell; a query lying exactly
        on a bisector (a measure-zero event where mapped coordinates tie) is
        answered with the lower-side subcell's result.
        """
        return self._store.result_at(self.subcells.locate(query))

    def query_batch(
        self, queries: Sequence[Sequence[float]]
    ) -> list[Result]:
        """Answer many dynamic skyline queries in one vectorized pass."""
        return self._store.lookup_batch(self.subcells.locate_batch(queries))

    def query_points(self, query: Sequence[float]) -> list[tuple[float, ...]]:
        """Like :meth:`query` but returning point coordinates."""
        return [self.subcells.dataset[i] for i in self.query(query)]

    def distinct_results(self) -> set[Result]:
        """The set of distinct dynamic skyline results across subcells."""
        return self._store.distinct_results()

    def polyominos(self) -> list[Polyomino]:
        """Merge subcells into polyominos (cached)."""
        if self._polyominos is None:
            from repro.diagram.merge import merge_cells

            self._polyominos = merge_cells(
                self.subcells.shape, self._store.to_dict()
            )
        return self._polyominos

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicDiagram):
            return NotImplemented
        return (
            self.subcells.axes == other.subcells.axes
            and self._store == other._store
        )

    def __hash__(self) -> int:  # pragma: no cover - diagrams rarely hashed
        return hash(self.subcells.axes)

    def __repr__(self) -> str:
        return (
            f"DynamicDiagram(algorithm={self.algorithm!r}, "
            f"n={len(self.subcells.dataset)}, "
            f"subcells={self.subcells.num_subcells}, "
            f"distinct={self._store.distinct_count})"
        )
