"""Diagram result types shared by all construction algorithms.

A :class:`SkylineDiagram` stores, for every skyline cell of a
:class:`~repro.geometry.grid.Grid`, the canonical query result (a sorted
tuple of point ids).  Two diagrams compare equal iff they were built over the
same points and assign the same result to every cell — which is how the four
construction algorithms are cross-validated.

A :class:`DynamicDiagram` is the same thing over the bisector-augmented
:class:`~repro.geometry.subcell.SubcellGrid`.

Lookups are *boundary-exact*: a query lying exactly on a grid line gets
the same answer as from-scratch evaluation.  Every grid edge is owned by
(closed on) exactly one of its two adjacent cells per axis — the lower
cell for non-reflected axes, the upper cell for reflected quadrant axes
(:attr:`SkylineDiagram.edge_ownership`); global and dynamic diagrams,
whose boundary results can differ from both adjacent cells, resolve
boundary queries from the union of the adjacent cells' results (plus the
bisector contributors for dynamic diagrams) — a constant number of O(1)
store reads followed by a skyline over that small candidate set, never a
full recomputation.

Both classes are backed by a compact
:class:`~repro.diagram.store.ResultStore` — an ``int32`` id grid plus an
interned result table — rather than a ``dict[cell, result]``.  Construction
algorithms may pass either a store (the fast path) or the historical dict,
which is interned on entry; :meth:`SkylineDiagram.cells` keeps the dict-like
iteration view.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Iterator

import numpy as np

from repro._util import multiset_add_sub
from repro.diagram.store import ResultStore
from repro.errors import AuditError, QueryError, SerializationError
from repro.geometry.grid import Grid, as_query_array
from repro.geometry.polyomino import Polyomino
from repro.geometry.subcell import SubcellGrid

Cell = tuple[int, ...]
Result = tuple[int, ...]


class SkylineDiagram:
    """A quadrant or global skyline diagram over the skyline-cell grid.

    Parameters
    ----------
    grid:
        The compressed grid the diagram was built over.
    results:
        Either a :class:`~repro.diagram.store.ResultStore` of shape
        ``grid.shape`` or a mapping from cell index tuple to canonical
        result tuple covering every cell of the grid.
    kind:
        ``"quadrant"`` or ``"global"``.
    mask:
        Quadrant orientation bitmask (0 = the paper's first quadrant); kept
        ``0`` for global diagrams.
    algorithm:
        Name of the construction algorithm, for provenance.
    """

    __slots__ = (
        "grid",
        "kind",
        "mask",
        "algorithm",
        "build_report",
        "_store",
        "_polyominos",
    )

    def __init__(
        self,
        grid: Grid,
        results: dict[Cell, Result] | ResultStore,
        kind: str = "quadrant",
        mask: int = 0,
        algorithm: str = "unknown",
    ) -> None:
        if kind not in ("quadrant", "global"):
            raise ValueError(f"unknown diagram kind {kind!r}")
        if isinstance(results, ResultStore):
            if results.shape != grid.shape:
                raise ValueError(
                    f"store of shape {results.shape} cell results for grid "
                    f"shape {grid.shape} cells"
                )
            store = results
        else:
            if len(results) != grid.num_cells:
                raise ValueError(
                    f"{len(results)} cell results for {grid.num_cells} cells"
                )
            store = ResultStore.from_dict(grid.shape, results)
        self.grid = grid
        self.kind = kind
        self.mask = mask
        self.algorithm = algorithm
        # Per-build telemetry (a pipeline BuildReport) attached by
        # BuildContext.finish(); None for diagrams built outside the
        # pipeline (reference paths, deserialization).
        self.build_report = None
        self._store = store
        self._polyominos: list[Polyomino] | None = None

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality of the underlying grid."""
        return self.grid.dim

    @property
    def store(self) -> ResultStore:
        """The compact array-backed result store."""
        return self._store

    def result_at(self, cell: Cell) -> Result:
        """Canonical skyline result of one cell."""
        return self._store.result_at(cell)

    def cells(self) -> Iterator[tuple[Cell, Result]]:
        """Iterate over ``(cell, result)`` pairs (row-major order)."""
        return self._store.items()

    @property
    def edge_ownership(self) -> tuple[str, ...]:
        """Which adjacent cell owns (is closed on) each axis's grid lines.

        ``"lower"``/``"upper"`` mean a single cell owns the edge and plain
        point location with that tie side is boundary-exact; ``"mixed"``
        (global diagrams) means a boundary query's result can differ from
        both adjacent cells and is resolved from their candidate union.
        """
        if self.kind == "quadrant":
            return tuple(
                "upper" if self.mask >> d & 1 else "lower"
                for d in range(self.dim)
            )
        return tuple("mixed" for _ in range(self.dim))

    def query(self, query: Sequence[float]) -> Result:
        """Answer a skyline query by point location (O(d log n)).

        Boundary-exact: agrees with from-scratch evaluation everywhere,
        including queries exactly on grid lines.  Quadrant diagrams get
        this for free from the per-axis closed side (candidates and mapped
        distances on the closed side match the boundary's non-strict
        Definition 3 semantics exactly); global diagrams resolve boundary
        queries from the adjacent cells' candidate union.
        """
        if self.kind == "quadrant":
            return self._store.result_at(
                self.grid.locate(query, upper_mask=self.mask)
            )
        cell = self.grid.locate(query)
        bits = self.grid.boundary_axes(query, cell)
        if bits:
            return self._boundary_result(query, cell, bits)
        return self._store.result_at(cell)

    def _boundary_result(
        self, query: Sequence[float], cell: Cell, bits: int
    ) -> Result:
        """Exact global result for a query on the grid lines in ``bits``.

        Per quadrant, the boundary result equals the result stored on the
        quadrant's closed side, so the true global result is covered by
        the union of the ``2^b`` adjacent cells; one restricted skyline
        pass over that candidate set recovers it exactly.
        """
        axes = [d for d in range(self.dim) if bits >> d & 1]
        candidates = self._store.union_at_corners(cell, axes)
        from repro.skyline.queries import global_skyline_among

        return global_skyline_among(self.grid.dataset, candidates, query)

    def query_batch(
        self, queries: Sequence[Sequence[float]]
    ) -> list[Result]:
        """Answer many skyline queries in one vectorized pass.

        Point location runs as one ``np.searchsorted`` per axis over the
        whole batch and the per-query results are reads of the interned
        table — the serving-side hot path.  Agrees with :meth:`query`
        query-for-query: quadrant diagrams use the per-axis closed side
        directly in ``searchsorted``; for global diagrams the (rare) rows
        exactly on a grid line are detected vectorized and resolved per
        row from the adjacent cells' candidate union.
        """
        if self.kind == "quadrant":
            return self._store.lookup_batch(
                self.grid.locate_batch(queries, upper_mask=self.mask)
            )
        q = as_query_array(queries, self.dim)
        cells, boundary = self.grid.locate_batch(q, return_boundary=True)
        results = self._store.lookup_batch(cells)
        if boundary.any():
            for r in np.nonzero(boundary.any(axis=1))[0].tolist():
                bits = 0
                for d in range(self.dim):
                    if boundary[r, d]:
                        bits |= 1 << d
                results[r] = self._boundary_result(
                    tuple(q[r].tolist()), tuple(cells[r].tolist()), bits
                )
        return results

    def query_points(self, query: Sequence[float]) -> list[tuple[float, ...]]:
        """Like :meth:`query` but returning point coordinates."""
        return [self.grid.dataset[i] for i in self.query(query)]

    def distinct_results(self) -> set[Result]:
        """The set of distinct skyline results across all cells."""
        return self._store.distinct_results()

    def polyominos(self) -> list[Polyomino]:
        """Merge cells into skyline polyominos (2-D only; cached)."""
        if self.dim != 2:
            raise QueryError("polyomino merging is only defined for 2-D grids")
        if self._polyominos is None:
            from repro.diagram.merge import merge_cells

            self._polyominos = merge_cells(
                self.grid.shape, self._store.to_dict()
            )
        return self._polyominos

    # ------------------------------------------------------------------
    def audit(self, level: str = "structure", sample_stride: int = 7) -> str:
        """Self-check the diagram; return the store's content fingerprint.

        ``structure`` verifies the store invariants (id bounds, canonical
        interned table, intern-map consistency) plus, for first-quadrant
        2-D diagrams, the Theorem-1 scanning recurrence on a deterministic
        cell sample — each sampled cell must equal the saturating multiset
        expression over its upper/right neighbours, which subsumes the
        per-cell staircase monotonicity law.  ``sampled``/``full``
        additionally recompute cells from scratch via
        :func:`~repro.diagram.verify.validate_diagram`.

        Raises :class:`~repro.errors.AuditError` on any violation.
        """
        fingerprint = self._store.audit(num_points=len(self.grid.dataset))
        self._audit_semantics(level, sample_stride)
        return fingerprint

    def _audit_semantics(self, level: str, sample_stride: int) -> None:
        if self.kind == "quadrant" and self.mask == 0 and self.dim == 2:
            self._audit_recurrence(sample_stride)
        if level != "structure":
            from repro.diagram.verify import validate_diagram

            try:
                validate_diagram(
                    self, level=level, sample_stride=sample_stride
                )
            except SerializationError as exc:
                raise AuditError(str(exc)) from exc

    def _audit_recurrence(self, sample_stride: int) -> None:
        """Check ``Sky(C_ij) = sat(right + up - upright)`` on a cell sample."""
        grid = self.grid
        store = self._store
        sx, sy = grid.shape
        ids = store.ids
        table = store.table
        empty: Result = ()

        def result(i: int, j: int) -> Result:
            if i >= sx or j >= sy:
                return empty
            return table[int(ids[i, j])]

        stride = max(1, sample_stride)
        index = 0
        for i in range(sx):
            for j in range(sy):
                index += 1
                if stride > 1 and index % stride:
                    continue
                corner = grid.corner_points((i + 1, j + 1))
                if corner:
                    expected = corner
                else:
                    expected = multiset_add_sub(
                        result(i + 1, j), result(i, j + 1),
                        result(i + 1, j + 1),
                    )
                if result(i, j) != expected:
                    raise AuditError(
                        f"cell {(i, j)}: stored {result(i, j)}, scanning "
                        f"recurrence gives {expected}"
                    )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SkylineDiagram):
            return NotImplemented
        return (
            self.grid.axes == other.grid.axes
            and self.kind == other.kind
            and self.mask == other.mask
            and self._store == other._store
        )

    def __hash__(self) -> int:  # pragma: no cover - diagrams rarely hashed
        return hash((self.grid.axes, self.kind, self.mask))

    def __repr__(self) -> str:
        return (
            f"SkylineDiagram(kind={self.kind!r}, algorithm={self.algorithm!r}, "
            f"n={len(self.grid.dataset)}, cells={self.grid.num_cells}, "
            f"distinct={self._store.distinct_count})"
        )


class DynamicDiagram:
    """A dynamic skyline diagram over the skyline-subcell grid (2-D)."""

    __slots__ = (
        "subcells",
        "algorithm",
        "build_report",
        "_store",
        "_polyominos",
    )

    def __init__(
        self,
        subcells: SubcellGrid,
        results: dict[tuple[int, int], Result] | ResultStore,
        algorithm: str = "unknown",
    ) -> None:
        if isinstance(results, ResultStore):
            if results.shape != subcells.shape:
                raise ValueError(
                    f"store of shape {results.shape} subcell results for "
                    f"{subcells.num_subcells} subcells"
                )
            store = results
        else:
            if len(results) != subcells.num_subcells:
                raise ValueError(
                    f"{len(results)} subcell results for "
                    f"{subcells.num_subcells} subcells"
                )
            store = ResultStore.from_dict(subcells.shape, results)
        self.subcells = subcells
        self.algorithm = algorithm
        self.build_report = None
        self._store = store
        self._polyominos: list[Polyomino] | None = None

    # ------------------------------------------------------------------
    @property
    def grid(self) -> SubcellGrid:
        """Alias kept for symmetry with :class:`SkylineDiagram`."""
        return self.subcells

    @property
    def store(self) -> ResultStore:
        """The compact array-backed result store."""
        return self._store

    def result_at(self, subcell: tuple[int, int]) -> Result:
        """Canonical dynamic skyline result of one subcell."""
        return self._store.result_at(subcell)

    def cells(self) -> Iterator[tuple[tuple[int, int], Result]]:
        """Iterate over ``(subcell, result)`` pairs (row-major order)."""
        return self._store.items()

    @property
    def edge_ownership(self) -> tuple[str, str]:
        """Dynamic grid lines are ``"mixed"``: ties resolve from both sides."""
        return ("mixed", "mixed")

    def query(self, query: Sequence[float]) -> Result:
        """Answer a dynamic skyline query by point location.

        Boundary-exact: a query exactly on a point line or pair bisector
        (where mapped coordinates tie) is resolved from the adjacent
        subcells' results plus the line's contributing points, not by
        recomputation — mapped-distance ties on a boundary can only
        involve the points whose line or bisector *is* that boundary.
        """
        subcell = self.subcells.locate(query)
        bits = self.subcells.boundary_axes(query, subcell)
        if bits:
            return self._boundary_result(query, subcell, bits)
        return self._store.result_at(subcell)

    def _boundary_result(
        self, query: Sequence[float], subcell: tuple[int, int], bits: int
    ) -> Result:
        """Exact dynamic result for a query on the grid lines in ``bits``.

        Every member of the true boundary result either survives in an
        adjacent subcell or is mapped-identical (at the boundary) to a
        survivor — and two distinct points with tied mapped distance have
        the query on their pair bisector, making both of them recorded
        contributors of that grid value.  The union of adjacent results
        and boundary contributors therefore covers the true result, and
        one restricted dynamic skyline recovers it exactly.
        """
        from repro.skyline.queries import dynamic_skyline_among

        axes = [d for d in range(2) if bits >> d & 1]
        candidates = set(self._store.union_at_corners(subcell, axes))
        for d in axes:
            candidates.update(
                self.subcells.boundary_contributors(d, subcell[d] + 1)
            )
        return dynamic_skyline_among(
            self.subcells.dataset, sorted(candidates), query
        )

    def query_batch(
        self, queries: Sequence[Sequence[float]]
    ) -> list[Result]:
        """Answer many dynamic skyline queries in one vectorized pass.

        Agrees with :meth:`query` query-for-query: rows exactly on a grid
        line are detected vectorized and resolved per row from the
        adjacent subcells and boundary contributors.
        """
        q = as_query_array(queries, 2)
        cells, boundary = self.subcells.locate_batch(q, return_boundary=True)
        results = self._store.lookup_batch(cells)
        if boundary.any():
            for r in np.nonzero(boundary.any(axis=1))[0].tolist():
                bits = int(boundary[r, 0]) | int(boundary[r, 1]) << 1
                results[r] = self._boundary_result(
                    tuple(q[r].tolist()), tuple(cells[r].tolist()), bits
                )
        return results

    def query_points(self, query: Sequence[float]) -> list[tuple[float, ...]]:
        """Like :meth:`query` but returning point coordinates."""
        return [self.subcells.dataset[i] for i in self.query(query)]

    def distinct_results(self) -> set[Result]:
        """The set of distinct dynamic skyline results across subcells."""
        return self._store.distinct_results()

    def polyominos(self) -> list[Polyomino]:
        """Merge subcells into polyominos (cached)."""
        if self._polyominos is None:
            from repro.diagram.merge import merge_cells

            self._polyominos = merge_cells(
                self.subcells.shape, self._store.to_dict()
            )
        return self._polyominos

    def audit(self, level: str = "structure", sample_stride: int = 7) -> str:
        """Self-check the diagram; return the store's content fingerprint.

        ``structure`` verifies the store invariants plus the dynamic-only
        law that no subcell's skyline is empty; ``sampled``/``full``
        recompute subcells from scratch.  Raises
        :class:`~repro.errors.AuditError` on any violation.
        """
        fingerprint = self._store.audit(
            num_points=len(self.subcells.dataset)
        )
        for rid, result in enumerate(self._store.table):
            if not result:
                raise AuditError(
                    f"table[{rid}]: dynamic skylines are never empty"
                )
        if level != "structure":
            from repro.diagram.verify import validate_diagram

            try:
                validate_diagram(
                    self, level=level, sample_stride=sample_stride
                )
            except SerializationError as exc:
                raise AuditError(str(exc)) from exc
        return fingerprint

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicDiagram):
            return NotImplemented
        return (
            self.subcells.axes == other.subcells.axes
            and self._store == other._store
        )

    def __hash__(self) -> int:  # pragma: no cover - diagrams rarely hashed
        return hash(self.subcells.axes)

    def __repr__(self) -> str:
        return (
            f"DynamicDiagram(algorithm={self.algorithm!r}, "
            f"n={len(self.subcells.dataset)}, "
            f"subcells={self.subcells.num_subcells}, "
            f"distinct={self._store.distinct_count})"
        )
