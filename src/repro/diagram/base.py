"""Diagram result types shared by all construction algorithms.

A :class:`SkylineDiagram` stores, for every skyline cell of a
:class:`~repro.geometry.grid.Grid`, the canonical query result (a sorted
tuple of point ids).  Two diagrams compare equal iff they were built over the
same points and assign the same result to every cell — which is how the four
construction algorithms are cross-validated.

A :class:`DynamicDiagram` is the same thing over the bisector-augmented
:class:`~repro.geometry.subcell.SubcellGrid`.

Both classes are thin wrappers around the shared lookup runtime: every
query — single, vectorized batch, boundary-exact detour — delegates to
one :class:`~repro.query.kernel.QueryKernel`, parameterized only by
orientation/edge-ownership mode (``closed_edge`` for quadrant/skyband,
``global_union`` for global, ``dynamic_union`` for dynamic diagrams).
Lookups are *boundary-exact*: a query lying exactly on a grid line gets
the same answer as from-scratch evaluation.  Every grid edge is owned by
(closed on) exactly one of its two adjacent cells per axis — the lower
cell for non-reflected axes, the upper cell for reflected quadrant axes
(:attr:`SkylineDiagram.edge_ownership`); global and dynamic diagrams,
whose boundary results can differ from both adjacent cells, resolve
boundary queries from the union of the adjacent cells' results (plus the
bisector contributors for dynamic diagrams) — a constant number of O(1)
store reads followed by a skyline over that small candidate set, never a
full recomputation.

Both classes are backed by a compact
:class:`~repro.diagram.store.ResultStore` — an ``int32`` id grid plus an
interned result table — rather than a ``dict[cell, result]``.  Construction
algorithms may pass either a store (the fast path) or the historical dict,
which is interned on entry; :meth:`SkylineDiagram.cells` keeps the dict-like
iteration view.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Iterator

from repro._util import multiset_add_sub
from repro.diagram.store import ResultStore
from repro.errors import AuditError, QueryError, SerializationError
from repro.geometry.grid import Grid
from repro.geometry.polyomino import Polyomino
from repro.geometry.subcell import SubcellGrid
from repro.query.kernel import QueryKernel

Cell = tuple[int, ...]
Result = tuple[int, ...]


class _StoreBackedDiagram:
    """Shared plumbing behind both diagram classes.

    Subclasses own construction, equality, and the semantic audit hook
    (:meth:`_audit_semantics`, overridden e.g. by ``SkybandDiagram``);
    every lookup goes through the one shared
    :class:`~repro.query.kernel.QueryKernel` that
    :meth:`_make_kernel` configures per diagram flavour.
    """

    __slots__ = ()

    # -- subclass contract --------------------------------------------
    def _make_kernel(self) -> QueryKernel:
        raise NotImplementedError

    def _audit_semantics(self, level: str, sample_stride: int) -> None:
        raise NotImplementedError

    # -- store views ---------------------------------------------------
    @property
    def store(self) -> ResultStore:
        """The compact array-backed result store."""
        return self._store

    def result_at(self, cell: Cell) -> Result:
        """Canonical skyline result of one cell."""
        return self._store.result_at(cell)

    def cells(self) -> Iterator[tuple[Cell, Result]]:
        """Iterate over ``(cell, result)`` pairs (row-major order)."""
        return self._store.items()

    def distinct_results(self) -> set[Result]:
        """The set of distinct results across all cells."""
        return self._store.distinct_results()

    # -- the query runtime ---------------------------------------------
    @property
    def kernel(self) -> QueryKernel:
        """The diagram's lookup kernel (created lazily, then cached)."""
        kernel = self._kernel
        if kernel is None:
            kernel = self._kernel = self._make_kernel()
        return kernel

    def query(self, query: Sequence[float]) -> Result:
        """Answer one query by point location (O(d log n)).

        Boundary-exact: agrees with from-scratch evaluation everywhere,
        including queries exactly on grid lines.  Quadrant diagrams get
        this for free from the per-axis closed side; global and dynamic
        diagrams resolve boundary queries from the adjacent cells'
        candidate union (see :class:`~repro.query.kernel.QueryKernel`).
        """
        return self.kernel.query(query)

    def query_batch(
        self, queries: Sequence[Sequence[float]]
    ) -> list[Result]:
        """Answer many queries in one vectorized point-location pass.

        One ``np.searchsorted`` per axis over the whole batch plus a
        fancy-indexed gather from the store — the serving-side hot path.
        Agrees with :meth:`query` query-for-query; the (rare) rows
        exactly on a grid line are detected vectorized and resolved per
        row by the kernel's boundary resolution.
        """
        return self.kernel.query_batch(queries)

    def query_points(self, query: Sequence[float]) -> list[tuple[float, ...]]:
        """Like :meth:`query` but returning point coordinates."""
        return [self.grid.dataset[i] for i in self.query(query)]

    # -- polyominos ----------------------------------------------------
    def polyominos(self) -> list[Polyomino]:
        """Merge cells into skyline polyominos (2-D only; cached)."""
        if len(self._store.shape) != 2:
            raise QueryError("polyomino merging is only defined for 2-D grids")
        if self._polyominos is None:
            from repro.diagram.merge import merge_cells

            self._polyominos = merge_cells(
                self._store.shape, self._store.to_dict()
            )
        return self._polyominos

    # -- audits --------------------------------------------------------
    def audit(self, level: str = "structure", sample_stride: int = 7) -> str:
        """Self-check the diagram; return the store's content fingerprint.

        ``structure`` verifies the store invariants (id bounds, canonical
        interned table, intern-map consistency) plus each diagram
        flavour's own semantic laws (:meth:`_audit_semantics`);
        ``sampled``/``full`` additionally recompute cells from scratch
        via :func:`~repro.diagram.verify.validate_diagram`.  Raises
        :class:`~repro.errors.AuditError` on any violation.
        """
        fingerprint = self._store.audit(num_points=len(self.grid.dataset))
        self._audit_semantics(level, sample_stride)
        return fingerprint

    def _validate(self, level: str, sample_stride: int) -> None:
        """Shared from-scratch recomputation step of the audit."""
        if level != "structure":
            from repro.diagram.verify import validate_diagram

            try:
                validate_diagram(
                    self, level=level, sample_stride=sample_stride
                )
            except SerializationError as exc:
                raise AuditError(str(exc)) from exc


class SkylineDiagram(_StoreBackedDiagram):
    """A quadrant or global skyline diagram over the skyline-cell grid.

    Parameters
    ----------
    grid:
        The compressed grid the diagram was built over.
    results:
        Either a :class:`~repro.diagram.store.ResultStore` of shape
        ``grid.shape`` or a mapping from cell index tuple to canonical
        result tuple covering every cell of the grid.
    kind:
        ``"quadrant"`` or ``"global"``.
    mask:
        Quadrant orientation bitmask (0 = the paper's first quadrant); kept
        ``0`` for global diagrams.
    algorithm:
        Name of the construction algorithm, for provenance.
    """

    __slots__ = (
        "grid",
        "kind",
        "mask",
        "algorithm",
        "build_report",
        "_store",
        "_polyominos",
        "_kernel",
    )

    def __init__(
        self,
        grid: Grid,
        results: dict[Cell, Result] | ResultStore,
        kind: str = "quadrant",
        mask: int = 0,
        algorithm: str = "unknown",
    ) -> None:
        if kind not in ("quadrant", "global"):
            raise ValueError(f"unknown diagram kind {kind!r}")
        if isinstance(results, ResultStore):
            if results.shape != grid.shape:
                raise ValueError(
                    f"store of shape {results.shape} cell results for grid "
                    f"shape {grid.shape} cells"
                )
            store = results
        else:
            if len(results) != grid.num_cells:
                raise ValueError(
                    f"{len(results)} cell results for {grid.num_cells} cells"
                )
            store = ResultStore.from_dict(grid.shape, results)
        self.grid = grid
        self.kind = kind
        self.mask = mask
        self.algorithm = algorithm
        # Per-build telemetry (a pipeline BuildReport) attached by
        # BuildContext.finish(); None for diagrams built outside the
        # pipeline (reference paths, deserialization).
        self.build_report = None
        self._store = store
        self._polyominos: list[Polyomino] | None = None
        self._kernel: QueryKernel | None = None

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        """Dimensionality of the underlying grid."""
        return self.grid.dim

    @property
    def edge_ownership(self) -> tuple[str, ...]:
        """Which adjacent cell owns (is closed on) each axis's grid lines.

        ``"lower"``/``"upper"`` mean a single cell owns the edge and plain
        point location with that tie side is boundary-exact; ``"mixed"``
        (global diagrams) means a boundary query's result can differ from
        both adjacent cells and is resolved from their candidate union.
        """
        if self.kind == "quadrant":
            return tuple(
                "upper" if self.mask >> d & 1 else "lower"
                for d in range(self.dim)
            )
        return tuple("mixed" for _ in range(self.dim))

    def _make_kernel(self) -> QueryKernel:
        if self.kind == "quadrant":
            return QueryKernel(
                self.grid, self._store, "closed_edge", upper_mask=self.mask
            )
        return QueryKernel(self.grid, self._store, "global_union")

    # ------------------------------------------------------------------
    def _audit_semantics(self, level: str, sample_stride: int) -> None:
        if self.kind == "quadrant" and self.mask == 0 and self.dim == 2:
            self._audit_recurrence(sample_stride)
        self._validate(level, sample_stride)

    def _audit_recurrence(self, sample_stride: int) -> None:
        """Check ``Sky(C_ij) = sat(right + up - upright)`` on a cell sample."""
        grid = self.grid
        store = self._store
        sx, sy = grid.shape
        id_at = store.backend.id_at
        # table_view, not store.table: a health sweep over a lazily
        # interned (vectorized-built) diagram must not upgrade it.
        table = store.table_view()
        empty: Result = ()

        def result(i: int, j: int) -> Result:
            if i >= sx or j >= sy:
                return empty
            return table[id_at((i, j))]

        stride = max(1, sample_stride)
        index = 0
        for i in range(sx):
            for j in range(sy):
                index += 1
                if stride > 1 and index % stride:
                    continue
                corner = grid.corner_points((i + 1, j + 1))
                if corner:
                    expected = corner
                else:
                    expected = multiset_add_sub(
                        result(i + 1, j), result(i, j + 1),
                        result(i + 1, j + 1),
                    )
                if result(i, j) != expected:
                    raise AuditError(
                        f"cell {(i, j)}: stored {result(i, j)}, scanning "
                        f"recurrence gives {expected}"
                    )

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SkylineDiagram):
            return NotImplemented
        return (
            self.grid.axes == other.grid.axes
            and self.kind == other.kind
            and self.mask == other.mask
            and self._store == other._store
        )

    def __hash__(self) -> int:  # pragma: no cover - diagrams rarely hashed
        return hash((self.grid.axes, self.kind, self.mask))

    def __repr__(self) -> str:
        return (
            f"SkylineDiagram(kind={self.kind!r}, algorithm={self.algorithm!r}, "
            f"n={len(self.grid.dataset)}, cells={self.grid.num_cells}, "
            f"distinct={self._store.distinct_count})"
        )


class DynamicDiagram(_StoreBackedDiagram):
    """A dynamic skyline diagram over the skyline-subcell grid (2-D)."""

    __slots__ = (
        "subcells",
        "algorithm",
        "build_report",
        "_store",
        "_polyominos",
        "_kernel",
    )

    def __init__(
        self,
        subcells: SubcellGrid,
        results: dict[tuple[int, int], Result] | ResultStore,
        algorithm: str = "unknown",
    ) -> None:
        if isinstance(results, ResultStore):
            if results.shape != subcells.shape:
                raise ValueError(
                    f"store of shape {results.shape} subcell results for "
                    f"{subcells.num_subcells} subcells"
                )
            store = results
        else:
            if len(results) != subcells.num_subcells:
                raise ValueError(
                    f"{len(results)} subcell results for "
                    f"{subcells.num_subcells} subcells"
                )
            store = ResultStore.from_dict(subcells.shape, results)
        self.subcells = subcells
        self.algorithm = algorithm
        self.build_report = None
        self._store = store
        self._polyominos: list[Polyomino] | None = None
        self._kernel: QueryKernel | None = None

    # ------------------------------------------------------------------
    @property
    def grid(self) -> SubcellGrid:
        """Alias kept for symmetry with :class:`SkylineDiagram`."""
        return self.subcells

    @property
    def edge_ownership(self) -> tuple[str, str]:
        """Dynamic grid lines are ``"mixed"``: ties resolve from both sides."""
        return ("mixed", "mixed")

    def _make_kernel(self) -> QueryKernel:
        return QueryKernel(self.subcells, self._store, "dynamic_union")

    def _audit_semantics(self, level: str, sample_stride: int) -> None:
        # The dynamic-only law: no subcell's skyline is ever empty.
        for rid, result in enumerate(self._store.table_view()):
            if not result:
                raise AuditError(
                    f"table[{rid}]: dynamic skylines are never empty"
                )
        self._validate(level, sample_stride)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicDiagram):
            return NotImplemented
        return (
            self.subcells.axes == other.subcells.axes
            and self._store == other._store
        )

    def __hash__(self) -> int:  # pragma: no cover - diagrams rarely hashed
        return hash(self.subcells.axes)

    def __repr__(self) -> str:
        return (
            f"DynamicDiagram(algorithm={self.algorithm!r}, "
            f"n={len(self.subcells.dataset)}, "
            f"subcells={self.subcells.num_subcells}, "
            f"distinct={self._store.distinct_count})"
        )
