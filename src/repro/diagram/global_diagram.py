"""Global skyline diagrams: the union of all 2^d quadrant diagrams.

The paper (Sec. IV) notes that the global skyline is the union of the
quadrant skylines of every quadrant, and that all quadrants share the same
grid lines.  Reflecting the dataset (negating the axes in a quadrant's mask)
turns quadrant-``mask`` dominance into plain first-quadrant dominance, so
one first-quadrant construction algorithm serves every orientation; the
reflected diagram's cell indices are mirrored back onto the shared grid and
the per-cell results unioned (the four candidate sets partition the points
around any cell-interior query, so the union is disjoint).

Both steps run on the array-backed store: mirroring a quadrant diagram is a
``np.flip`` of its id grid (the table is orientation-independent), and the
union is computed once per *distinct combination* of quadrant ids — the 2^d
flat id arrays are stacked and deduplicated with ``np.unique(axis=0)``, so
the tuple merge runs ``O(#combinations)`` times instead of once per cell.

Construction runs through the shared
:class:`~repro.diagram.pipeline.BuildContext`: the ``row_scan`` phase is
the 2^d quadrant sub-builds (each threading the shared meter — and the
``build_options``, so a parallel executor shards every sub-build's scan),
the ``intern`` phase is the combination merge.
"""

from __future__ import annotations

import dataclasses
import inspect
from collections.abc import Callable, Sequence
from heapq import merge as heap_merge

import numpy as np

from repro.diagram.base import SkylineDiagram
from repro.diagram.pipeline import BuildContext, BuildOptions, Interner
from repro.diagram.store import ResultStore
from repro.errors import BudgetExceededError, DimensionalityError
from repro.geometry.dominance import reflect_points
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset
from repro.resilience import BudgetMeter, BuildBudget, as_meter

Algorithm = Callable[[Dataset], SkylineDiagram]


def _call(
    algorithm: Algorithm,
    dataset: Dataset,
    meter: BudgetMeter | None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Invoke a construction algorithm, threading the meter when supported.

    Budget-unaware algorithms (third-party or the ablation baselines) are
    charged post-hoc one scan row at a time — the same cadence the
    budget-aware constructors use — so a shared budget trips within one
    row of its limit instead of overshooting by an entire sub-build's
    cell count in a single lump checkpoint.
    """
    try:
        parameters = inspect.signature(algorithm).parameters
    except (TypeError, ValueError):  # builtins/partials without signatures
        parameters = {}
    kwargs = {}
    if build_options is not None and "build_options" in parameters:
        kwargs["build_options"] = build_options
    if meter is None:
        return algorithm(dataset, **kwargs)
    if "budget" in parameters:
        return algorithm(dataset, budget=meter, **kwargs)
    diagram = algorithm(dataset, **kwargs)
    cells = diagram.store.num_cells
    step = max(1, diagram.store.shape[0])
    charged = 0
    while charged + step < cells:
        meter.checkpoint(advance=step)
        charged += step
    meter.checkpoint(
        advance=cells - charged, distinct=diagram.store.distinct_count
    )
    return diagram


def quadrant_diagram_for_mask(
    points: Dataset | Sequence[Sequence[float]],
    mask: int,
    algorithm: Algorithm,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """First-quadrant algorithm applied to an arbitrary quadrant orientation.

    Negative-side dimensions are reflected, the diagram is built, and the
    id grid is mirrored back along the reflected axes (cell ``i`` on a
    reflected axis of ``s`` grid lines maps to cell ``s - i``, which is
    exactly a flip of the ``s + 1`` cells).
    """
    dataset = ensure_dataset(points)
    meter = as_meter(budget)
    if mask == 0:
        diagram = _call(algorithm, dataset, meter, build_options)
        mirrored_report = getattr(diagram, "build_report", None)
        diagram = SkylineDiagram(
            diagram.grid,
            diagram.store,
            kind="quadrant",
            mask=0,
            algorithm=diagram.algorithm,
        )
        diagram.build_report = mirrored_report
        return diagram
    reflected = Dataset(reflect_points(dataset.points, mask))
    try:
        mirrored = _call(algorithm, reflected, meter, build_options)
    except BudgetExceededError as exc:
        # A partial built in reflected rank space would answer mirrored
        # queries; don't let the ladder serve it for this orientation.
        exc.partial = None
        raise
    grid = Grid(dataset)
    flip_axes = [d for d in range(dataset.dim) if mask & (1 << d)]
    diagram = SkylineDiagram(
        grid,
        mirrored.store.flip(flip_axes),
        kind="quadrant",
        mask=mask,
        algorithm=mirrored.algorithm,
    )
    diagram.build_report = getattr(mirrored, "build_report", None)
    return diagram


def global_diagram(
    points: Dataset | Sequence[Sequence[float]],
    algorithm: Algorithm | None = None,
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """Build the global skyline diagram (union of all quadrant diagrams).

    ``algorithm`` is any first-quadrant construction function (defaults to
    the scanning algorithm, the fastest exact 2-D cell-based method).
    One shared meter charges all ``2^d`` sub-builds and the combination
    merge against ``budget``; no partial survives exhaustion (a single
    quadrant's rows cannot answer global queries).  ``build_options``
    threads through to every sub-build that supports it.

    >>> diagram = global_diagram([(2, 8), (5, 4), (9, 1)])
    >>> diagram.result_at((1, 1))   # between the staircase points
    (0, 1, 2)
    """
    dataset = ensure_dataset(points)
    if algorithm is None:
        if dataset.dim != 2:
            raise DimensionalityError(
                "pass an explicit d-dimensional algorithm for d > 2 "
                "(e.g. diagram.highdim.quadrant_scanning_nd)"
            )
        from repro.diagram.quadrant_scanning import quadrant_scanning

        algorithm = quadrant_scanning
    dim = dataset.dim
    ctx = BuildContext(budget, build_options, algorithm="global", kind="global")
    # Sub-diagrams feed the dense combination merge (and a quad sub-build
    # would be lossy before the union); only the merged store converts.
    sub_options = build_options
    if build_options is not None and build_options.backend != "dense":
        sub_options = dataclasses.replace(build_options, backend="dense")
    with ctx.phase("row_scan"):
        try:
            quadrant_diagrams = [
                quadrant_diagram_for_mask(
                    dataset,
                    mask,
                    algorithm,
                    budget=ctx.meter,
                    build_options=sub_options,
                )
                for mask in range(1 << dim)
            ]
        except BudgetExceededError as exc:
            exc.partial = None
            raise
    ctx.report.algorithm = quadrant_diagrams[0].algorithm
    grid = quadrant_diagrams[0].grid
    ctx.count_rows(grid.shape[-1] * (1 << dim))
    with ctx.phase("intern"):
        # One column of per-cell ids per quadrant; identical id combinations
        # yield identical unions, so merge once per distinct combination.
        stacked = np.stack(
            [d.store.dense_ids().reshape(-1) for d in quadrant_diagrams],
            axis=1,
        )
        combos, inverse = np.unique(stacked, axis=0, return_inverse=True)
        tables = [d.store.table for d in quadrant_diagrams]
        interner = Interner()
        intern = interner.intern
        combo_ids = np.empty(len(combos), dtype=np.int32)
        for k, combo in enumerate(combos.tolist()):
            # The quadrants partition the points around any cell-interior
            # query, so the union is a merge of disjoint sorted tuples.
            combo_ids[k] = intern(
                tuple(heap_merge(*(t[q] for t, q in zip(tables, combo))))
            )
            if k % 1024 == 1023:
                ctx.checkpoint(distinct=len(interner))
        table = interner.table
        ctx.checkpoint(distinct=len(table))
    with ctx.phase("assemble"):
        ids = combo_ids[inverse.reshape(-1)].reshape(grid.shape)
        store = ResultStore(grid.shape, np.ascontiguousarray(ids), table)
        diagram = SkylineDiagram(
            grid,
            store,
            kind="global",
            algorithm=quadrant_diagrams[0].algorithm,
        )
    return ctx.finish(diagram)
