"""Global skyline diagrams: the union of all 2^d quadrant diagrams.

The paper (Sec. IV) notes that the global skyline is the union of the
quadrant skylines of every quadrant, and that all quadrants share the same
grid lines.  Reflecting the dataset (negating the axes in a quadrant's mask)
turns quadrant-``mask`` dominance into plain first-quadrant dominance, so
one first-quadrant construction algorithm serves every orientation; the
reflected diagram's cell indices are mirrored back onto the shared grid and
the per-cell results unioned (the four candidate sets partition the points
around any cell-interior query, so the union is disjoint).

Both steps run on the array-backed store: mirroring a quadrant diagram is a
``np.flip`` of its id grid (the table is orientation-independent), and the
union is computed once per *distinct combination* of quadrant ids — the 2^d
flat id arrays are stacked and deduplicated with ``np.unique(axis=0)``, so
the tuple merge runs ``O(#combinations)`` times instead of once per cell.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from heapq import merge as heap_merge

import numpy as np

from repro.diagram.base import SkylineDiagram
from repro.diagram.store import ResultStore
from repro.errors import DimensionalityError
from repro.geometry.dominance import reflect_points
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset

Algorithm = Callable[[Dataset], SkylineDiagram]


def quadrant_diagram_for_mask(
    points: Dataset | Sequence[Sequence[float]],
    mask: int,
    algorithm: Algorithm,
) -> SkylineDiagram:
    """First-quadrant algorithm applied to an arbitrary quadrant orientation.

    Negative-side dimensions are reflected, the diagram is built, and the
    id grid is mirrored back along the reflected axes (cell ``i`` on a
    reflected axis of ``s`` grid lines maps to cell ``s - i``, which is
    exactly a flip of the ``s + 1`` cells).
    """
    dataset = ensure_dataset(points)
    if mask == 0:
        diagram = algorithm(dataset)
        return SkylineDiagram(
            diagram.grid,
            diagram.store,
            kind="quadrant",
            mask=0,
            algorithm=diagram.algorithm,
        )
    reflected = Dataset(reflect_points(dataset.points, mask))
    mirrored = algorithm(reflected)
    grid = Grid(dataset)
    flip_axes = [d for d in range(dataset.dim) if mask & (1 << d)]
    return SkylineDiagram(
        grid,
        mirrored.store.flip(flip_axes),
        kind="quadrant",
        mask=mask,
        algorithm=mirrored.algorithm,
    )


def global_diagram(
    points: Dataset | Sequence[Sequence[float]],
    algorithm: Algorithm | None = None,
) -> SkylineDiagram:
    """Build the global skyline diagram (union of all quadrant diagrams).

    ``algorithm`` is any first-quadrant construction function (defaults to
    the scanning algorithm, the fastest exact 2-D cell-based method).

    >>> diagram = global_diagram([(2, 8), (5, 4), (9, 1)])
    >>> diagram.result_at((1, 1))   # between the staircase points
    (0, 1, 2)
    """
    dataset = ensure_dataset(points)
    if algorithm is None:
        if dataset.dim != 2:
            raise DimensionalityError(
                "pass an explicit d-dimensional algorithm for d > 2 "
                "(e.g. diagram.highdim.quadrant_scanning_nd)"
            )
        from repro.diagram.quadrant_scanning import quadrant_scanning

        algorithm = quadrant_scanning
    dim = dataset.dim
    quadrant_diagrams = [
        quadrant_diagram_for_mask(dataset, mask, algorithm)
        for mask in range(1 << dim)
    ]
    grid = quadrant_diagrams[0].grid
    # One column of per-cell ids per quadrant; identical id combinations
    # yield identical unions, so merge once per distinct combination.
    stacked = np.stack(
        [d.store.ids.reshape(-1) for d in quadrant_diagrams], axis=1
    )
    combos, inverse = np.unique(stacked, axis=0, return_inverse=True)
    tables = [d.store.table for d in quadrant_diagrams]
    table: list[tuple[int, ...]] = []
    intern: dict[tuple[int, ...], int] = {}
    combo_ids = np.empty(len(combos), dtype=np.int32)
    for k, combo in enumerate(combos.tolist()):
        # The quadrants partition the points around any cell-interior query,
        # so the union is a merge of disjoint sorted tuples.
        union = tuple(heap_merge(*(t[q] for t, q in zip(tables, combo))))
        rid = intern.get(union)
        if rid is None:
            rid = len(table)
            table.append(union)
            intern[union] = rid
        combo_ids[k] = rid
    ids = combo_ids[inverse.reshape(-1)].reshape(grid.shape)
    store = ResultStore(grid.shape, np.ascontiguousarray(ids), table)
    return SkylineDiagram(
        grid,
        store,
        kind="global",
        algorithm=quadrant_diagrams[0].algorithm,
    )
