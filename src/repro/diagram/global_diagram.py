"""Global skyline diagrams: the union of all 2^d quadrant diagrams.

The paper (Sec. IV) notes that the global skyline is the union of the
quadrant skylines of every quadrant, and that all quadrants share the same
grid lines.  Reflecting the dataset (negating the axes in a quadrant's mask)
turns quadrant-``mask`` dominance into plain first-quadrant dominance, so
one first-quadrant construction algorithm serves every orientation; the
reflected diagram's cell indices are mirrored back onto the shared grid and
the per-cell results unioned (the four candidate sets partition the points
around any cell-interior query, so the union is disjoint).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from heapq import merge as heap_merge

from repro.diagram.base import SkylineDiagram
from repro.errors import DimensionalityError
from repro.geometry.dominance import reflect_points
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, ensure_dataset

Algorithm = Callable[[Dataset], SkylineDiagram]


def quadrant_diagram_for_mask(
    points: Dataset | Sequence[Sequence[float]],
    mask: int,
    algorithm: Algorithm,
) -> SkylineDiagram:
    """First-quadrant algorithm applied to an arbitrary quadrant orientation.

    Negative-side dimensions are reflected, the diagram is built, and cell
    indices are mirrored back (cell ``i`` on a reflected axis of ``s`` grid
    lines maps to cell ``s - i``).
    """
    dataset = ensure_dataset(points)
    if mask == 0:
        diagram = algorithm(dataset)
        return SkylineDiagram(
            diagram.grid,
            dict(diagram.cells()),
            kind="quadrant",
            mask=0,
            algorithm=diagram.algorithm,
        )
    reflected = Dataset(reflect_points(dataset.points, mask))
    mirrored = algorithm(reflected)
    grid = Grid(dataset)
    sizes = [len(axis) for axis in grid.axes]
    results: dict[tuple[int, ...], tuple[int, ...]] = {}
    for cell, sky in mirrored.cells():
        original = tuple(
            sizes[d] - c if mask & (1 << d) else c for d, c in enumerate(cell)
        )
        results[original] = sky
    return SkylineDiagram(
        grid, results, kind="quadrant", mask=mask, algorithm=mirrored.algorithm
    )


def global_diagram(
    points: Dataset | Sequence[Sequence[float]],
    algorithm: Algorithm | None = None,
) -> SkylineDiagram:
    """Build the global skyline diagram (union of all quadrant diagrams).

    ``algorithm`` is any first-quadrant construction function (defaults to
    the scanning algorithm, the fastest exact 2-D cell-based method).

    >>> diagram = global_diagram([(2, 8), (5, 4), (9, 1)])
    >>> diagram.result_at((1, 1))   # between the staircase points
    (0, 1, 2)
    """
    dataset = ensure_dataset(points)
    if algorithm is None:
        if dataset.dim != 2:
            raise DimensionalityError(
                "pass an explicit d-dimensional algorithm for d > 2 "
                "(e.g. diagram.highdim.quadrant_scanning_nd)"
            )
        from repro.diagram.quadrant_scanning import quadrant_scanning

        algorithm = quadrant_scanning
    dim = dataset.dim
    quadrant_diagrams = [
        quadrant_diagram_for_mask(dataset, mask, algorithm)
        for mask in range(1 << dim)
    ]
    grid = quadrant_diagrams[0].grid
    results: dict[tuple[int, ...], tuple[int, ...]] = {}
    for cell, first in quadrant_diagrams[0].cells():
        parts = [first]
        parts.extend(d.result_at(cell) for d in quadrant_diagrams[1:])
        # The quadrants partition the points around any cell-interior query,
        # so the union is a merge of disjoint sorted tuples.
        results[cell] = tuple(heap_merge(*parts))
    return SkylineDiagram(
        grid,
        results,
        kind="global",
        algorithm=quadrant_diagrams[0].algorithm,
    )
