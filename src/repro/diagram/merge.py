"""Merging skyline cells into skyline polyominos.

All cell-based construction algorithms share this final phase (the paper's
"merging skyline cells into skyline polyominos", Sec. IV.A): adjacent cells
with identical results are unioned into maximal connected regions.  The
merge is a breadth-first flood fill over the cell lattice, O(#cells) time.
"""

from __future__ import annotations

from collections import deque

from repro.geometry.polyomino import Polyomino

Cell = tuple[int, int]
Result = tuple[int, ...]


def merge_cells(
    shape: tuple[int, int], results: dict[Cell, Result]
) -> list[Polyomino]:
    """Flood-fill equal-result neighbours into polyominos.

    Parameters
    ----------
    shape:
        Cells per axis of the (sub)cell grid.
    results:
        Mapping from every cell to its canonical result.

    Returns
    -------
    list[Polyomino]
        Polyominos in discovery (row-major) order; their ``ident`` fields
        are list positions.
    """
    sx, sy = shape
    labels: dict[Cell, int] = {}
    polyominos: list[Polyomino] = []
    for i in range(sx):
        for j in range(sy):
            start = (i, j)
            if start in labels:
                continue
            ident = len(polyominos)
            target = results[start]
            members: list[Cell] = []
            queue: deque[Cell] = deque([start])
            labels[start] = ident
            while queue:
                ci, cj = queue.popleft()
                members.append((ci, cj))
                for ni, nj in (
                    (ci - 1, cj),
                    (ci + 1, cj),
                    (ci, cj - 1),
                    (ci, cj + 1),
                ):
                    if not (0 <= ni < sx and 0 <= nj < sy):
                        continue
                    neighbour = (ni, nj)
                    if neighbour in labels:
                        continue
                    if results[neighbour] == target:
                        labels[neighbour] = ident
                        queue.append(neighbour)
            polyominos.append(
                Polyomino(ident=ident, result=target, cells=frozenset(members))
            )
    return polyominos


def cell_labels(polyominos: list[Polyomino]) -> dict[Cell, int]:
    """Invert a polyomino list into a cell -> polyomino-id mapping."""
    labels: dict[Cell, int] = {}
    for poly in polyominos:
        for cell in poly.cells:
            labels[cell] = poly.ident
    return labels


def partition_signature(polyominos: list[Polyomino]) -> frozenset[frozenset[Cell]]:
    """Order-independent description of a partition, for equality tests.

    Two construction algorithms produce the same diagram geometry iff their
    partition signatures match (polyomino ids and ordering are incidental).
    """
    return frozenset(poly.cells for poly in polyominos)
