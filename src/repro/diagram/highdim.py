"""High-dimensional skyline diagrams (Section IV.E of the paper).

The baseline, directed-skyline-graph and scanning constructions all extend
to d dimensions over the d-dimensional skyline-cell grid (the sweeping
algorithm does not — the paper leaves that extension open, and so do we).

* baseline: O(n^d) hyper-cells, each solved with a generic skyline pass;
* DSG: the 2-D row sweep becomes a nested sweep, one removal-and-undo
  level per axis;
* scanning: Theorem 1 generalizes to the inclusion–exclusion over the 2^d-1
  upper neighbours — odd-cardinality offsets added, even subtracted — with
  one extra *outer* skyline pass (for d > 2 the multiset expression may
  retain dominated points, which the paper's formula removes with an
  explicit ``Skyline(...)``).

A d-dimensional dynamic baseline over the bisector grid is also provided
for completeness (Section V notes dynamic diagrams extend "similarly").
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Sequence
from itertools import product

import numpy as np

from repro.diagram.base import SkylineDiagram
from repro.diagram.pipeline import BuildContext, BuildOptions, Interner
from repro.diagram.store import ResultStore
from repro.dsg.graph import DirectedSkylineGraph
from repro.geometry.grid import Grid
from repro.geometry.point import Dataset, Point, ensure_dataset
from repro.resilience import BudgetMeter, BuildBudget
from repro.skyline.algorithms import skyline
from repro.skyline.queries import dynamic_skyline


def _candidate_masks(grid: Grid) -> list[list[int]]:
    """Per axis, a bitmask of the points with rank > i, for every i.

    ``masks[d][i]`` has bit ``k`` set iff ``rank_d(p_k) > i``; intersecting
    the d masks of a cell yields its candidate set in O(n / wordsize).
    """
    masks: list[list[int]] = []
    for d in range(grid.dim):
        extent = len(grid.axes[d])
        axis_masks = [0] * (extent + 1)
        for k, rank in enumerate(grid.ranks):
            bit = 1 << k
            for i in range(rank[d]):
                axis_masks[i] |= bit
        masks.append(axis_masks)
    return masks


def _bits(mask: int) -> list[int]:
    """Indices of the set bits of a candidate bitmask, ascending."""
    ids: list[int] = []
    while mask:
        low = mask & -mask
        ids.append(low.bit_length() - 1)
        mask ^= low
    return ids


def quadrant_baseline_nd(
    points: Dataset | Sequence[Sequence[float]],
) -> SkylineDiagram:
    """d-dimensional baseline diagram: one skyline pass per hyper-cell.

    >>> diagram = quadrant_baseline_nd([(1, 1, 1), (2, 2, 2)])
    >>> diagram.result_at((0, 0, 0))
    (0,)
    >>> diagram.result_at((1, 1, 1))
    (1,)
    """
    dataset = ensure_dataset(points)
    grid = Grid(dataset)
    masks = _candidate_masks(grid)
    pts = dataset.points
    results: dict[tuple[int, ...], tuple[int, ...]] = {}
    for cell in grid.cells():
        combined = masks[0][cell[0]]
        for d in range(1, grid.dim):
            combined &= masks[d][cell[d]]
        candidates = _bits(combined)
        local = skyline([pts[k] for k in candidates])
        results[cell] = tuple(candidates[k] for k in local)
    return SkylineDiagram(grid, results, kind="quadrant", algorithm="baseline")


def quadrant_dsg_nd(
    points: Dataset | Sequence[Sequence[float]],
    dsg: DirectedSkylineGraph | None = None,
) -> SkylineDiagram:
    """d-dimensional DSG diagram: nested removal sweeps with undo.

    >>> diagram = quadrant_dsg_nd([(1, 1, 1), (2, 2, 2)])
    >>> diagram.result_at((0, 0, 0))
    (0,)
    """
    dataset = ensure_dataset(points)
    grid = Grid(dataset)
    if dsg is None:
        dsg = DirectedSkylineGraph(dataset)
    shape = grid.shape
    on_line: list[list[list[int]]] = [
        [[] for _ in range(extent)] for extent in shape
    ]
    for k, rank in enumerate(grid.ranks):
        for d in range(grid.dim):
            on_line[d][rank[d]].append(k)

    results: dict[tuple[int, ...], tuple[int, ...]] = {}
    sky = set(dsg.skyline())

    def sweep(axis: int, suffix: tuple[int, ...]) -> None:
        nonlocal sky
        checkpoint = dsg.checkpoint()
        saved_sky = set(sky)
        for i in range(shape[axis]):
            if axis == 0:
                results[(i,) + suffix] = tuple(sorted(sky))
            else:
                sweep(axis - 1, (i,) + suffix)
            if i + 1 < shape[axis]:
                crossing = on_line[axis][i + 1]
                exposed = dsg.remove_batch(crossing)
                sky.difference_update(crossing)
                sky.update(exposed)
        dsg.rollback(checkpoint)
        sky = saved_sky

    sweep(grid.dim - 1, ())
    return SkylineDiagram(grid, results, kind="quadrant", algorithm="dsg")


def quadrant_scanning_nd(
    points: Dataset | Sequence[Sequence[float]],
    budget: BuildBudget | BudgetMeter | None = None,
    build_options: BuildOptions | None = None,
) -> SkylineDiagram:
    """d-dimensional scanning diagram via the inclusion–exclusion identity.

    The engine works on interned result ids over a flat C-order cell array:
    each cell reads the ids of its 2^d - 1 upper neighbours at precomputed
    flat offsets, and the inclusion–exclusion counts (plus, for d > 2, the
    paper's outer ``Skyline(...)`` pass) run only once per *distinct*
    neighbour-id combination — repeated combinations hit a memo and cost a
    dict lookup.

    ``budget`` checkpoints once per innermost-axis chunk of cells; no
    partial survives exhaustion (flat-order coverage has no 2-D row
    structure the ladder could serve from).

    >>> diagram = quadrant_scanning_nd([(1, 1, 1), (2, 2, 2)])
    >>> diagram.result_at((1, 1, 1))
    (1,)
    """
    dataset = ensure_dataset(points)
    # Flat C-order with a running memo over neighbour ids: sequential, so
    # the context pins the executor to serial regardless of the options.
    ctx = BuildContext(
        budget,
        build_options,
        algorithm="scanning",
        kind="quadrant-nd",
        serial_only=True,
    )
    with ctx.phase("rank_space"):
        grid = Grid(dataset)
        dim = grid.dim
        shape = grid.shape
        strides = [1] * dim
        for d in range(dim - 2, -1, -1):
            strides[d] = strides[d + 1] * shape[d + 1]
        total = strides[0] * shape[0]
        offsets: list[tuple[int, int, int]] = []
        for bits in range(1, 1 << dim):
            offset = tuple((bits >> d) & 1 for d in range(dim))
            sign = 1 if bin(bits).count("1") % 2 == 1 else -1
            delta = sum(o * s for o, s in zip(offset, strides))
            offsets.append((sign, bits, delta))

    pts = dataset.points
    ids = [0] * total  # id 0 = the empty result of off-grid neighbours
    interner = Interner(seed_empty=True)
    table = interner.table
    intern_id = interner.intern
    memo: dict[tuple[int, ...], int] = {}
    corner_index = grid._corner_index
    chunk = max(1, shape[-1])
    done = 0
    with ctx.phase("row_scan"):
        for cell in product(*(range(extent - 1, -1, -1) for extent in shape)):
            done += 1
            if done % chunk == 0:
                ctx.checkpoint(advance=chunk, distinct=len(table))
                ctx.count_rows(1)
            flat = sum(c * s for c, s in zip(cell, strides))
            corner = corner_index.get(tuple(c + 1 for c in cell))
            if corner is not None:
                ids[flat] = intern_id(corner)
                continue
            # Bitmask of axes where the cell touches the upper grid
            # boundary; neighbours stepping over it contribute the empty
            # skyline.
            edge = 0
            for d in range(dim):
                if cell[d] + 1 == shape[d]:
                    edge |= 1 << d
            key = tuple(
                0 if bits & edge else ids[flat + delta]
                for _, bits, delta in offsets
            )
            rid = memo.get(key)
            if rid is None:
                counts: dict[int, int] = {}
                for (sign, _, _), nid in zip(offsets, key):
                    if nid:
                        for pid in table[nid]:
                            counts[pid] = counts.get(pid, 0) + sign
                candidates = sorted(
                    pid for pid, count in counts.items() if count >= 1
                )
                if dim == 2:
                    result = tuple(candidates)
                else:
                    # For d > 2 the expression may retain dominated points;
                    # the paper's formula removes them with an outer
                    # Skyline pass.
                    local = skyline([pts[k] for k in candidates])
                    result = tuple(candidates[k] for k in local)
                rid = intern_id(result)
                memo[key] = rid
            ids[flat] = rid
    with ctx.phase("assemble"):
        arr = np.asarray(ids, dtype=np.int32).reshape(shape)
        store = ResultStore(shape, arr, table)
        diagram = SkylineDiagram(
            grid, store, kind="quadrant", algorithm="scanning"
        )
    return ctx.finish(diagram)


class DynamicDiagramND:
    """A d-dimensional dynamic skyline diagram (baseline construction).

    Stores per-subcell results over the bisector-augmented axes.  Intended
    for small inputs — the subcell count is O(min(s, n^2)^d).
    """

    __slots__ = ("dataset", "axes", "_results")

    def __init__(
        self,
        dataset: Dataset,
        axes: tuple[tuple[float, ...], ...],
        results: dict[tuple[int, ...], tuple[int, ...]],
    ) -> None:
        self.dataset = dataset
        self.axes = axes
        self._results = results

    def locate(self, query: Sequence[float]) -> tuple[int, ...]:
        """Subcell index containing a query point."""
        return tuple(
            bisect_left(self.axes[d], float(query[d]))
            for d in range(len(self.axes))
        )

    def result_at(self, subcell: tuple[int, ...]) -> tuple[int, ...]:
        """Canonical dynamic skyline result of one subcell."""
        return self._results[subcell]

    def query(self, query: Sequence[float]) -> tuple[int, ...]:
        """Answer a d-dimensional dynamic skyline query by point location."""
        return self._results[self.locate(query)]

    def __repr__(self) -> str:
        return (
            f"DynamicDiagramND(n={len(self.dataset)}, "
            f"dim={len(self.axes)}, subcells={len(self._results)})"
        )


def dynamic_baseline_nd(
    points: Dataset | Sequence[Sequence[float]],
) -> DynamicDiagramND:
    """d-dimensional dynamic diagram by brute force over the bisector grid.

    >>> diagram = dynamic_baseline_nd([(0, 0, 0), (8, 8, 8)])
    >>> diagram.query((1, 1, 1))
    (0,)
    """
    dataset = ensure_dataset(points)
    n = len(dataset)
    axes: list[tuple[float, ...]] = []
    for d in range(dataset.dim):
        values = {p[d] for p in dataset}
        for a in range(n):
            for b in range(a + 1, n):
                values.add((dataset[a][d] + dataset[b][d]) / 2.0)
        axes.append(tuple(sorted(values)))

    def representative(subcell: tuple[int, ...]) -> Point:
        coords: list[float] = []
        for d, i in enumerate(subcell):
            axis = axes[d]
            if i == 0:
                coords.append(axis[0] - 1.0)
            elif i == len(axis):
                coords.append(axis[-1] + 1.0)
            else:
                coords.append((axis[i - 1] + axis[i]) / 2.0)
        return tuple(coords)

    results: dict[tuple[int, ...], tuple[int, ...]] = {}
    for subcell in product(*(range(len(axis) + 1) for axis in axes)):
        results[subcell] = dynamic_skyline(dataset, representative(subcell))
    return DynamicDiagramND(dataset, tuple(axes), results)
